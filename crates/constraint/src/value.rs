//! Scalar values that appear in advertisements and query constraints.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar constant in a constraint: integers, floats, strings, booleans.
///
/// Values of different numeric types compare numerically (`Int(2) < Float(2.5)`).
/// Values of incomparable kinds (e.g. a string and an integer) have no
/// ordering; comparisons between them return `None` and constraints built
/// from them are unsatisfiable rather than erroneous, matching the broker's
/// "no match" semantics for ill-typed queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The kind name, used in error messages and the textual constraint syntax.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }

    /// Numeric view of the value, if it is a number.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether two values are comparable (same kind, or both numeric).
    pub fn comparable(&self, other: &Value) -> bool {
        self.partial_cmp(other).is_some()
    }

    /// The immediate successor for discrete values, used to tighten
    /// exclusive integer bounds. Returns `None` for continuous kinds.
    pub(crate) fn succ(&self) -> Option<Value> {
        match self {
            Value::Int(i) => i.checked_add(1).map(Value::Int),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.partial_cmp(other), Some(Ordering::Equal))
    }
}

// Equality is reflexive/symmetric/transitive under the numeric-promotion
// comparison, including NaN-free floats produced by the parser; NaN floats
// compare as non-equal to everything (including themselves), which keeps the
// algebra's "unsatisfiable, not erroneous" behaviour.
impl Eq for Value {}

// Intentionally NOT delegating to `Ord`: the partial order is the semantic
// comparison (None for incomparable kinds); the total order below exists
// only so values can live in sorted containers.
#[allow(clippy::non_canonical_partial_ord_impl)]
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl Ord for Value {
    /// Total order used only for storage in sorted sets: incomparable kinds
    /// are ordered by kind tag; NaN sorts last among floats.
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match self.partial_cmp(other) {
            Some(ord) => ord,
            None => match tag(self).cmp(&tag(other)) {
                Ordering::Equal => {
                    // Same tag but incomparable: only possible with NaN.
                    let a_nan = matches!(self, Value::Float(f) if f.is_nan());
                    let b_nan = matches!(other, Value::Float(f) if f.is_nan());
                    a_nan.cmp(&b_nan)
                }
                ord => ord,
            },
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            // Hash integral floats the same as ints so Int(2) == Float(2.0)
            // hashes consistently.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u8(1);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(2);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(4);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_promotion_compares_int_and_float() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn incomparable_kinds_have_no_partial_order() {
        assert!(Value::str("a").partial_cmp(&Value::Int(1)).is_none());
        assert!(Value::Bool(true).partial_cmp(&Value::Int(1)).is_none());
        assert!(!Value::str("1").comparable(&Value::Int(1)));
    }

    #[test]
    fn strings_order_lexicographically() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn total_order_is_consistent_for_sets() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Value::Int(1));
        s.insert(Value::Float(1.0)); // duplicate under Eq
        s.insert(Value::str("a"));
        s.insert(Value::Bool(false));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn succ_and_pred_only_for_ints() {
        assert_eq!(Value::Int(5).succ(), Some(Value::Int(6)));
        assert_eq!(Value::Float(5.0).succ(), None);
        assert_eq!(Value::Int(i64::MAX).succ(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("40W").to_string(), "'40W'");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn nan_is_not_equal_to_itself() {
        let nan = Value::Float(f64::NAN);
        assert_ne!(nan, nan.clone());
    }
}
