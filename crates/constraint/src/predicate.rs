//! Atomic constraints over a single named slot.

use crate::{Range, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operator of an atomic constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    Eq(Value),
    Ne(Value),
    Lt(Value),
    Le(Value),
    Gt(Value),
    Ge(Value),
    Between(Value, Value),
    In(BTreeSet<Value>),
    NotIn(BTreeSet<Value>),
}

/// An atomic constraint: a slot (e.g. `patient.age`) compared to constants.
///
/// Slots are dotted paths `class.slot` following the paper's service
/// ontology (`patient.age`, `patient.diagnosis_code`). Predicates combine
/// into [`crate::Conjunction`]s, which is what advertisements and queries
/// actually carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    pub slot: String,
    pub op: CompareOp,
}

impl Predicate {
    pub fn new(slot: impl Into<String>, op: CompareOp) -> Self {
        Predicate { slot: slot.into(), op }
    }

    pub fn eq(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Eq(v.into()))
    }

    pub fn ne(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Ne(v.into()))
    }

    pub fn lt(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Lt(v.into()))
    }

    pub fn le(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Le(v.into()))
    }

    pub fn gt(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Gt(v.into()))
    }

    pub fn ge(slot: impl Into<String>, v: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Ge(v.into()))
    }

    pub fn between(slot: impl Into<String>, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Self::new(slot, CompareOp::Between(lo.into(), hi.into()))
    }

    pub fn is_in<I, V>(slot: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Self::new(slot, CompareOp::In(values.into_iter().map(Into::into).collect()))
    }

    pub fn not_in<I, V>(slot: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Self::new(slot, CompareOp::NotIn(values.into_iter().map(Into::into).collect()))
    }

    /// The interval this predicate restricts its slot to, for operators that
    /// translate directly to a single interval. `In`/`Ne`/`NotIn` constrain
    /// the domain's point sets instead and return the full range here.
    pub(crate) fn range(&self) -> Range {
        match &self.op {
            CompareOp::Eq(v) => Range::point(v.clone()),
            CompareOp::Lt(v) => Range::at_most(v.clone(), false),
            CompareOp::Le(v) => Range::at_most(v.clone(), true),
            CompareOp::Gt(v) => Range::at_least(v.clone(), false),
            CompareOp::Ge(v) => Range::at_least(v.clone(), true),
            CompareOp::Between(lo, hi) => Range::between(lo.clone(), hi.clone()),
            CompareOp::Ne(_) | CompareOp::In(_) | CompareOp::NotIn(_) => Range::full(),
        }
    }

    /// Whether a concrete value satisfies the predicate.
    pub fn matches(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        match &self.op {
            CompareOp::Eq(c) => v == c,
            CompareOp::Ne(c) => v.comparable(c) && v != c,
            CompareOp::Lt(c) => matches!(v.partial_cmp(c), Some(Less)),
            CompareOp::Le(c) => matches!(v.partial_cmp(c), Some(Less | Equal)),
            CompareOp::Gt(c) => matches!(v.partial_cmp(c), Some(Greater)),
            CompareOp::Ge(c) => matches!(v.partial_cmp(c), Some(Greater | Equal)),
            CompareOp::Between(lo, hi) => Range::between(lo.clone(), hi.clone()).contains(v),
            CompareOp::In(set) => set.iter().any(|c| c == v),
            CompareOp::NotIn(set) => set.iter().all(|c| c != v) && !set.is_empty(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn set(f: &mut fmt::Formatter<'_>, s: &BTreeSet<Value>) -> fmt::Result {
            write!(f, "(")?;
            for (i, v) in s.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")
        }
        write!(f, "{} ", self.slot)?;
        match &self.op {
            CompareOp::Eq(v) => write!(f, "= {v}"),
            CompareOp::Ne(v) => write!(f, "!= {v}"),
            CompareOp::Lt(v) => write!(f, "< {v}"),
            CompareOp::Le(v) => write!(f, "<= {v}"),
            CompareOp::Gt(v) => write!(f, "> {v}"),
            CompareOp::Ge(v) => write!(f, ">= {v}"),
            CompareOp::Between(lo, hi) => write!(f, "between {lo} and {hi}"),
            CompareOp::In(s) => {
                write!(f, "in ")?;
                set(f, s)
            }
            CompareOp::NotIn(s) => {
                write!(f, "not in ")?;
                set(f, s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_each_operator() {
        assert!(Predicate::eq("a", 1).matches(&Value::Int(1)));
        assert!(!Predicate::eq("a", 1).matches(&Value::Int(2)));
        assert!(Predicate::ne("a", 1).matches(&Value::Int(2)));
        assert!(!Predicate::ne("a", 1).matches(&Value::str("x"))); // incomparable
        assert!(Predicate::lt("a", 5).matches(&Value::Int(4)));
        assert!(Predicate::le("a", 5).matches(&Value::Int(5)));
        assert!(Predicate::gt("a", 5).matches(&Value::Int(6)));
        assert!(Predicate::ge("a", 5).matches(&Value::Int(5)));
        assert!(Predicate::between("a", 1, 3).matches(&Value::Int(2)));
        assert!(!Predicate::between("a", 1, 3).matches(&Value::Int(4)));
        assert!(Predicate::is_in("a", ["x", "y"]).matches(&Value::str("y")));
        assert!(Predicate::not_in("a", ["x", "y"]).matches(&Value::str("z")));
        assert!(!Predicate::not_in("a", ["x"]).matches(&Value::str("x")));
    }

    #[test]
    fn display_matches_paper_style() {
        let p = Predicate::between("patient.age", 43, 75);
        assert_eq!(p.to_string(), "patient.age between 43 and 75");
        let p = Predicate::eq("patient.diagnosis_code", "40W");
        assert_eq!(p.to_string(), "patient.diagnosis_code = '40W'");
        let p = Predicate::is_in("city", ["Dallas", "Houston"]);
        assert_eq!(p.to_string(), "city in ('Dallas', 'Houston')");
    }
}
