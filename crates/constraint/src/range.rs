//! Interval algebra over [`Value`]s.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One end of an interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// No constraint on this end.
    Unbounded,
    /// The end point is included (`>=` / `<=`).
    Incl(Value),
    /// The end point is excluded (`>` / `<`).
    Excl(Value),
}

impl Bound {
    fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Incl(v) | Bound::Excl(v) => Some(v),
        }
    }
}

/// A (possibly unbounded) interval of values: the workhorse for advertised
/// restrictions such as `patient.age between 43 and 75`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Range {
    pub lo: Bound,
    pub hi: Bound,
}

impl Range {
    /// The interval containing every value.
    pub fn full() -> Self {
        Range { lo: Bound::Unbounded, hi: Bound::Unbounded }
    }

    /// The closed interval `[lo, hi]`.
    pub fn between(lo: Value, hi: Value) -> Self {
        Range { lo: Bound::Incl(lo), hi: Bound::Incl(hi) }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: Value) -> Self {
        Range { lo: Bound::Incl(v.clone()), hi: Bound::Incl(v) }
    }

    /// `[v, +inf)` or `(v, +inf)`.
    pub fn at_least(v: Value, inclusive: bool) -> Self {
        let lo = if inclusive { Bound::Incl(v) } else { Bound::Excl(v) };
        Range { lo, hi: Bound::Unbounded }
    }

    /// `(-inf, v]` or `(-inf, v)`.
    pub fn at_most(v: Value, inclusive: bool) -> Self {
        let hi = if inclusive { Bound::Incl(v) } else { Bound::Excl(v) };
        Range { lo: Bound::Unbounded, hi }
    }

    /// Whether this range constrains nothing.
    pub fn is_full(&self) -> bool {
        self.lo == Bound::Unbounded && self.hi == Bound::Unbounded
    }

    /// Whether this range denotes exactly one value; returns it if so.
    pub fn as_point(&self) -> Option<&Value> {
        match (&self.lo, &self.hi) {
            (Bound::Incl(a), Bound::Incl(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Whether the interval contains at least one value.
    ///
    /// Empty cases are inverted bounds (`lo > hi`), equal bounds where either
    /// end is exclusive, incomparable end points (ill-typed constraint), and
    /// adjacent exclusive integer bounds like `(3, 4)` which contain no
    /// integer. Continuous kinds treat `(a, b)` with `a < b` as non-empty.
    pub fn is_satisfiable(&self) -> bool {
        let (lo_v, hi_v) = match (self.lo.value(), self.hi.value()) {
            (Some(l), Some(h)) => (l, h),
            _ => return true, // at least one side unbounded
        };
        let ord = match lo_v.partial_cmp(hi_v) {
            Some(o) => o,
            None => return false, // incomparable kinds, e.g. age > 'abc'
        };
        match ord {
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                matches!(self.lo, Bound::Incl(_)) && matches!(self.hi, Bound::Incl(_))
            }
            std::cmp::Ordering::Less => {
                // (n, n+1) over integers is empty.
                if let (Bound::Excl(l), Bound::Excl(h)) = (&self.lo, &self.hi) {
                    if let Some(s) = l.succ() {
                        if &s == h {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Incl(l) => matches!(
                v.partial_cmp(l),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ),
            Bound::Excl(l) => matches!(v.partial_cmp(l), Some(std::cmp::Ordering::Greater)),
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Incl(h) => matches!(
                v.partial_cmp(h),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
            Bound::Excl(h) => matches!(v.partial_cmp(h), Some(std::cmp::Ordering::Less)),
        };
        lo_ok && hi_ok
    }

    /// The intersection of two intervals (may be unsatisfiable).
    pub fn intersect(&self, other: &Range) -> Range {
        Range { lo: tighter_lo(&self.lo, &other.lo), hi: tighter_hi(&self.hi, &other.hi) }
    }

    /// Whether the two intervals share at least one value.
    pub fn overlaps(&self, other: &Range) -> bool {
        self.intersect(other).is_satisfiable()
    }

    /// Whether every value in `self` also lies in `other` (`self ⊆ other`).
    ///
    /// An unsatisfiable `self` is contained in everything.
    pub fn is_subset_of(&self, other: &Range) -> bool {
        if !self.is_satisfiable() {
            return true;
        }
        lo_implies(&self.lo, &other.lo) && hi_implies(&self.hi, &other.hi)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Incl(v) => write!(f, "[{v}")?,
            Bound::Excl(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Incl(v) => write!(f, "{v}]"),
            Bound::Excl(v) => write!(f, "{v})"),
        }
    }
}

/// Picks the more restrictive lower bound. When the two bounds are at the
/// same point, exclusive wins.
fn tighter_lo(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.partial_cmp(bv) {
                Some(std::cmp::Ordering::Greater) => a.clone(),
                Some(std::cmp::Ordering::Less) => b.clone(),
                Some(std::cmp::Ordering::Equal) => {
                    if matches!(a, Bound::Excl(_)) {
                        a.clone()
                    } else {
                        b.clone()
                    }
                }
                // Incomparable kinds: keep an impossible pair; satisfiability
                // checks will report the range as empty.
                None => Bound::Excl(Value::Float(f64::NAN)),
            }
        }
    }
}

/// Picks the more restrictive upper bound.
fn tighter_hi(a: &Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.partial_cmp(bv) {
                Some(std::cmp::Ordering::Less) => a.clone(),
                Some(std::cmp::Ordering::Greater) => b.clone(),
                Some(std::cmp::Ordering::Equal) => {
                    if matches!(a, Bound::Excl(_)) {
                        a.clone()
                    } else {
                        b.clone()
                    }
                }
                None => Bound::Excl(Value::Float(f64::NAN)),
            }
        }
    }
}

/// Whether lower bound `a` is at least as restrictive as lower bound `b`.
fn lo_implies(a: &Bound, b: &Bound) -> bool {
    match (b, a) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.partial_cmp(bv) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Less) | None => false,
                Some(std::cmp::Ordering::Equal) => {
                    // a >= v implies b >= v; a > v implies b >= v and b > v.
                    matches!(a, Bound::Excl(_)) || matches!(b, Bound::Incl(_))
                }
            }
        }
    }
}

/// Whether upper bound `a` is at least as restrictive as upper bound `b`.
fn hi_implies(a: &Bound, b: &Bound) -> bool {
    match (b, a) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            match av.partial_cmp(bv) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) | None => false,
                Some(std::cmp::Ordering::Equal) => {
                    matches!(a, Bound::Excl(_)) || matches!(b, Bound::Incl(_))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn paper_age_ranges_overlap() {
        // Advertised 43..=75 vs requested 25..=65: overlap is 43..=65.
        let advertised = Range::between(int(43), int(75));
        let requested = Range::between(int(25), int(65));
        assert!(advertised.overlaps(&requested));
        let both = advertised.intersect(&requested);
        assert!(both.contains(&int(43)));
        assert!(both.contains(&int(65)));
        assert!(!both.contains(&int(66)));
        assert!(!both.contains(&int(42)));
    }

    #[test]
    fn disjoint_ranges_do_not_overlap() {
        let a = Range::between(int(1), int(5));
        let b = Range::between(int(6), int(10));
        assert!(!a.overlaps(&b));
        assert!(!a.intersect(&b).is_satisfiable());
    }

    #[test]
    fn touching_closed_ranges_overlap_at_the_point() {
        let a = Range::between(int(1), int(5));
        let b = Range::between(int(5), int(10));
        assert!(a.overlaps(&b));
        assert_eq!(a.intersect(&b).as_point(), Some(&int(5)));
    }

    #[test]
    fn touching_open_ranges_do_not_overlap() {
        let a = Range::at_most(int(5), false); // < 5
        let b = Range::at_least(int(5), true); // >= 5
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn adjacent_open_integer_range_is_empty() {
        // (3, 4) has no integer members.
        let r = Range { lo: Bound::Excl(int(3)), hi: Bound::Excl(int(4)) };
        assert!(!r.is_satisfiable());
        // (3.0, 4.0) over floats is non-empty.
        let r = Range { lo: Bound::Excl(Value::Float(3.0)), hi: Bound::Excl(Value::Float(4.0)) };
        assert!(r.is_satisfiable());
    }

    #[test]
    fn subset_logic() {
        let narrow = Range::between(int(43), int(65));
        let wide = Range::between(int(25), int(75));
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(narrow.is_subset_of(&Range::full()));
        assert!(!Range::full().is_subset_of(&narrow));
        assert!(narrow.is_subset_of(&narrow));
    }

    #[test]
    fn subset_respects_bound_exclusivity() {
        let open = Range { lo: Bound::Excl(int(0)), hi: Bound::Excl(int(10)) };
        let closed = Range::between(int(0), int(10));
        assert!(open.is_subset_of(&closed));
        assert!(!closed.is_subset_of(&open));
    }

    #[test]
    fn empty_range_is_subset_of_everything() {
        let empty = Range::between(int(10), int(5));
        assert!(!empty.is_satisfiable());
        assert!(empty.is_subset_of(&Range::between(int(100), int(200))));
    }

    #[test]
    fn incomparable_kinds_make_empty_intersection() {
        let nums = Range::between(int(1), int(5));
        let strs = Range::between(Value::str("a"), Value::str("z"));
        assert!(!nums.overlaps(&strs));
    }

    #[test]
    fn point_ranges() {
        let p = Range::point(int(7));
        assert_eq!(p.as_point(), Some(&int(7)));
        assert!(p.contains(&int(7)));
        assert!(!p.contains(&int(8)));
        assert!(p.is_satisfiable());
    }

    #[test]
    fn mixed_numeric_kinds_compare() {
        let r = Range::between(Value::Float(1.5), Value::Float(2.5));
        assert!(r.contains(&int(2)));
        assert!(!r.contains(&int(3)));
        assert!(r.overlaps(&Range::point(int(2))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Range::between(int(1), int(2)).to_string(), "[1, 2]");
        assert_eq!(Range::at_least(int(3), false).to_string(), "(3, +inf)");
        assert_eq!(Range::full().to_string(), "(-inf, +inf)");
    }
}
