//! Textual constraint syntax.
//!
//! Advertisements in the paper carry constraint descriptions like
//! `patient age between 43 and 75` and queries carry
//! `(patient age between 25 and 65) AND (patient.diagnosis code = '40W')`.
//! This module parses that surface syntax into a [`Conjunction`]. Dotted and
//! space-separated slot paths are both accepted (`patient.age` and
//! `patient age` both name the slot `patient.age`) because the paper uses
//! both spellings.

use crate::{Conjunction, Predicate, Value};
use std::fmt;

/// Error produced when a constraint string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Op(String), // =, !=, <, <=, >, >=
    LParen,
    RParen,
    Comma,
    Dot,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'(' => {
                    self.pos += 1;
                    out.push((Tok::LParen, start));
                }
                b')' => {
                    self.pos += 1;
                    out.push((Tok::RParen, start));
                }
                b',' => {
                    self.pos += 1;
                    out.push((Tok::Comma, start));
                }
                b'.' => {
                    self.pos += 1;
                    out.push((Tok::Dot, start));
                }
                b'\'' => {
                    self.pos += 1;
                    let s = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?
                        .to_string();
                    self.pos += 1; // closing quote
                    out.push((Tok::Str(text), start));
                }
                b'=' => {
                    self.pos += 1;
                    out.push((Tok::Op("=".into()), start));
                }
                b'!' | b'<' | b'>' => {
                    self.pos += 1;
                    let mut op = (c as char).to_string();
                    if self.pos < self.src.len()
                        && (self.src[self.pos] == b'=' || self.src[self.pos] == b'>')
                    {
                        // <=, >=, !=, <>
                        op.push(self.src[self.pos] as char);
                        self.pos += 1;
                    }
                    if op == "!" {
                        return Err(self.error("expected '=' after '!'"));
                    }
                    let op = if op == "<>" { "!=".to_string() } else { op };
                    out.push((Tok::Op(op), start));
                }
                b'0'..=b'9' | b'-' | b'+' => {
                    let s = self.pos;
                    self.pos += 1;
                    let mut is_float = false;
                    while self.pos < self.src.len() {
                        match self.src[self.pos] {
                            b'0'..=b'9' => self.pos += 1,
                            b'.' if !is_float
                                && self.pos + 1 < self.src.len()
                                && self.src[self.pos + 1].is_ascii_digit() =>
                            {
                                is_float = true;
                                self.pos += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                    if is_float {
                        let v: f64 =
                            text.parse().map_err(|_| self.error("invalid float literal"))?;
                        out.push((Tok::Float(v), start));
                    } else {
                        let v: i64 = text.parse().map_err(|_| self.error("invalid int literal"))?;
                        out.push((Tok::Int(v), start));
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let s = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_'
                            || self.src[self.pos] == b'-')
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap().to_string();
                    out.push((Tok::Ident(text), start));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.idx).map(|(_, p)| *p).unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(t, _)| t.clone());
        self.idx += 1;
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), position: self.pos() }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(self.error(format!("expected keyword '{kw}'"))),
        }
    }

    fn is_keyword(t: Option<&Tok>, kw: &str) -> bool {
        matches!(t, Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse(&mut self) -> Result<Conjunction, ParseError> {
        let mut preds = Vec::new();
        loop {
            preds.push(self.clause()?);
            if Self::is_keyword(self.peek(), "and") {
                self.next();
                continue;
            }
            break;
        }
        if self.idx != self.toks.len() {
            return Err(self.error("unexpected trailing input"));
        }
        Ok(Conjunction::from_predicates(preds))
    }

    /// A clause, optionally parenthesized.
    fn clause(&mut self) -> Result<Predicate, ParseError> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next();
            let p = self.clause()?;
            match self.next() {
                Some(Tok::RParen) => Ok(p),
                _ => Err(self.error("expected ')'")),
            }
        } else {
            self.comparison()
        }
    }

    /// Slot path: idents joined by dots or whitespace, terminated by an
    /// operator or keyword (`between`, `in`, `not`).
    fn slot(&mut self) -> Result<String, ParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(s))
                    if !["between", "in", "not", "and"]
                        .iter()
                        .any(|kw| s.eq_ignore_ascii_case(kw)) =>
                {
                    parts.push(s.clone());
                    self.next();
                    if matches!(self.peek(), Some(Tok::Dot)) {
                        self.next();
                    }
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            return Err(self.error("expected slot name"));
        }
        Ok(parts.join("."))
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            _ => Err(self.error("expected value literal")),
        }
    }

    fn value_list(&mut self) -> Result<Vec<Value>, ParseError> {
        match self.next() {
            Some(Tok::LParen) => {}
            _ => return Err(self.error("expected '('")),
        }
        let mut vals = vec![self.value()?];
        loop {
            match self.next() {
                Some(Tok::Comma) => vals.push(self.value()?),
                Some(Tok::RParen) => break,
                _ => return Err(self.error("expected ',' or ')'")),
            }
        }
        Ok(vals)
    }

    fn comparison(&mut self) -> Result<Predicate, ParseError> {
        let slot = self.slot()?;
        match self.peek().cloned() {
            Some(Tok::Op(op)) => {
                self.next();
                let v = self.value()?;
                Ok(match op.as_str() {
                    "=" => Predicate::eq(slot, v),
                    "!=" => Predicate::ne(slot, v),
                    "<" => Predicate::lt(slot, v),
                    "<=" => Predicate::le(slot, v),
                    ">" => Predicate::gt(slot, v),
                    ">=" => Predicate::ge(slot, v),
                    other => return Err(self.error(format!("unknown operator '{other}'"))),
                })
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("between") => {
                self.next();
                let lo = self.value()?;
                self.expect_keyword("and")?;
                let hi = self.value()?;
                Ok(Predicate::between(slot, lo, hi))
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("in") => {
                self.next();
                Ok(Predicate::is_in(slot, self.value_list()?))
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("not") => {
                self.next();
                self.expect_keyword("in")?;
                Ok(Predicate::not_in(slot, self.value_list()?))
            }
            _ => Err(self.error("expected comparison operator")),
        }
    }
}

/// Parses the textual constraint syntax into a [`Conjunction`].
///
/// ```
/// use infosleuth_constraint::parse_conjunction;
/// let c = parse_conjunction(
///     "(patient age between 25 and 65) AND (patient.diagnosis_code = '40W')",
/// ).unwrap();
/// assert!(c.is_satisfiable());
/// assert_eq!(c.constrained_slots().count(), 2);
/// ```
pub fn parse_conjunction(src: &str) -> Result<Conjunction, ParseError> {
    let trimmed = src.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("true") {
        return Ok(Conjunction::always());
    }
    let toks = Lexer::new(src).tokens()?;
    Parser { toks, idx: 0 }.parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_advertisement_constraint() {
        let c = parse_conjunction("patient age between 43 and 75").unwrap();
        assert_eq!(c.constrained_slots().collect::<Vec<_>>(), vec!["patient.age"]);
        assert!(c.domain("patient.age").contains(&Value::Int(43)));
        assert!(!c.domain("patient.age").contains(&Value::Int(42)));
    }

    #[test]
    fn parses_paper_query_constraint() {
        let c = parse_conjunction(
            "(patient age between 25 and 65) AND (patient.diagnosis code = '40W')",
        )
        .unwrap();
        assert!(c.domain("patient.diagnosis.code").contains(&Value::str("40W")));
        assert!(c.domain("patient.age").contains(&Value::Int(30)));
    }

    #[test]
    fn parses_all_operators() {
        for (src, ok_val, bad_val) in [
            ("x = 5", 5, 6),
            ("x != 6", 5, 6),
            ("x < 6", 5, 7),
            ("x <= 5", 5, 6),
            ("x > 4", 5, 3),
            ("x >= 5", 5, 4),
        ] {
            let c = parse_conjunction(src).unwrap();
            assert!(c.domain("x").contains(&Value::Int(ok_val)), "{src}");
            assert!(!c.domain("x").contains(&Value::Int(bad_val)), "{src}");
        }
    }

    #[test]
    fn parses_in_and_not_in() {
        let c = parse_conjunction("city in ('Dallas', 'Houston')").unwrap();
        assert!(c.domain("city").contains(&Value::str("Dallas")));
        assert!(!c.domain("city").contains(&Value::str("Austin")));
        let c = parse_conjunction("city not in ('Dallas')").unwrap();
        assert!(!c.domain("city").contains(&Value::str("Dallas")));
        assert!(c.domain("city").contains(&Value::str("Austin")));
    }

    #[test]
    fn parses_floats_bools_and_sql_ne() {
        let c = parse_conjunction("score >= 2.5 and active = true and x <> 3").unwrap();
        assert!(c.domain("score").contains(&Value::Float(3.0)));
        assert!(c.domain("active").contains(&Value::Bool(true)));
        assert!(!c.domain("x").contains(&Value::Int(3)));
    }

    #[test]
    fn empty_and_true_are_trivial() {
        assert!(parse_conjunction("").unwrap().is_trivial());
        assert!(parse_conjunction("  true ").unwrap().is_trivial());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_conjunction("patient age between 25").is_err());
        assert!(parse_conjunction("= 5").is_err());
        assert!(parse_conjunction("x in (1,").is_err());
        assert!(parse_conjunction("x ! 5").is_err());
        assert!(parse_conjunction("x = 'unterminated").is_err());
        assert!(parse_conjunction("x = 5 garbage").is_err());
    }

    #[test]
    fn negative_numbers() {
        let c = parse_conjunction("delta between -10 and -1").unwrap();
        assert!(c.domain("delta").contains(&Value::Int(-5)));
        assert!(!c.domain("delta").contains(&Value::Int(0)));
    }
}
