//! Conjunctions of predicates, normalized per slot.

use crate::{Predicate, SlotDomain, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A conjunction of atomic constraints, normalized to one [`SlotDomain`] per
/// slot. This is the `data constraints` field of advertisements and service
/// queries in the paper's service ontology.
///
/// The empty conjunction is `true` (no restriction) — an agent that
/// advertises no data constraints matches any requested constraint, and a
/// query with no constraints matches any agent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Conjunction {
    slots: BTreeMap<String, SlotDomain>,
}

impl Conjunction {
    /// The unconstrained (`true`) conjunction.
    pub fn always() -> Self {
        Conjunction::default()
    }

    /// Builds a conjunction from a list of predicates, folding predicates on
    /// the same slot together.
    pub fn from_predicates<I>(preds: I) -> Self
    where
        I: IntoIterator<Item = Predicate>,
    {
        let mut c = Conjunction::default();
        for p in preds {
            c.add(&p);
        }
        c
    }

    /// Adds one predicate to the conjunction.
    pub fn add(&mut self, pred: &Predicate) {
        self.slots.entry(pred.slot.clone()).or_default().constrain(pred);
    }

    /// Whether no slot is constrained.
    pub fn is_trivial(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots this conjunction constrains.
    pub fn constrained_slots(&self) -> impl Iterator<Item = &str> {
        self.slots.keys().map(String::as_str)
    }

    /// The domain of a given slot (unconstrained slots are fully open).
    pub fn domain(&self, slot: &str) -> SlotDomain {
        self.slots.get(slot).cloned().unwrap_or_default()
    }

    /// Whether some assignment of values to slots satisfies the conjunction.
    pub fn is_satisfiable(&self) -> bool {
        self.slots.values().all(SlotDomain::is_satisfiable)
    }

    /// The conjunction of both constraints.
    pub fn intersect(&self, other: &Conjunction) -> Conjunction {
        let mut slots = self.slots.clone();
        for (slot, dom) in &other.slots {
            slots
                .entry(slot.clone())
                .and_modify(|d| *d = d.intersect(dom))
                .or_insert_with(|| dom.clone());
        }
        Conjunction { slots }
    }

    /// Whether the two constraints can be satisfied simultaneously — the
    /// broker's core *overlap* test between an advertised restriction and a
    /// requested constraint. Slots mentioned by only one side are
    /// unconstrained on the other and never block the overlap.
    pub fn overlaps(&self, other: &Conjunction) -> bool {
        self.intersect(other).is_satisfiable()
    }

    /// Whether every assignment satisfying `self` satisfies `other`
    /// (`self ⊆ other`). Used to rank agents: an advertisement that
    /// *implies* the requested constraint covers the whole request, not just
    /// part of it.
    pub fn implies(&self, other: &Conjunction) -> bool {
        if !self.is_satisfiable() {
            return true;
        }
        other.slots.iter().all(|(slot, dom)| self.domain(slot).implies(dom))
    }

    /// A canonical list of predicates equivalent to this conjunction:
    /// parsing their textual form (or re-adding them) reconstructs the same
    /// constraint. Used to serialize constraints into KQML message content.
    pub fn canonical_predicates(&self) -> Vec<Predicate> {
        use crate::{Bound, CompareOp};
        let mut out = Vec::new();
        for (slot, dom) in &self.slots {
            if let Some(p) = dom.range.as_point() {
                out.push(Predicate::new(slot.clone(), CompareOp::Eq(p.clone())));
            } else {
                match &dom.range.lo {
                    Bound::Incl(v) => {
                        out.push(Predicate::new(slot.clone(), CompareOp::Ge(v.clone())))
                    }
                    Bound::Excl(v) => {
                        out.push(Predicate::new(slot.clone(), CompareOp::Gt(v.clone())))
                    }
                    Bound::Unbounded => {}
                }
                match &dom.range.hi {
                    Bound::Incl(v) => {
                        out.push(Predicate::new(slot.clone(), CompareOp::Le(v.clone())))
                    }
                    Bound::Excl(v) => {
                        out.push(Predicate::new(slot.clone(), CompareOp::Lt(v.clone())))
                    }
                    Bound::Unbounded => {}
                }
            }
            if let Some(allowed) = &dom.allowed {
                out.push(Predicate::new(slot.clone(), CompareOp::In(allowed.clone())));
            }
            if !dom.excluded.is_empty() {
                out.push(Predicate::new(slot.clone(), CompareOp::NotIn(dom.excluded.clone())));
            }
        }
        out
    }

    /// The conjunction as parseable text (the inverse of
    /// [`crate::parse_conjunction`]); `"true"` when trivial.
    pub fn to_text(&self) -> String {
        let preds = self.canonical_predicates();
        if preds.is_empty() {
            return "true".to_string();
        }
        preds.iter().map(Predicate::to_string).collect::<Vec<_>>().join(" and ")
    }

    /// Whether a concrete assignment (slot → value) satisfies the
    /// conjunction. Slots absent from the assignment fail closed-world:
    /// a constrained slot must be present.
    pub fn matches(&self, assignment: &BTreeMap<String, Value>) -> bool {
        self.slots
            .iter()
            .all(|(slot, dom)| assignment.get(slot).map(|v| dom.contains(v)).unwrap_or(false))
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.slots.is_empty() {
            return write!(f, "true");
        }
        for (i, (slot, dom)) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{slot} in {dom}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_healthcare_example() {
        // ResourceAgent5 advertises ages 43..=75; the query wants 25..=65
        // with diagnosis code 40W. The paper says the reasoning engine
        // *would* match ResourceAgent5.
        let advertised =
            Conjunction::from_predicates(vec![Predicate::between("patient.age", 43, 75)]);
        let requested = Conjunction::from_predicates(vec![
            Predicate::between("patient.age", 25, 65),
            Predicate::eq("patient.diagnosis_code", "40W"),
        ]);
        assert!(advertised.overlaps(&requested));
        assert!(requested.overlaps(&advertised));
    }

    #[test]
    fn disjoint_ranges_block_overlap() {
        let advertised =
            Conjunction::from_predicates(vec![Predicate::between("patient.age", 43, 75)]);
        let requested =
            Conjunction::from_predicates(vec![Predicate::between("patient.age", 10, 20)]);
        assert!(!advertised.overlaps(&requested));
    }

    #[test]
    fn podiatrists_in_dallas_and_houston() {
        // §2.1: "its subsection of the domain model is restricted to
        // podiatrists in Dallas and Houston".
        let advertised = Conjunction::from_predicates(vec![
            Predicate::eq("provider.specialty", "podiatrist"),
            Predicate::is_in("provider.city", ["Dallas", "Houston"]),
        ]);
        let austin = Conjunction::from_predicates(vec![Predicate::eq("provider.city", "Austin")]);
        assert!(!advertised.overlaps(&austin));
        let dallas = Conjunction::from_predicates(vec![Predicate::eq("provider.city", "Dallas")]);
        assert!(advertised.overlaps(&dallas));
    }

    #[test]
    fn trivial_conjunction_overlaps_and_is_implied() {
        let t = Conjunction::always();
        let c = Conjunction::from_predicates(vec![Predicate::eq("a", 1)]);
        assert!(t.overlaps(&c));
        assert!(c.overlaps(&t));
        assert!(c.implies(&t)); // everything implies `true`
        assert!(!t.implies(&c)); // `true` implies nothing restrictive
    }

    #[test]
    fn implication_orders_specificity() {
        let narrow = Conjunction::from_predicates(vec![
            Predicate::between("age", 40, 50),
            Predicate::eq("city", "Dallas"),
        ]);
        let wide = Conjunction::from_predicates(vec![Predicate::between("age", 20, 80)]);
        assert!(narrow.implies(&wide));
        assert!(!wide.implies(&narrow));
    }

    #[test]
    fn matches_concrete_assignment() {
        let c = Conjunction::from_predicates(vec![
            Predicate::between("age", 43, 75),
            Predicate::eq("code", "40W"),
        ]);
        let mut row = BTreeMap::new();
        row.insert("age".to_string(), Value::Int(50));
        row.insert("code".to_string(), Value::str("40W"));
        assert!(c.matches(&row));
        row.insert("age".to_string(), Value::Int(80));
        assert!(!c.matches(&row));
        row.remove("age");
        assert!(!c.matches(&row)); // constrained slot missing
    }

    #[test]
    fn unsat_conjunction_detected() {
        let c = Conjunction::from_predicates(vec![Predicate::gt("a", 10), Predicate::lt("a", 5)]);
        assert!(!c.is_satisfiable());
        // And it implies anything.
        assert!(c.implies(&Conjunction::from_predicates(vec![Predicate::eq("b", 1)])));
    }

    #[test]
    fn to_text_round_trips_through_parser() {
        let original = Conjunction::from_predicates(vec![
            Predicate::between("patient.age", 25, 65),
            Predicate::eq("patient.diagnosis_code", "40W"),
            Predicate::is_in("city", ["Dallas", "Houston"]),
            Predicate::ne("status", "void"),
            Predicate::gt("score", 1.5),
        ]);
        let text = original.to_text();
        let parsed = crate::parse_conjunction(&text).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(Conjunction::always().to_text(), "true");
        assert_eq!(
            crate::parse_conjunction(&Conjunction::always().to_text()).unwrap(),
            Conjunction::always()
        );
    }

    #[test]
    fn display_reads_like_the_paper() {
        let c = Conjunction::from_predicates(vec![Predicate::between("patient.age", 25, 65)]);
        assert_eq!(c.to_string(), "patient.age in [25, 65]");
        assert_eq!(Conjunction::always().to_string(), "true");
    }
}
