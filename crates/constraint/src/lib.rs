//! Constraint algebra for InfoSleuth semantic brokering.
//!
//! Resource agents advertise *restrictions* on the content they hold (e.g.
//! "patient age between 43 and 75") and service queries carry *data
//! constraints* (e.g. "patient age between 25 and 65 and diagnosis code =
//! '40W'"). The broker must decide whether an advertised restriction
//! **overlaps** a requested constraint — and, for ranking, whether one
//! **implies** the other. This crate provides the value model, interval and
//! set algebra, per-slot domains, and normalized conjunctions that the
//! broker's reasoning engine uses for that decision.
//!
//! # Example
//!
//! ```
//! use infosleuth_constraint::{Conjunction, Predicate, Value};
//!
//! // ResourceAgent5 advertises: patient age between 43 and 75.
//! let advertised = Conjunction::from_predicates(vec![
//!     Predicate::between("patient.age", Value::Int(43), Value::Int(75)),
//! ]);
//! // A query asks for patients between 25 and 65 with diagnosis code 40W.
//! let requested = Conjunction::from_predicates(vec![
//!     Predicate::between("patient.age", Value::Int(25), Value::Int(65)),
//!     Predicate::eq("patient.diagnosis_code", Value::str("40W")),
//! ]);
//! // Ages 43..=65 satisfy both, so the broker recommends the agent.
//! assert!(advertised.overlaps(&requested));
//! // But the advertisement does not imply the request (43..=75 ⊄ 25..=65).
//! assert!(!advertised.implies(&requested));
//! ```

#![forbid(unsafe_code)]

mod conjunction;
mod domain;
mod parse;
mod predicate;
mod range;
mod value;

pub use conjunction::Conjunction;
pub use domain::SlotDomain;
pub use parse::{parse_conjunction, ParseError};
pub use predicate::{CompareOp, Predicate};
pub use range::{Bound, Range};
pub use value::Value;
