//! `infosleuth-lint` — static analysis over the shipped artifacts and the
//! regression corpus.
//!
//! ```text
//! infosleuth-lint [--json]                 lint every shipped artifact
//! infosleuth-lint [--json] --corpus DIR    run the expected-diagnostic corpus
//! infosleuth-lint [--json] --protocol      verify the conversation-protocol table
//! ```
//!
//! Repo mode exits nonzero if *any* diagnostic (including warnings) is
//! reported — the shipped tree must be spotless. Corpus mode exits nonzero
//! if any file's diagnostics differ from its `.expected` fixture. Protocol
//! mode runs only the IS04x statics over the shipped protocol table.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut protocol = false;
    let mut corpus: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--protocol" => protocol = true,
            "--corpus" => match args.next() {
                Some(dir) => corpus = Some(PathBuf::from(dir)),
                None => return usage("--corpus needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: infosleuth-lint [--json] [--corpus DIR | --protocol]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    match (corpus, protocol) {
        (Some(_), true) => usage("--corpus and --protocol are mutually exclusive"),
        (Some(dir), false) => run_corpus(&dir, json),
        (None, true) => run_protocol(json),
        (None, false) => run_repo(json),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("infosleuth-lint: {problem}");
    eprintln!("usage: infosleuth-lint [--json] [--corpus DIR | --protocol]");
    ExitCode::from(2)
}

fn run_protocol(json: bool) -> ExitCode {
    let report = infosleuth_lint::lint_protocols();
    if json {
        println!("[{}]", report.render_json());
    } else if report.is_clean() {
        println!("ok    {} (conversation-protocol table)", report.origin);
    } else {
        print!("{}", report.render_human(None));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_repo(json: bool) -> ExitCode {
    let reports = infosleuth_lint::lint_repo();
    let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    if json {
        let items: Vec<String> = reports.iter().map(|r| r.render_json()).collect();
        println!("[{}]", items.join(","));
    } else {
        for report in &reports {
            if report.is_clean() {
                println!("ok    {}", report.origin);
            } else {
                print!("{}", report.render_human(None));
            }
        }
        println!("{} artifact(s) checked, {} diagnostic(s)", reports.len(), total);
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_corpus(dir: &std::path::Path, json: bool) -> ExitCode {
    let cases = match infosleuth_lint::lint_corpus(dir) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("infosleuth-lint: cannot read corpus {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    if cases.is_empty() {
        eprintln!("infosleuth-lint: no corpus files in {}", dir.display());
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    if json {
        let items: Vec<String> = cases.iter().map(|c| c.report.render_json()).collect();
        println!("[{}]", items.join(","));
        failed = cases.iter().filter(|c| !c.passed()).count();
    } else {
        for case in &cases {
            if case.passed() {
                println!("PASS  {}  [{}]", case.path.display(), case.actual.join(", "));
            } else {
                failed += 1;
                println!(
                    "FAIL  {}  expected [{}], got [{}]",
                    case.path.display(),
                    case.expected.join(", "),
                    case.actual.join(", ")
                );
                print!("{}", case.report.render_human(None));
            }
        }
        println!("{} corpus case(s), {} failure(s)", cases.len(), failed);
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
