//! The lint driver behind the `infosleuth-lint` binary.
//!
//! Two modes:
//!
//! - [`lint_repo`] analyzes every artifact the repository ships — the
//!   broker's matchmaking rule base, representative example-scenario
//!   advertisements derived over the sample ontologies exactly the way
//!   the `Community` builder derives them, the monitor agent's
//!   advertisement, and the standard KQML conversation templates. A clean
//!   tree reports zero diagnostics.
//! - [`lint_corpus`] runs the analyzers over a directory of deliberately
//!   broken inputs (`*.ldl`, `*.ad`, `*.kqml`, `*.sq`, `*.proto`
//!   conversation-protocol specs, `*.trace` conversation event traces) and
//!   compares each file's diagnostics against its `*.expected` fixture,
//!   one `IS0xx` code per line. This is the analyzer's own regression
//!   suite.
//! - [`lint_protocols`] analyzes the shipped conversation-protocol table
//!   (the `--protocol` mode of the binary).

#![forbid(unsafe_code)]

use infosleuth_analysis::{
    analyze_advertisement, analyze_ldl_source, analyze_message, analyze_protocol_source,
    analyze_protocol_table, analyze_service_query, analyze_template, analyze_trace,
    standard_protocols, AdContext, Code, Diagnostic, Report, Span,
};
use infosleuth_core::broker::codec;
use infosleuth_core::constraint::parse_conjunction;
use infosleuth_core::kqml::{standard_templates, Message, SExpr};
use infosleuth_core::ontology::{
    healthcare_ontology, paper_class_ontology, standard_capability_taxonomy, Ontology,
};
use infosleuth_core::relquery::{generate_table, Catalog, GenSpec};
use infosleuth_core::{monitor_advertisement, ResourceDef};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyzes every shipped artifact; one report per artifact, in a stable
/// order. The tree is healthy iff every report is clean.
pub fn lint_repo() -> Vec<Report> {
    let mut reports = Vec::new();

    // The broker's matchmaking rule base, against its own fact schema.
    reports.push(analyze_ldl_source(
        "broker/matchmaking-rules",
        infosleuth_core::broker::matchmaking_rules_text(),
        &infosleuth_core::broker::matchmaking_env(),
    ));

    // Example-scenario advertisements, derived from resource catalogs the
    // same way `Community` derives them, checked against the ontology they
    // declare.
    let tax = standard_capability_taxonomy();
    let healthcare = healthcare_ontology();
    let paper = paper_class_ontology();
    let ctx = AdContext::new().with_taxonomy(&tax).with_ontologies([&healthcare, &paper]);
    for ad in example_advertisements(&healthcare, &paper) {
        reports.push(analyze_advertisement(&ad, &ctx));
    }

    // The standard KQML conversation templates.
    for (name, template) in standard_templates() {
        reports.push(analyze_template(&format!("kqml/template/{name}"), &template));
    }

    // The shipped conversation-protocol table (IS04x statics).
    reports.push(lint_protocols());

    // Source hygiene (IS060) over the runtime crates: `.unwrap()` /
    // `.expect(` outside test modules must carry an explicit
    // `// lint: allow-unwrap` waiver.
    reports.extend(scan_source_hygiene(Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))));
    reports
}

/// Analyzes the shipped conversation-protocol table — the `--protocol`
/// mode of the binary, and part of [`lint_repo`].
pub fn lint_protocols() -> Report {
    analyze_protocol_table(&standard_protocols())
}

/// Directories (relative to the repo root) whose non-test sources must be
/// free of unwaived `.unwrap()` / `.expect(` calls.
const HYGIENE_DIRS: &[&str] = &["crates/agent/src", "crates/broker/src"];

/// Scans the runtime crates' sources for unchecked `.unwrap()` /
/// `.expect(` calls (IS060). Test modules (everything from the first
/// `#[cfg(test)]` line to end of file — the repo convention puts them
/// last) and lines carrying a `// lint: allow-unwrap` waiver are exempt.
/// Missing directories are skipped silently so the binary still works
/// from an installed location.
pub fn scan_source_hygiene(repo_root: &Path) -> Vec<Report> {
    let mut reports = Vec::new();
    for dir in HYGIENE_DIRS {
        let Ok(entries) = fs::read_dir(repo_root.join(dir)) else { continue };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(src) = fs::read_to_string(&path) else { continue };
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("source");
            reports.push(scan_unwraps(&format!("{dir}/{name}"), &src));
        }
    }
    reports
}

/// The IS060 pass over one source file. Positions are byte offsets so a
/// reported span lands on the offending call.
pub fn scan_unwraps(origin: &str, src: &str) -> Report {
    let mut report = Report::new(origin);
    let mut offset = 0usize;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break; // test module; repo convention keeps it at end of file
        }
        let is_comment = trimmed.starts_with("//");
        let waived = line.contains("// lint: allow-unwrap");
        if !is_comment && !waived {
            for pattern in [".unwrap()", ".expect("] {
                for (col, _) in line.match_indices(pattern) {
                    report.push(
                        Diagnostic::new(
                            Code::UncheckedUnwrap,
                            format!(
                                "`{pattern}` in non-test code; handle the error or waive \
                                 with `// lint: allow-unwrap`"
                            ),
                        )
                        .with_span(Span::point(offset + col)),
                    );
                }
            }
        }
        offset += line.len() + 1;
    }
    report
}

/// The advertisements the shipped example scenarios register: one resource
/// agent per sample ontology (every class, §2.4's age constraint on the
/// healthcare one) plus the monitor agent.
fn example_advertisements(
    healthcare: &Ontology,
    paper: &Ontology,
) -> Vec<infosleuth_core::ontology::Advertisement> {
    let seniors = parse_conjunction("patient.age between 43 and 75").expect("parses");
    let ra5 = ResourceDef::new("ResourceAgent5", "healthcare", full_catalog(healthcare))
        .with_constraints(seniors)
        .advertisement(healthcare, 6005);
    let db1 = ResourceDef::new("db1-resource-agent", "paper-classes", full_catalog(paper))
        .advertisement(paper, 6001);
    let monitor = monitor_advertisement("monitor-agent", "tcp://monitor.mcc.com:4000");
    vec![ra5, db1, monitor]
}

/// A catalog holding a small generated extent of every class.
fn full_catalog(ontology: &Ontology) -> Catalog {
    let mut catalog = Catalog::new();
    let mut classes: Vec<&str> = ontology.class_names().collect();
    classes.sort_unstable();
    for (i, class) in classes.into_iter().enumerate() {
        catalog.insert(
            generate_table(ontology, &GenSpec::new(class, 4, i as u64 + 1))
                .expect("sample class generates"),
        );
    }
    catalog
}

/// One corpus file's outcome: the diagnostics the analyzer produced vs the
/// codes the fixture expects.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    pub path: PathBuf,
    pub expected: Vec<String>,
    pub actual: Vec<String>,
    pub report: Report,
}

impl CorpusCase {
    pub fn passed(&self) -> bool {
        self.expected == self.actual
    }
}

/// Runs the analyzers over every `*.ldl`, `*.ad`, `*.kqml`, `*.sq`
/// (standing service query), `*.proto` (conversation-protocol spec), and
/// `*.trace` (conversation event trace) file in `dir` and compares
/// against the `*.expected` fixtures. An `.ldl` file whose first line
/// contains `% env: matchmaking` is analyzed against the broker's fact
/// schema; others are analyzed permissively.
pub fn lint_corpus(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("ldl" | "ad" | "kqml" | "sq" | "proto" | "trace")
            )
        })
        .collect();
    paths.sort();
    let tax = standard_capability_taxonomy();
    let healthcare = healthcare_ontology();
    let paper = paper_class_ontology();
    let ctx = AdContext::new().with_taxonomy(&tax).with_ontologies([&healthcare, &paper]);
    let mut cases = Vec::new();
    for path in paths {
        let src = fs::read_to_string(&path)?;
        let origin = path.file_name().and_then(|n| n.to_str()).unwrap_or("corpus").to_string();
        let report = match path.extension().and_then(|e| e.to_str()) {
            Some("ldl") => analyze_corpus_ldl(&origin, &src),
            Some("ad") => analyze_corpus_ad(&origin, &src, &ctx),
            Some("kqml") => analyze_corpus_kqml(&origin, &src),
            Some("sq") => analyze_corpus_sq(&origin, &src, &ctx),
            Some("proto") => analyze_protocol_source(&origin, &src),
            Some("trace") => analyze_trace(&origin, &src),
            _ => unreachable!("filtered above"),
        };
        let expected = read_expected(&path.with_extension("expected"))?;
        let mut actual: Vec<String> =
            report.diagnostics.iter().map(|d| d.code.as_str().to_string()).collect();
        actual.sort();
        cases.push(CorpusCase { path, expected, actual, report });
    }
    Ok(cases)
}

fn analyze_corpus_ldl(origin: &str, src: &str) -> Report {
    let env = if src.lines().next().is_some_and(|l| l.contains("% env: matchmaking")) {
        infosleuth_core::broker::matchmaking_env()
    } else {
        infosleuth_analysis::LdlEnv::permissive()
    };
    analyze_ldl_source(origin, src, &env)
}

fn analyze_corpus_ad(origin: &str, src: &str, ctx: &AdContext<'_>) -> Report {
    let parsed = SExpr::parse(src)
        .map_err(|e| e.to_string())
        .and_then(|e| codec::advertisement_from_sexpr(&e).map_err(|e| e.to_string()));
    match parsed {
        Ok(ad) => {
            let mut report = analyze_advertisement(&ad, ctx);
            report.origin = origin.to_string();
            report
        }
        Err(message) => {
            let mut report = Report::new(origin);
            report.push(Diagnostic::new(Code::SyntaxError, message).with_span(Span::point(0)));
            report
        }
    }
}

fn analyze_corpus_sq(origin: &str, src: &str, ctx: &AdContext<'_>) -> Report {
    let parsed = SExpr::parse(src)
        .map_err(|e| e.to_string())
        .and_then(|e| codec::service_query_from_sexpr(&e).map_err(|e| e.to_string()));
    match parsed {
        Ok(query) => analyze_service_query(origin, &query, ctx),
        Err(message) => {
            let mut report = Report::new(origin);
            report.push(Diagnostic::new(Code::SyntaxError, message).with_span(Span::point(0)));
            report
        }
    }
}

fn analyze_corpus_kqml(origin: &str, src: &str) -> Report {
    match Message::parse(src.trim()) {
        Ok(msg) => {
            let mut report = analyze_message(&msg);
            report.origin = origin.to_string();
            report
        }
        Err(e) => {
            let mut report = Report::new(origin);
            report
                .push(Diagnostic::new(Code::SyntaxError, e.to_string()).with_span(Span::point(0)));
            report
        }
    }
}

/// Reads an `.expected` fixture: one `IS0xx` code per line; `#` comments
/// and blank lines are ignored. A missing file means "expected clean".
fn read_expected(path: &Path) -> io::Result<Vec<String>> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut codes: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    codes.sort();
    Ok(codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_scan_flags_only_unwaived_nontest_calls() {
        let src = "fn f() {\n\
                   \x20   a.unwrap();\n\
                   \x20   b.expect(\"invariant\"); // lint: allow-unwrap\n\
                   \x20   // c.unwrap() inside a comment is fine\n\
                   \x20   d.unwrap_or_default();\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn g() { e.unwrap(); }\n\
                   }\n";
        let report = scan_unwraps("x.rs", src);
        let codes = report.codes();
        assert_eq!(codes, vec![Code::UncheckedUnwrap], "{}", report.render_human(Some(src)));
        // The one finding points at the `.unwrap()` on line 2.
        let span = report.diagnostics[0].span.expect("span recorded");
        assert_eq!(&src[span.start..span.start + ".unwrap()".len()], ".unwrap()");
    }

    #[test]
    fn hygiene_scan_skips_missing_directories() {
        assert!(scan_source_hygiene(Path::new("/nonexistent/repo/root")).is_empty());
    }

    #[test]
    fn protocol_table_lint_is_clean() {
        let report = lint_protocols();
        assert!(report.is_clean(), "{}", report.render_human(None));
    }
}
