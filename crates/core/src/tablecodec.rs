//! SExpr wire encoding for relational result tables.
//!
//! Resource agents answer SQL queries with a `(table ...)` payload inside a
//! KQML `reply`:
//!
//! ```text
//! (table patient
//!   (columns (id int) (name string) (age int))
//!   (row 1 "ann" 50)
//!   (row 2 "bob" 61))
//! ```

use infosleuth_constraint::Value;
use infosleuth_kqml::SExpr;
use infosleuth_ontology::ValueType;
use infosleuth_relquery::{Column, Table};
use std::fmt;

/// Error decoding a `(table ...)` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCodecError(pub String);

impl fmt::Display for TableCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table codec error: {}", self.0)
    }
}

impl std::error::Error for TableCodecError {}

fn err(m: impl Into<String>) -> TableCodecError {
    TableCodecError(m.into())
}

fn value_to_sexpr(v: &Value) -> SExpr {
    match v {
        Value::Int(i) => SExpr::Atom(i.to_string()),
        Value::Float(f) => SExpr::Atom(format!("{f:?}")), // keeps .0 on integral floats
        Value::Str(s) => SExpr::Str(s.clone()),
        Value::Bool(b) => SExpr::Atom(b.to_string()),
    }
}

fn value_from_sexpr(e: &SExpr, vt: ValueType) -> Result<Value, TableCodecError> {
    match (vt, e) {
        (ValueType::Str, SExpr::Str(s)) => Ok(Value::Str(s.clone())),
        (ValueType::Int, SExpr::Atom(a)) => {
            a.parse().map(Value::Int).map_err(|_| err(format!("bad int '{a}'")))
        }
        (ValueType::Float, SExpr::Atom(a)) => {
            a.parse().map(Value::Float).map_err(|_| err(format!("bad float '{a}'")))
        }
        (ValueType::Bool, SExpr::Atom(a)) => {
            a.parse().map(Value::Bool).map_err(|_| err(format!("bad bool '{a}'")))
        }
        _ => Err(err(format!("value {e} does not fit column type {vt}"))),
    }
}

fn type_name(vt: ValueType) -> &'static str {
    match vt {
        ValueType::Int => "int",
        ValueType::Float => "float",
        ValueType::Str => "string",
        ValueType::Bool => "bool",
    }
}

fn type_from_name(s: &str) -> Result<ValueType, TableCodecError> {
    Ok(match s {
        "int" => ValueType::Int,
        "float" => ValueType::Float,
        "string" => ValueType::Str,
        "bool" => ValueType::Bool,
        other => return Err(err(format!("unknown column type '{other}'"))),
    })
}

/// Encodes a table as `(table name (columns ...) (row ...) ...)`.
pub fn table_to_sexpr(t: &Table) -> SExpr {
    let mut items = vec![SExpr::atom("table"), SExpr::atom(t.name.as_str())];
    let cols: Vec<SExpr> = t
        .columns()
        .iter()
        .map(|c| SExpr::list([SExpr::atom(c.name.as_str()), SExpr::atom(type_name(c.value_type))]))
        .collect();
    let mut col_list = vec![SExpr::atom("columns")];
    col_list.extend(cols);
    items.push(SExpr::List(col_list));
    for row in t.rows() {
        let mut r = vec![SExpr::atom("row")];
        r.extend(row.iter().map(value_to_sexpr));
        items.push(SExpr::List(r));
    }
    SExpr::List(items)
}

/// Option-returning variant of [`table_from_sexpr`], convenient in
/// `and_then` chains.
pub fn table_from_sexpr_ok(e: &SExpr) -> Option<Table> {
    table_from_sexpr(e).ok()
}

/// Decodes a `(table ...)` payload.
pub fn table_from_sexpr(e: &SExpr) -> Result<Table, TableCodecError> {
    let items = e.as_list().ok_or_else(|| err("table must be a list"))?;
    if items.first().and_then(SExpr::as_atom) != Some("table") {
        return Err(err("expected (table ...)"));
    }
    let name = items.get(1).and_then(SExpr::as_atom).ok_or_else(|| err("table missing name"))?;
    let col_list = items
        .get(2)
        .and_then(SExpr::as_list)
        .filter(|l| l.first().and_then(SExpr::as_atom) == Some("columns"))
        .ok_or_else(|| err("table missing (columns ...)"))?;
    let mut columns = Vec::new();
    for c in &col_list[1..] {
        let pair = c.as_list().ok_or_else(|| err("column must be (name type)"))?;
        let cname =
            pair.first().and_then(SExpr::as_atom).ok_or_else(|| err("column missing name"))?;
        let vt = type_from_name(
            pair.get(1).and_then(SExpr::as_atom).ok_or_else(|| err("column missing type"))?,
        )?;
        columns.push(Column::new(cname, vt));
    }
    let types: Vec<ValueType> = columns.iter().map(|c| c.value_type).collect();
    let mut table = Table::new(name, columns);
    for row_expr in &items[3..] {
        let row_list = row_expr
            .as_list()
            .filter(|l| l.first().and_then(SExpr::as_atom) == Some("row"))
            .ok_or_else(|| err("expected (row ...)"))?;
        if row_list.len() - 1 != types.len() {
            return Err(err("row arity mismatch"));
        }
        let mut row = Vec::with_capacity(types.len());
        for (cell, vt) in row_list[1..].iter().zip(&types) {
            row.push(value_from_sexpr(cell, *vt)?);
        }
        table.push_row(row).map_err(|e| err(e.to_string()))?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "patient",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Str),
                Column::new("score", ValueType::Float),
                Column::new("active", ValueType::Bool),
            ],
        );
        t.push_row(vec![
            Value::Int(1),
            Value::str("ann with spaces"),
            Value::Float(2.5),
            Value::Bool(true),
        ])
        .unwrap();
        t.push_row(vec![Value::Int(-2), Value::str(""), Value::Float(3.0), Value::Bool(false)])
            .unwrap();
        t
    }

    #[test]
    fn round_trips_through_text() {
        let t = sample();
        let text = table_to_sexpr(&t).to_string();
        let back = table_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new("empty", vec![Column::new("x", ValueType::Int)]);
        let back = table_from_sexpr(&table_to_sexpr(&t)).unwrap();
        assert_eq!(back, t);
        assert!(back.is_empty());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut t = Table::new("m", vec![Column::new("cost", ValueType::Float)]);
        t.push_row(vec![Value::Float(100.0)]).unwrap();
        let back = table_from_sexpr(&table_to_sexpr(&t)).unwrap();
        assert!(matches!(back.rows()[0][0], Value::Float(f) if f == 100.0));
    }

    #[test]
    fn rejects_malformed_payloads() {
        for bad in [
            "(tabel x (columns))",
            "(table)",
            "(table t (rows))",
            "(table t (columns (x unknown-type)))",
            "(table t (columns (x int)) (row 1 2))",
            "(table t (columns (x int)) (row \"notint\"))",
        ] {
            assert!(table_from_sexpr(&SExpr::parse(bad).unwrap()).is_err(), "should reject {bad}");
        }
    }
}
