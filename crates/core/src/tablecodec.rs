//! SExpr wire encoding for relational result tables.
//!
//! Resource agents answer SQL queries with a `(table ...)` payload inside a
//! KQML `reply`:
//!
//! ```text
//! (table patient
//!   (columns (id int) (name string) (age int))
//!   (row 1 "ann" 50)
//!   (row 2 "bob" 61))
//! ```

use infosleuth_constraint::Value;
use infosleuth_kqml::SExpr;
use infosleuth_ontology::ValueType;
use infosleuth_relquery::{Column, Table};
use std::fmt;

/// Error decoding a `(table ...)` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCodecError(pub String);

impl fmt::Display for TableCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table codec error: {}", self.0)
    }
}

impl std::error::Error for TableCodecError {}

fn err(m: impl Into<String>) -> TableCodecError {
    TableCodecError(m.into())
}

fn value_to_sexpr(v: &Value) -> SExpr {
    match v {
        Value::Int(i) => SExpr::Atom(i.to_string()),
        Value::Float(f) => SExpr::Atom(format!("{f:?}")), // keeps .0 on integral floats
        Value::Str(s) => SExpr::Str(s.clone()),
        Value::Bool(b) => SExpr::Atom(b.to_string()),
    }
}

fn value_from_sexpr(e: &SExpr, vt: ValueType) -> Result<Value, TableCodecError> {
    match (vt, e) {
        (ValueType::Str, SExpr::Str(s)) => Ok(Value::Str(s.clone())),
        (ValueType::Int, SExpr::Atom(a)) => {
            a.parse().map(Value::Int).map_err(|_| err(format!("bad int '{a}'")))
        }
        (ValueType::Float, SExpr::Atom(a)) => {
            a.parse().map(Value::Float).map_err(|_| err(format!("bad float '{a}'")))
        }
        (ValueType::Bool, SExpr::Atom(a)) => {
            a.parse().map(Value::Bool).map_err(|_| err(format!("bad bool '{a}'")))
        }
        _ => Err(err(format!("value {e} does not fit column type {vt}"))),
    }
}

fn type_name(vt: ValueType) -> &'static str {
    match vt {
        ValueType::Int => "int",
        ValueType::Float => "float",
        ValueType::Str => "string",
        ValueType::Bool => "bool",
    }
}

fn type_from_name(s: &str) -> Result<ValueType, TableCodecError> {
    Ok(match s {
        "int" => ValueType::Int,
        "float" => ValueType::Float,
        "string" => ValueType::Str,
        "bool" => ValueType::Bool,
        other => return Err(err(format!("unknown column type '{other}'"))),
    })
}

/// Encodes a table as `(table name (columns ...) (row ...) ...)`.
pub fn table_to_sexpr(t: &Table) -> SExpr {
    let mut items = vec![SExpr::atom("table"), SExpr::atom(t.name.as_str())];
    let cols: Vec<SExpr> = t
        .columns()
        .iter()
        .map(|c| SExpr::list([SExpr::atom(c.name.as_str()), SExpr::atom(type_name(c.value_type))]))
        .collect();
    let mut col_list = vec![SExpr::atom("columns")];
    col_list.extend(cols);
    items.push(SExpr::List(col_list));
    for row in t.rows() {
        let mut r = vec![SExpr::atom("row")];
        r.extend(row.iter().map(value_to_sexpr));
        items.push(SExpr::List(r));
    }
    SExpr::List(items)
}

/// Option-returning variant of [`table_from_sexpr`], convenient in
/// `and_then` chains.
pub fn table_from_sexpr_ok(e: &SExpr) -> Option<Table> {
    table_from_sexpr(e).ok()
}

/// Decodes a `(table ...)` payload.
pub fn table_from_sexpr(e: &SExpr) -> Result<Table, TableCodecError> {
    let items = e.as_list().ok_or_else(|| err("table must be a list"))?;
    if items.first().and_then(SExpr::as_atom) != Some("table") {
        return Err(err("expected (table ...)"));
    }
    let name = items.get(1).and_then(SExpr::as_atom).ok_or_else(|| err("table missing name"))?;
    let col_list = items
        .get(2)
        .and_then(SExpr::as_list)
        .filter(|l| l.first().and_then(SExpr::as_atom) == Some("columns"))
        .ok_or_else(|| err("table missing (columns ...)"))?;
    let mut columns = Vec::new();
    for c in &col_list[1..] {
        let pair = c.as_list().ok_or_else(|| err("column must be (name type)"))?;
        let cname =
            pair.first().and_then(SExpr::as_atom).ok_or_else(|| err("column missing name"))?;
        let vt = type_from_name(
            pair.get(1).and_then(SExpr::as_atom).ok_or_else(|| err("column missing type"))?,
        )?;
        columns.push(Column::new(cname, vt));
    }
    let types: Vec<ValueType> = columns.iter().map(|c| c.value_type).collect();
    let mut table = Table::new(name, columns);
    for row_expr in &items[3..] {
        let row_list = row_expr
            .as_list()
            .filter(|l| l.first().and_then(SExpr::as_atom) == Some("row"))
            .ok_or_else(|| err("expected (row ...)"))?;
        if row_list.len() - 1 != types.len() {
            return Err(err("row arity mismatch"));
        }
        let mut row = Vec::with_capacity(types.len());
        for (cell, vt) in row_list[1..].iter().zip(&types) {
            row.push(value_from_sexpr(cell, *vt)?);
        }
        table.push_row(row).map_err(|e| err(e.to_string()))?;
    }
    Ok(table)
}

/// Encodes a row-level subscription delta:
/// `(delta (added (table ...)) (removed (table ...)))`. Both tables share
/// the subscribed query's schema; either side may be empty.
pub fn table_delta_to_sexpr(added: &Table, removed: &Table) -> SExpr {
    SExpr::list([
        SExpr::atom("delta"),
        SExpr::list([SExpr::atom("added"), table_to_sexpr(added)]),
        SExpr::list([SExpr::atom("removed"), table_to_sexpr(removed)]),
    ])
}

/// Decodes a `(delta ...)` payload into `(added, removed)` tables.
pub fn table_delta_from_sexpr(e: &SExpr) -> Result<(Table, Table), TableCodecError> {
    let items = e.as_list().ok_or_else(|| err("delta must be a list"))?;
    if items.first().and_then(SExpr::as_atom) != Some("delta") {
        return Err(err("expected (delta ...)"));
    }
    let section = |head: &str| -> Result<Table, TableCodecError> {
        let body = items[1..]
            .iter()
            .filter_map(SExpr::as_list)
            .find(|l| l.first().and_then(SExpr::as_atom) == Some(head))
            .ok_or_else(|| err(format!("delta missing ({head} ...)")))?;
        table_from_sexpr(body.get(1).ok_or_else(|| err(format!("({head}) missing table")))?)
    };
    Ok((section("added")?, section("removed")?))
}

/// Row-level diff between two result tables with the same schema: rows of
/// `new` not present in `old` (as a multiset) become `added`, rows of
/// `old` no longer present become `removed`.
pub fn table_diff(old: &Table, new: &Table) -> (Table, Table) {
    let mut unmatched_old: Vec<&[Value]> = old.rows().iter().map(|r| r.as_slice()).collect();
    let mut added = Table::new(new.name.as_str(), new.columns().to_vec());
    for row in new.rows() {
        if let Some(i) = unmatched_old.iter().position(|o| *o == row.as_slice()) {
            unmatched_old.swap_remove(i);
        } else {
            added.push_row(row.clone()).expect("schema matches source table");
        }
    }
    let mut removed = Table::new(old.name.as_str(), old.columns().to_vec());
    for row in unmatched_old {
        removed.push_row(row.to_vec()).expect("schema matches source table");
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "patient",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Str),
                Column::new("score", ValueType::Float),
                Column::new("active", ValueType::Bool),
            ],
        );
        t.push_row(vec![
            Value::Int(1),
            Value::str("ann with spaces"),
            Value::Float(2.5),
            Value::Bool(true),
        ])
        .unwrap();
        t.push_row(vec![Value::Int(-2), Value::str(""), Value::Float(3.0), Value::Bool(false)])
            .unwrap();
        t
    }

    #[test]
    fn round_trips_through_text() {
        let t = sample();
        let text = table_to_sexpr(&t).to_string();
        let back = table_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new("empty", vec![Column::new("x", ValueType::Int)]);
        let back = table_from_sexpr(&table_to_sexpr(&t)).unwrap();
        assert_eq!(back, t);
        assert!(back.is_empty());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let mut t = Table::new("m", vec![Column::new("cost", ValueType::Float)]);
        t.push_row(vec![Value::Float(100.0)]).unwrap();
        let back = table_from_sexpr(&table_to_sexpr(&t)).unwrap();
        assert!(matches!(back.rows()[0][0], Value::Float(f) if f == 100.0));
    }

    #[test]
    fn delta_round_trips_and_diff_is_row_level() {
        let old = sample();
        let mut new = Table::new("patient", old.columns().to_vec());
        // Keep row 0, drop row 1, add a fresh row.
        new.push_row(old.rows()[0].clone()).unwrap();
        new.push_row(vec![Value::Int(7), Value::str("new"), Value::Float(1.0), Value::Bool(true)])
            .unwrap();
        let (added, removed) = table_diff(&old, &new);
        assert_eq!(added.len(), 1);
        assert_eq!(added.rows()[0][0], Value::Int(7));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed.rows()[0][0], Value::Int(-2));
        let text = table_delta_to_sexpr(&added, &removed).to_string();
        let (a2, r2) = table_delta_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(a2, added);
        assert_eq!(r2, removed);
        // Equal tables diff to empty on both sides.
        let (a3, r3) = table_diff(&old, &old);
        assert!(a3.is_empty() && r3.is_empty());
        assert!(table_delta_from_sexpr(&SExpr::parse("(nonsense)").unwrap()).is_err());
    }

    #[test]
    fn rejects_malformed_payloads() {
        for bad in [
            "(tabel x (columns))",
            "(table)",
            "(table t (rows))",
            "(table t (columns (x unknown-type)))",
            "(table t (columns (x int)) (row 1 2))",
            "(table t (columns (x int)) (row \"notint\"))",
        ] {
            assert!(table_from_sexpr(&SExpr::parse(bad).unwrap()).is_err(), "should reject {bad}");
        }
    }
}
