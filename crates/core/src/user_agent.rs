//! User agents: proxies for individual users.
//!
//! Figure 6: the user submits `select * from C2`; her user agent asks the
//! broker for "one multiresource query processing agent that can accept and
//! process SQL queries", then forwards the query to the recommended agent
//! and returns the assembled result.

use crate::tablecodec;
use infosleuth_agent::{Bus, BusError, Endpoint, Transport, TransportExt};
use infosleuth_broker::query_broker;
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_ontology::{AgentType, Capability, ServiceQuery};
use infosleuth_relquery::Table;
use std::fmt;
use std::time::Duration;

/// Errors surfaced to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum UserAgentError {
    /// The broker recommended no MRQ agent.
    NoQueryAgent,
    /// Transport or timeout failure.
    Bus(BusError),
    /// The MRQ agent answered `sorry` or `error` with this explanation.
    QueryFailed(String),
    /// The reply payload was not a table.
    BadReply(String),
}

impl fmt::Display for UserAgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserAgentError::NoQueryAgent => {
                write!(f, "no multiresource query agent available")
            }
            UserAgentError::Bus(e) => write!(f, "{e}"),
            UserAgentError::QueryFailed(m) => write!(f, "query failed: {m}"),
            UserAgentError::BadReply(m) => write!(f, "malformed reply: {m}"),
        }
    }
}

impl std::error::Error for UserAgentError {}

impl From<BusError> for UserAgentError {
    fn from(e: BusError) -> Self {
        UserAgentError::Bus(e)
    }
}

/// A user agent. Unlike the service agents it is caller-driven: the
/// application thread calls [`UserAgent::submit_sql`].
pub struct UserAgent {
    endpoint: Endpoint,
    brokers: Vec<String>,
    timeout: Duration,
}

impl UserAgent {
    /// Registers a user agent on the bus with its preferred brokers.
    pub fn connect(
        bus: &Bus,
        name: impl Into<String>,
        brokers: Vec<String>,
        timeout: Duration,
    ) -> Result<UserAgent, BusError> {
        UserAgent::connect_over(bus.as_transport(), name, brokers, timeout)
    }

    /// Registers a user agent on any [`Transport`] (in-proc bus or TCP
    /// node) with its preferred brokers.
    pub fn connect_over(
        transport: std::sync::Arc<dyn Transport>,
        name: impl Into<String>,
        brokers: Vec<String>,
        timeout: Duration,
    ) -> Result<UserAgent, BusError> {
        let endpoint = transport.endpoint(name.into())?;
        Ok(UserAgent { endpoint, brokers, timeout })
    }

    pub fn name(&self) -> &str {
        self.endpoint.name()
    }

    /// Figure 6 end to end: locate an MRQ agent via the brokers, forward
    /// the SQL (with its ontology tag), return the assembled table.
    pub fn submit_sql(
        &mut self,
        sql: &str,
        ontology: Option<&str>,
    ) -> Result<Table, UserAgentError> {
        let query = ServiceQuery::for_agent_type(AgentType::MultiResourceQuery)
            .with_query_language("SQL 2.0")
            .with_capability(Capability::multiresource_query_processing())
            .one();
        let mut mrq = None;
        for broker in &self.brokers {
            match query_broker(&mut self.endpoint, broker, &query, None, self.timeout) {
                Ok(matches) if !matches.is_empty() => {
                    mrq = Some(matches[0].name.clone());
                    break;
                }
                _ => continue,
            }
        }
        let mrq = mrq.ok_or(UserAgentError::NoQueryAgent)?;
        let mut msg = Message::new(Performative::AskAll)
            .with_language("SQL 2.0")
            .with_content(SExpr::string(sql));
        if let Some(o) = ontology {
            msg = msg.with_ontology(o);
        }
        let reply = self.endpoint.request(&mrq, msg, self.timeout)?;
        match reply.performative {
            Performative::Reply => {
                let content = reply
                    .content()
                    .ok_or_else(|| UserAgentError::BadReply("missing content".into()))?;
                tablecodec::table_from_sexpr(content)
                    .map_err(|e| UserAgentError::BadReply(e.to_string()))
            }
            _ => {
                let reason =
                    reply.content().and_then(SExpr::as_text).unwrap_or("unspecified").to_string();
                Err(UserAgentError::QueryFailed(reason))
            }
        }
    }

    /// Direct access to the underlying endpoint, for advanced scenarios
    /// (subscriptions, custom conversations).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_agent::Bus;
    use infosleuth_broker::{BrokerAgent, BrokerConfig, Repository};

    #[test]
    fn no_broker_reachable_yields_no_query_agent() {
        let bus = Bus::new();
        let mut user = UserAgent::connect(
            &bus,
            "lonely-user",
            vec!["ghost-broker".into()],
            Duration::from_millis(100),
        )
        .expect("connects");
        assert_eq!(user.name(), "lonely-user");
        let err = user.submit_sql("select * from C1", None).unwrap_err();
        assert_eq!(err, UserAgentError::NoQueryAgent);
    }

    #[test]
    fn broker_without_mrq_yields_no_query_agent() {
        let bus = Bus::new();
        let broker = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("empty-broker", "tcp://b.mcc.com:5000"),
            Repository::new(),
        )
        .expect("broker spawns");
        let mut user =
            UserAgent::connect(&bus, "user", vec!["empty-broker".into()], Duration::from_secs(2))
                .expect("connects");
        let err = user.submit_sql("select * from C1", None).unwrap_err();
        assert_eq!(err, UserAgentError::NoQueryAgent);
        broker.stop();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(UserAgentError::NoQueryAgent.to_string().contains("multiresource"));
        assert!(UserAgentError::QueryFailed("boom".into()).to_string().contains("boom"));
        assert!(UserAgentError::BadReply("bad".into()).to_string().contains("bad"));
    }
}
