//! The MRQ agent's result-combination logic.
//!
//! The multiresource query agent "forwards a query to these two agents,
//! receives the responses, assembles the result". Contributions for one
//! class can be:
//!
//! * replicas or horizontal fragments (same columns) — combined by
//!   **union** with duplicate elimination;
//! * vertical fragments (different column subsets, sharing the class key)
//!   — combined by **join on the key**;
//! * subclass extents (the `CH` stream) — resource agents answer a
//!   superclass query with their subclass rows, so these also arrive as
//!   same-column unions.
//!
//! The merged extent is normalized to bare column names so the MRQ can run
//! the user's original relational plan against the assembled catalog.

use infosleuth_constraint::Value;
use infosleuth_ontology::Ontology;
use infosleuth_relquery::{Column, Table};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Error combining contributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineError {
    /// No resource contributed anything for the class.
    NoContributions { class: String },
    /// Vertical fragments cannot be rejoined without the class key.
    MissingKey { class: String },
    /// Subclass extents share no common columns and cannot be unioned.
    IncompatibleExtents { class: String },
}

impl fmt::Display for CombineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineError::NoContributions { class } => {
                write!(f, "no resource agent contributed data for class '{class}'")
            }
            CombineError::MissingKey { class } => {
                write!(f, "vertical fragments of '{class}' lack the class key and cannot be joined")
            }
            CombineError::IncompatibleExtents { class } => {
                write!(f, "subclass extents of '{class}' share no columns and cannot be unioned")
            }
        }
    }
}

impl std::error::Error for CombineError {}

/// Strips qualification: `patient.age` → `age`.
fn bare(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

/// Rebuilds a table with bare column names; duplicate bare names keep the
/// first occurrence.
fn normalize(class: &str, t: &Table) -> Table {
    let mut keep: Vec<usize> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut columns = Vec::new();
    for (i, c) in t.columns().iter().enumerate() {
        let b = bare(&c.name).to_string();
        if seen.insert(b.clone()) {
            keep.push(i);
            columns.push(Column::new(b, c.value_type));
        }
    }
    let mut out = Table::new(class.to_string(), columns);
    for row in t.rows() {
        let projected: Vec<Value> = keep.iter().map(|&i| row[i].clone()).collect();
        out.push_row(projected).expect("schema derived from source");
    }
    out
}

/// Unions tables with identical (bare) column sets, deduplicating rows.
fn union_group(class: &str, tables: &[Table]) -> Table {
    let first = &tables[0];
    let mut out = Table::new(class.to_string(), first.columns().to_vec());
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    // Later tables may order columns differently; realign to the first.
    let order: Vec<String> = first.columns().iter().map(|c| c.name.clone()).collect();
    for t in tables {
        let idx: Vec<usize> = order
            .iter()
            .map(|c| t.column_index(c).expect("grouped by identical column sets"))
            .collect();
        for row in t.rows() {
            let aligned: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(aligned.clone()) {
                out.push_row(aligned).expect("aligned to group schema");
            }
        }
    }
    out
}

/// Joins two vertical fragments on the key column, keeping the key once.
fn join_fragments(class: &str, key: &str, left: &Table, right: &Table) -> Table {
    let li = left.column_index(key).expect("caller checked key presence");
    let ri = right.column_index(key).expect("caller checked key presence");
    let mut columns = left.columns().to_vec();
    for (i, c) in right.columns().iter().enumerate() {
        if i != ri && !columns.iter().any(|lc| lc.name == c.name) {
            columns.push(c.clone());
        }
    }
    let keep_right: Vec<usize> = right
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, c)| *i != ri && !left.columns().iter().any(|lc| lc.name == c.name))
        .map(|(i, _)| i)
        .collect();
    let mut out = Table::new(class.to_string(), columns);
    let mut built: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        built.entry(&row[ri]).or_default().push(i);
    }
    for lrow in left.rows() {
        if let Some(matches) = built.get(&lrow[li]) {
            for &r in matches {
                let mut joined = lrow.clone();
                joined.extend(keep_right.iter().map(|&i| right.rows()[r][i].clone()));
                out.push_row(joined).expect("concatenated fragment schemas");
            }
        }
    }
    out
}

/// Merges fragments of *one concrete class* (same source-class name):
/// same-column contributions union; distinct column subsets (vertical
/// fragments) join on the class key.
fn merge_one_class(
    class: &str,
    contributions: Vec<Table>,
    ontology: Option<&Ontology>,
) -> Result<Table, CombineError> {
    // Group by column-name set.
    let mut groups: BTreeMap<Vec<String>, Vec<Table>> = BTreeMap::new();
    for t in contributions {
        let mut cols: Vec<String> = t.columns().iter().map(|c| c.name.clone()).collect();
        cols.sort();
        groups.entry(cols).or_default().push(t);
    }
    let mut merged: Vec<Table> = groups.values().map(|g| union_group(class, g)).collect();
    if merged.len() == 1 {
        return Ok(merged.pop().expect("one group"));
    }
    // Vertical fragments: join successive groups on the class key.
    let key = ontology
        .and_then(|o| o.class(class))
        .and_then(|c| c.key_slots().next().map(|s| s.name.clone()))
        .unwrap_or_else(|| "id".to_string());
    let mut iter = merged.into_iter();
    let mut acc = iter.next().expect("non-empty contributions");
    if acc.column_index(&key).is_none() {
        return Err(CombineError::MissingKey { class: class.to_string() });
    }
    for next in iter {
        if next.column_index(&key).is_none() {
            return Err(CombineError::MissingKey { class: class.to_string() });
        }
        acc = join_fragments(class, &key, &acc, &next);
    }
    Ok(acc)
}

/// Merges all contributions for one requested class into a single extent.
///
/// Contributions are first partitioned by the class they actually
/// represent (the reply table's name — a resource answering a superclass
/// query with subclass rows names the table after the subclass). Within a
/// partition, fragments union/join per `merge_one_class`; across
/// partitions (subclass extents under a hierarchy query), the extents
/// union over their common columns.
pub fn merge_class_extent(
    class: &str,
    contributions: Vec<Table>,
    ontology: Option<&Ontology>,
) -> Result<Table, CombineError> {
    if contributions.is_empty() {
        return Err(CombineError::NoContributions { class: class.to_string() });
    }
    // Partition by source class, preserving discovery order.
    let mut order: Vec<String> = Vec::new();
    let mut partitions: BTreeMap<String, Vec<Table>> = BTreeMap::new();
    for t in contributions {
        let source = if t.name.is_empty() { class.to_string() } else { t.name.clone() };
        if !order.contains(&source) {
            order.push(source.clone());
        }
        partitions.entry(source.clone()).or_default().push(normalize(&source, &t));
    }
    let mut extents = Vec::with_capacity(order.len());
    for source in &order {
        let tables = partitions.remove(source).expect("partition recorded");
        extents.push(merge_one_class(source, tables, ontology)?);
    }
    if extents.len() == 1 {
        let mut only = extents.pop().expect("one extent");
        only.name = class.to_string();
        return Ok(only);
    }
    // Hierarchy union: project every subclass extent onto the columns they
    // all share (in the first extent's order), then union with dedup.
    let common: Vec<Column> = extents[0]
        .columns()
        .iter()
        .filter(|c| extents[1..].iter().all(|e| e.column_index(&c.name).is_some()))
        .cloned()
        .collect();
    if common.is_empty() {
        return Err(CombineError::IncompatibleExtents { class: class.to_string() });
    }
    let mut out = Table::new(class.to_string(), common.clone());
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for e in &extents {
        let idx: Vec<usize> = common
            .iter()
            .map(|c| e.column_index(&c.name).expect("common column present"))
            .collect();
        for row in e.rows() {
            let projected: Vec<Value> = idx.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(projected.clone()) {
                out.push_row(projected).expect("projected onto common schema");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::{healthcare_ontology, ValueType};

    fn t(name: &str, cols: &[(&str, ValueType)], rows: Vec<Vec<Value>>) -> Table {
        let mut table = Table::new(name, cols.iter().map(|(n, vt)| Column::new(*n, *vt)).collect());
        for r in rows {
            table.push_row(r).unwrap();
        }
        table
    }

    #[test]
    fn horizontal_contributions_union_and_dedup() {
        // DB1 and DB2 both hold C2 rows (Figure 7); overlapping rows appear
        // once.
        let a = t(
            "C2",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)]],
        );
        let b = t(
            "C2",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(2), Value::Int(20)], vec![Value::Int(3), Value::Int(30)]],
        );
        let merged = merge_class_extent("C2", vec![a, b], None).unwrap();
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn qualified_columns_are_normalized() {
        let a = t(
            "patient",
            &[("patient.id", ValueType::Int), ("patient.age", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(50)]],
        );
        let merged = merge_class_extent("patient", vec![a], None).unwrap();
        assert_eq!(merged.columns()[0].name, "id");
        assert_eq!(merged.columns()[1].name, "age");
    }

    #[test]
    fn union_aligns_permuted_columns() {
        let a = t(
            "C",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(10)]],
        );
        let b = t(
            "C",
            &[("a", ValueType::Int), ("id", ValueType::Int)],
            vec![vec![Value::Int(20), Value::Int(2)]],
        );
        let merged = merge_class_extent("C", vec![a, b], None).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.value(1, "id"), Some(&Value::Int(2)));
        assert_eq!(merged.value(1, "a"), Some(&Value::Int(20)));
    }

    #[test]
    fn vertical_fragments_join_on_key() {
        let onto = healthcare_ontology();
        // Fragment 1: id + name; fragment 2: id + age.
        let f1 = t(
            "patient",
            &[("id", ValueType::Int), ("name", ValueType::Str)],
            vec![vec![Value::Int(1), Value::str("ann")], vec![Value::Int(2), Value::str("bob")]],
        );
        let f2 = t(
            "patient",
            &[("id", ValueType::Int), ("age", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(50)], vec![Value::Int(2), Value::Int(61)]],
        );
        let merged = merge_class_extent("patient", vec![f1, f2], Some(&onto)).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.columns().len(), 3); // id, name, age (key kept once)
        assert_eq!(merged.value(0, "name"), Some(&Value::str("ann")));
        assert_eq!(merged.value(0, "age"), Some(&Value::Int(50)));
    }

    #[test]
    fn fragmentation_and_replication_combined() {
        // FH-style: fragment 1 arrives from two resources (union first),
        // then joins with fragment 2.
        let f1a = t(
            "patient",
            &[("id", ValueType::Int), ("name", ValueType::Str)],
            vec![vec![Value::Int(1), Value::str("ann")]],
        );
        let f1b = t(
            "patient",
            &[("id", ValueType::Int), ("name", ValueType::Str)],
            vec![vec![Value::Int(2), Value::str("bob")]],
        );
        let f2 = t(
            "patient",
            &[("id", ValueType::Int), ("age", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(50)], vec![Value::Int(2), Value::Int(61)]],
        );
        let onto = healthcare_ontology();
        let merged = merge_class_extent("patient", vec![f1a, f1b, f2], Some(&onto)).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.value(1, "age"), Some(&Value::Int(61)));
    }

    #[test]
    fn subclass_extents_union_not_join() {
        // A hierarchy query over C2 receives a C2a extent and a C2b
        // extent with disjoint keys: they must union, never key-join.
        let a = t(
            "C2a",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(10)]],
        );
        let b = t(
            "C2b",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(9), Value::Int(90)]],
        );
        let merged = merge_class_extent("C2", vec![a, b], None).unwrap();
        assert_eq!(merged.name, "C2");
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn fragmented_subclass_joins_before_hierarchy_union() {
        // C2a arrives as two vertical fragments; C2b arrives whole. The
        // fragments must join first, then union with C2b over the common
        // columns.
        let f1 = t(
            "C2a",
            &[("id", ValueType::Int), ("a", ValueType::Int)],
            vec![vec![Value::Int(1), Value::Int(10)]],
        );
        let f2 = t(
            "C2a",
            &[("id", ValueType::Int), ("b", ValueType::Str)],
            vec![vec![Value::Int(1), Value::str("one")]],
        );
        let whole = t(
            "C2b",
            &[("id", ValueType::Int), ("a", ValueType::Int), ("b", ValueType::Str)],
            vec![vec![Value::Int(9), Value::Int(90), Value::str("nine")]],
        );
        let merged = merge_class_extent("C2", vec![f1, f2, whole], None).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.columns().len(), 3);
    }

    #[test]
    fn incompatible_subclass_extents_error() {
        let a = t("X1", &[("p", ValueType::Int)], vec![vec![Value::Int(1)]]);
        let b = t("X2", &[("q", ValueType::Int)], vec![vec![Value::Int(2)]]);
        assert!(matches!(
            merge_class_extent("X", vec![a, b], None),
            Err(CombineError::IncompatibleExtents { .. })
        ));
    }

    #[test]
    fn missing_key_is_an_error() {
        let f1 = t("x", &[("a", ValueType::Int)], vec![vec![Value::Int(1)]]);
        let f2 = t("x", &[("b", ValueType::Int)], vec![vec![Value::Int(2)]]);
        assert!(matches!(
            merge_class_extent("x", vec![f1, f2], None),
            Err(CombineError::MissingKey { .. })
        ));
    }

    #[test]
    fn no_contributions_is_an_error() {
        assert!(matches!(
            merge_class_extent("x", vec![], None),
            Err(CombineError::NoContributions { .. })
        ));
    }
}
