//! The monitor agent (Figure 1): standing-query notifications across the
//! community.
//!
//! InfoSleuth's motivating examples are monitoring tasks — "Notify me when
//! the cost of hospital stays for a Caesarian delivery significantly
//! deviates from the expected cost." A user agent sends the monitor agent a
//! `subscribe` with an SQL standing query; the monitor locates every
//! resource agent that can contribute (through the broker, like the MRQ
//! agent), opens subscriptions with each of them, and relays their change
//! notifications back to the user, tagging each with the originating
//! resource.

use infosleuth_agent::{Bus, BusError, Endpoint};
use infosleuth_broker::query_broker;
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, Capability, ConversationType, SemanticInfo,
    ServiceQuery, SyntacticInfo,
};
use infosleuth_relquery::{parse_select, plan, referenced_classes};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the monitor agent.
pub struct MonitorSpec {
    pub name: String,
    pub address: String,
    pub brokers: Vec<String>,
    pub timeout: Duration,
}

/// The monitor agent's standard advertisement.
pub fn monitor_advertisement(name: &str, address: &str) -> Advertisement {
    Advertisement::new(AgentLocation::new(name, address, AgentType::Monitor))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe, ConversationType::Tell])
                .with_capabilities([Capability::subscription(), Capability::notification()]),
        )
}

/// Handle to a running monitor agent.
pub struct MonitorAgentHandle {
    name: String,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MonitorAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MonitorAgentHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One upstream subscription held at a resource agent, mapped back to the
/// downstream subscriber.
struct Relay {
    subscriber: String,
    downstream_id: String,
    resource: String,
}

/// Spawns the monitor agent: advertises to every broker, then serves
/// `subscribe` requests and relays notifications.
pub fn spawn_monitor_agent(bus: &Bus, spec: MonitorSpec) -> Result<MonitorAgentHandle, BusError> {
    let mut endpoint = bus.register(&spec.name)?;
    let ad = monitor_advertisement(&spec.name, &spec.address);
    for broker in &spec.brokers {
        let _ = infosleuth_broker::advertise_to(&mut endpoint, broker, &ad, spec.timeout);
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let name = spec.name.clone();
    let thread = std::thread::spawn(move || run_loop(endpoint, spec, flag));
    Ok(MonitorAgentHandle { name, shutdown, thread: Some(thread) })
}

fn run_loop(mut endpoint: Endpoint, spec: MonitorSpec, shutdown: Arc<AtomicBool>) {
    // Upstream subscription id → downstream relay target.
    let mut relays: HashMap<String, Relay> = HashMap::new();
    let mut seq = 0u64;
    while !shutdown.load(Ordering::Relaxed) {
        let Some(env) = endpoint.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        match env.message.performative {
            Performative::Ping => {
                let reply = env.message.reply_skeleton(Performative::Reply);
                let _ = endpoint.send(&env.from, reply);
            }
            Performative::Subscribe => {
                seq += 1;
                let reply =
                    open_subscription(&mut endpoint, &spec, &env, seq, &mut relays);
                let _ = endpoint.send(&env.from, reply);
            }
            Performative::Tell => {
                // A notification from a resource agent: relay downstream.
                let Some(upstream_id) = env.message.in_reply_to() else {
                    continue;
                };
                if let Some(relay) = relays.get(upstream_id) {
                    let mut fwd = Message::new(Performative::Tell)
                        .with_in_reply_to(relay.downstream_id.clone());
                    if let Some(content) = env.message.content() {
                        fwd.set("content", content.clone());
                    }
                    // Provenance: which resource changed.
                    fwd.set("resource", SExpr::atom(relay.resource.as_str()));
                    let _ = endpoint.send(&relay.subscriber, fwd);
                }
            }
            _ => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string("monitor agent accepts subscribe only"));
                let _ = endpoint.send(&env.from, reply);
            }
        }
    }
    endpoint.unregister();
}

/// Locates contributing resources for a standing query and subscribes to
/// each; returns the downstream acknowledgement.
fn open_subscription(
    endpoint: &mut Endpoint,
    spec: &MonitorSpec,
    env: &infosleuth_agent::Envelope,
    seq: u64,
    relays: &mut HashMap<String, Relay>,
) -> Message {
    let Some(sql) = env.message.content().and_then(SExpr::as_text).map(str::to_string)
    else {
        return env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("expected SQL content"));
    };
    let stmt = match parse_select(&sql) {
        Ok(s) => s,
        Err(e) => {
            return env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()))
        }
    };
    let classes = referenced_classes(&plan(&stmt));
    // One service query covering all referenced classes.
    let mut query = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_query_language("SQL 2.0")
        .with_classes(classes.iter().map(String::as_str));
    if let Some(o) = env.message.ontology() {
        query = query.with_ontology(o);
    }
    let mut matches = Vec::new();
    for broker in &spec.brokers {
        if let Ok(m) = query_broker(endpoint, broker, &query, None, spec.timeout) {
            if !m.is_empty() {
                matches = m;
                break;
            }
        }
    }
    if matches.is_empty() {
        return env.message.reply_skeleton(Performative::Sorry).with_content(SExpr::string(
            format!("no resource agents found for classes {classes:?}"),
        ));
    }
    let downstream_id = env
        .message
        .reply_with()
        .map(str::to_string)
        .unwrap_or_else(|| format!("mon-{seq}"));
    let mut opened = 0;
    for m in &matches {
        let sub = Message::new(Performative::Subscribe)
            .with_language("SQL 2.0")
            .with_content(SExpr::string(sql.clone()));
        match endpoint.request(&m.name, sub, spec.timeout) {
            Ok(ack) if ack.performative == Performative::Tell => {
                let upstream_id = ack
                    .content()
                    .and_then(SExpr::as_text)
                    .unwrap_or_default()
                    .to_string();
                if !upstream_id.is_empty() {
                    relays.insert(
                        upstream_id,
                        Relay {
                            subscriber: env.from.clone(),
                            downstream_id: downstream_id.clone(),
                            resource: m.name.clone(),
                        },
                    );
                    opened += 1;
                }
            }
            _ => {}
        }
    }
    if opened == 0 {
        return env
            .message
            .reply_skeleton(Performative::Sorry)
            .with_content(SExpr::string("no resource accepted the subscription"));
    }
    env.message
        .reply_skeleton(Performative::Tell)
        .with_content(SExpr::atom(downstream_id))
        .with("resources", SExpr::Atom(opened.to_string()))
}
