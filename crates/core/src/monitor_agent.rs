//! The monitor agent (Figure 1): standing-query notifications across the
//! community.
//!
//! InfoSleuth's motivating examples are monitoring tasks — "Notify me when
//! the cost of hospital stays for a Caesarian delivery significantly
//! deviates from the expected cost." A user agent sends the monitor agent a
//! `subscribe` with an SQL standing query; the monitor locates every
//! resource agent that can contribute (through the broker, like the MRQ
//! agent), opens subscriptions with each of them, and relays their change
//! notifications back to the user, tagging each with the originating
//! resource.
//!
//! The monitor is also the community's delivery-failure sink: every agent
//! hosted on an [`AgentRuntime`] configured with this monitor reports
//! failed sends here as `tell`s tagged with [`LOG_ONTOLOGY`], and the
//! handle exposes the accumulated log — the observable form of §4.2.2's
//! "the transport layer will fail to make the connection".

use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Envelope, RuntimeConfig,
    LOG_ONTOLOGY,
};
use infosleuth_broker::query_broker;
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, Capability, ConversationType, SemanticInfo,
    ServiceQuery, SyntacticInfo,
};
use infosleuth_relquery::{parse_select, plan, referenced_classes};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the monitor agent.
pub struct MonitorSpec {
    pub name: String,
    pub address: String,
    pub brokers: Vec<String>,
    pub timeout: Duration,
}

/// The monitor agent's standard advertisement.
pub fn monitor_advertisement(name: &str, address: &str) -> Advertisement {
    Advertisement::new(AgentLocation::new(name, address, AgentType::Monitor))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe, ConversationType::Tell])
                .with_capabilities([Capability::subscription(), Capability::notification()]),
        )
}

/// One recorded delivery failure, as reported by a sending agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// The agent whose send was refused.
    pub agent: String,
    /// The unreachable peer.
    pub peer: String,
    /// The performative of the message that could not be delivered.
    pub performative: String,
    /// The sender's running failure count at the time of the report.
    pub count: u64,
}

/// Handle to a running monitor agent.
pub struct MonitorAgentHandle {
    name: String,
    agent: AgentHandle,
    log: Arc<Mutex<Vec<DeliveryFailure>>>,
    _runtime: Option<AgentRuntime>,
}

impl MonitorAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Every delivery failure reported to this monitor so far.
    pub fn delivery_log(&self) -> Vec<DeliveryFailure> {
        self.log.lock().clone()
    }

    /// Number of delivery-failure reports received.
    pub fn delivery_failure_reports(&self) -> usize {
        self.log.lock().len()
    }

    /// Sends by the monitor itself that the transport refused.
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    pub fn stop(self) {
        self.agent.stop();
    }
}

/// One upstream subscription held at a resource agent, mapped back to the
/// downstream subscriber.
struct Relay {
    subscriber: String,
    downstream_id: String,
    resource: String,
}

struct MonitorState {
    relays: HashMap<String, Relay>,
    seq: u64,
}

struct MonitorBehavior {
    spec: MonitorSpec,
    state: Mutex<MonitorState>,
    log: Arc<Mutex<Vec<DeliveryFailure>>>,
}

impl AgentBehavior for MonitorBehavior {
    fn on_message(&self, ctx: &AgentContext, env: Envelope) {
        match env.message.performative {
            Performative::Ping => {
                let reply = env.message.reply_skeleton(Performative::Reply);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::Subscribe => {
                let mut state = self.state.lock();
                state.seq += 1;
                let seq = state.seq;
                let reply = open_subscription(ctx, &self.spec, &env, seq, &mut state.relays);
                drop(state);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::Tell => {
                // A delivery-failure report from the runtime (satellite of
                // §4.2.2): absorb it into the log rather than relaying.
                if env.message.get_text("ontology") == Some(LOG_ONTOLOGY) {
                    if let Some(report) = parse_delivery_failure(&env.message) {
                        self.log.lock().push(report);
                    }
                    return;
                }
                // A notification from a resource agent: relay downstream.
                let Some(upstream_id) = env.message.in_reply_to() else {
                    return;
                };
                let state = self.state.lock();
                if let Some(relay) = state.relays.get(upstream_id) {
                    let mut fwd = Message::new(Performative::Tell)
                        .with_in_reply_to(relay.downstream_id.clone());
                    if let Some(content) = env.message.content() {
                        fwd.set("content", content.clone());
                    }
                    // Provenance: which resource changed.
                    fwd.set("resource", SExpr::atom(relay.resource.as_str()));
                    let _ = ctx.send(&relay.subscriber, fwd);
                }
            }
            _ => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string("monitor agent accepts subscribe only"));
                let _ = ctx.send(&env.from, reply);
            }
        }
    }
}

/// Decodes a `(delivery-failure <agent> <peer> <performative> <count>)`
/// log payload.
fn parse_delivery_failure(msg: &Message) -> Option<DeliveryFailure> {
    let SExpr::List(items) = msg.content()? else {
        return None;
    };
    let mut texts = items.iter().map(SExpr::as_text);
    if texts.next()? != Some("delivery-failure") {
        return None;
    }
    Some(DeliveryFailure {
        agent: texts.next()??.to_string(),
        peer: texts.next()??.to_string(),
        performative: texts.next()??.to_string(),
        count: texts.next()??.parse().ok()?,
    })
}

/// Spawns the monitor agent on its own private runtime over the bus.
pub fn spawn_monitor_agent(bus: &Bus, spec: MonitorSpec) -> Result<MonitorAgentHandle, BusError> {
    let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
    let mut handle = spawn_monitor_agent_on(&runtime, spec)?;
    handle._runtime = Some(runtime);
    Ok(handle)
}

/// Spawns the monitor agent on a shared [`AgentRuntime`]: advertises to
/// every broker, then serves `subscribe` requests, relays notifications,
/// and accumulates delivery-failure reports.
pub fn spawn_monitor_agent_on(
    runtime: &AgentRuntime,
    spec: MonitorSpec,
) -> Result<MonitorAgentHandle, BusError> {
    let name = spec.name.clone();
    let ad = monitor_advertisement(&spec.name, &spec.address);
    let brokers = spec.brokers.clone();
    let timeout = spec.timeout;
    let log = Arc::new(Mutex::new(Vec::new()));
    let behavior = Arc::new(MonitorBehavior {
        spec,
        state: Mutex::new(MonitorState { relays: HashMap::new(), seq: 0 }),
        log: Arc::clone(&log),
    });
    let agent = runtime.spawn(&name, behavior)?;
    {
        let mut requester = &**agent.ctx();
        for broker in &brokers {
            let _ = infosleuth_broker::advertise_to(&mut requester, broker, &ad, timeout);
        }
    }
    Ok(MonitorAgentHandle { name, agent, log, _runtime: None })
}

/// Locates contributing resources for a standing query and subscribes to
/// each; returns the downstream acknowledgement.
fn open_subscription(
    ctx: &AgentContext,
    spec: &MonitorSpec,
    env: &Envelope,
    seq: u64,
    relays: &mut HashMap<String, Relay>,
) -> Message {
    let Some(sql) = env.message.content().and_then(SExpr::as_text).map(str::to_string) else {
        return env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("expected SQL content"));
    };
    let stmt = match parse_select(&sql) {
        Ok(s) => s,
        Err(e) => {
            return env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()))
        }
    };
    let classes = referenced_classes(&plan(&stmt));
    // One service query covering all referenced classes.
    let mut query = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_query_language("SQL 2.0")
        .with_classes(classes.iter().map(String::as_str));
    if let Some(o) = env.message.ontology() {
        query = query.with_ontology(o);
    }
    let mut requester = ctx;
    let mut matches = Vec::new();
    for broker in &spec.brokers {
        if let Ok(m) = query_broker(&mut requester, broker, &query, None, spec.timeout) {
            if !m.is_empty() {
                matches = m;
                break;
            }
        }
    }
    if matches.is_empty() {
        return env.message.reply_skeleton(Performative::Sorry).with_content(SExpr::string(
            format!("no resource agents found for classes {classes:?}"),
        ));
    }
    let downstream_id =
        env.message.reply_with().map(str::to_string).unwrap_or_else(|| format!("mon-{seq}"));
    let mut opened = 0;
    for m in &matches {
        // `reply-to`: notifications must flow to the monitor's own
        // mailbox, not the ephemeral endpoint carrying this request.
        let sub = Message::new(Performative::Subscribe)
            .with_language("SQL 2.0")
            .with("reply-to", SExpr::atom(ctx.name()))
            .with_content(SExpr::string(sql.clone()));
        match ctx.request(&m.name, sub, spec.timeout) {
            Ok(ack) if ack.performative == Performative::Tell => {
                let upstream_id =
                    ack.content().and_then(SExpr::as_text).unwrap_or_default().to_string();
                if !upstream_id.is_empty() {
                    let subscriber =
                        env.message.get_text("reply-to").unwrap_or(&env.from).to_string();
                    relays.insert(
                        upstream_id,
                        Relay {
                            subscriber,
                            downstream_id: downstream_id.clone(),
                            resource: m.name.clone(),
                        },
                    );
                    opened += 1;
                }
            }
            _ => {}
        }
    }
    if opened == 0 {
        return env
            .message
            .reply_skeleton(Performative::Sorry)
            .with_content(SExpr::string("no resource accepted the subscription"));
    }
    env.message
        .reply_skeleton(Performative::Tell)
        .with_content(SExpr::atom(downstream_id))
        .with("resources", SExpr::Atom(opened.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_delivery_failure_reports() {
        let msg = Message::new(Performative::Tell).with_ontology(LOG_ONTOLOGY).with_content(
            SExpr::list(vec![
                SExpr::atom("delivery-failure"),
                SExpr::atom("broker-1"),
                SExpr::atom("dead-ra"),
                SExpr::atom("ping"),
                SExpr::atom("3"),
            ]),
        );
        let report = parse_delivery_failure(&msg).expect("parses");
        assert_eq!(
            report,
            DeliveryFailure {
                agent: "broker-1".into(),
                peer: "dead-ra".into(),
                performative: "ping".into(),
                count: 3,
            }
        );
        // Malformed payloads are ignored, not crashes.
        let junk = Message::new(Performative::Tell).with_content(SExpr::atom("nope"));
        assert_eq!(parse_delivery_failure(&junk), None);
    }

    #[test]
    fn absorbs_runtime_failure_reports_into_the_log() {
        use infosleuth_agent::RuntimeConfig;
        let bus = Bus::new();
        let runtime = AgentRuntime::new(
            bus.as_transport(),
            RuntimeConfig::default().with_monitor("monitor-agent"),
        );
        let monitor = spawn_monitor_agent_on(
            &runtime,
            MonitorSpec {
                name: "monitor-agent".into(),
                address: "tcp://monitor.mcc.com:6001".into(),
                brokers: vec![],
                timeout: Duration::from_millis(200),
            },
        )
        .unwrap();
        struct Talker;
        impl AgentBehavior for Talker {
            fn on_message(&self, ctx: &AgentContext, _env: Envelope) {
                let _ = ctx.send("ghost-agent", Message::new(Performative::Ping));
            }
        }
        let talker = runtime.spawn("talker", Arc::new(Talker)).unwrap();
        bus.register("poker").unwrap().send("talker", Message::new(Performative::Tell)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while monitor.delivery_failure_reports() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let log = monitor.delivery_log();
        assert!(!log.is_empty(), "monitor never received the failure report");
        assert_eq!(log[0].agent, "talker");
        assert_eq!(log[0].peer, "ghost-agent");
        assert_eq!(talker.delivery_failures(), 1);
        monitor.stop();
        runtime.shutdown();
    }
}
