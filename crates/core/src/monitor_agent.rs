//! The monitor agent (Figure 1): standing-query notifications across the
//! community.
//!
//! InfoSleuth's motivating examples are monitoring tasks — "Notify me when
//! the cost of hospital stays for a Caesarian delivery significantly
//! deviates from the expected cost." A user agent sends the monitor agent a
//! `subscribe` with an SQL standing query; the monitor locates every
//! resource agent that can contribute (through the broker, like the MRQ
//! agent), opens subscriptions with each of them, and relays their change
//! notifications back to the user, tagging each with the originating
//! resource.
//!
//! The monitor is also the community's observability sink. Every agent
//! hosted on an [`AgentRuntime`] configured with this monitor reports
//! failed sends here as `tell`s tagged with [`LOG_ONTOLOGY`], and the
//! handle exposes the accumulated log — the observable form of §4.2.2's
//! "the transport layer will fail to make the connection". Runtimes that
//! spawn an `ObsReporter` additionally forward metrics snapshots and
//! span batches over the same ontology; the monitor merges the
//! snapshots per source, reconstructs cross-agent trace trees from the
//! spans, answers `ask-all` queries over the log ontology, and — when
//! [`MonitorSpec::scrape_addr`] is set — serves the merged registry as
//! Prometheus text over HTTP.

use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Envelope, RuntimeConfig,
    LOG_ONTOLOGY, METRICS_SNAPSHOT_HEAD, SPANS_HEAD,
};
use infosleuth_broker::{health_state_from_sexpr, query_broker, HEALTH_STATE_HEAD};
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_obs::{
    render_merged, HealthEvent, HealthState, Labels, MetricsServer, MetricsSnapshot, SeriesPoint,
    SpanRecord, TimeSeriesStore,
};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, Capability, ConversationType, SemanticInfo,
    ServiceQuery, SyntacticInfo,
};
use infosleuth_relquery::{parse_select, plan, referenced_classes};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spans retained by the monitor; the oldest are evicted first.
const SPAN_RETENTION: usize = 8192;

/// Points retained per metric series in each source's history ring.
const HISTORY_RETENTION: usize = 128;

/// Health transitions retained for the `(health)` query's alert tail.
const ALERT_RETENTION: usize = 256;

/// Configuration for the monitor agent.
pub struct MonitorSpec {
    pub name: String,
    pub address: String,
    pub brokers: Vec<String>,
    pub timeout: Duration,
    /// When set (e.g. `"127.0.0.1:0"`), the monitor serves the merged
    /// metrics of every reporting runtime as Prometheus text on this
    /// address; the actually-bound address is
    /// [`MonitorAgentHandle::scrape_addr`].
    pub scrape_addr: Option<String>,
}

/// The monitor agent's standard advertisement.
pub fn monitor_advertisement(name: &str, address: &str) -> Advertisement {
    Advertisement::new(AgentLocation::new(name, address, AgentType::Monitor))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe, ConversationType::Tell])
                .with_capabilities([Capability::subscription(), Capability::notification()]),
        )
}

/// One recorded delivery failure, as reported by a sending agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryFailure {
    /// The agent whose send was refused.
    pub agent: String,
    /// The unreachable peer.
    pub peer: String,
    /// The performative of the message that could not be delivered.
    pub performative: String,
    /// The sender's running failure count at the time of the report.
    pub count: u64,
}

/// The roll-up a broker's health publisher last reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerHealth {
    pub state: HealthState,
    /// The publisher's sample tick that produced this state.
    pub tick: u64,
}

/// Observability state forwarded by the community's `ObsReporter`s and
/// health publishers: the latest metrics snapshot per source (plus a
/// ring-buffer history of every series), a bounded span store, the
/// per-broker health roll-ups, and the recent alert transitions.
#[derive(Default)]
struct ObsStore {
    snapshots: BTreeMap<String, MetricsSnapshot>,
    history: BTreeMap<String, TimeSeriesStore>,
    spans: Vec<SpanRecord>,
    health: BTreeMap<String, BrokerHealth>,
    alerts: Vec<(String, HealthEvent)>,
}

impl ObsStore {
    fn push_span(&mut self, record: SpanRecord) {
        if self.spans.len() >= SPAN_RETENTION {
            let overflow = self.spans.len() + 1 - SPAN_RETENTION;
            self.spans.drain(..overflow);
        }
        self.spans.push(record);
    }

    fn absorb_snapshot(&mut self, source: &str, snap: MetricsSnapshot, at_millis: u64) {
        self.history
            .entry(source.to_string())
            .or_insert_with(|| TimeSeriesStore::new(HISTORY_RETENTION))
            .record(at_millis, &snap);
        self.snapshots.insert(source.to_string(), snap);
    }

    fn absorb_health(
        &mut self,
        broker: String,
        state: HealthState,
        tick: u64,
        events: Vec<HealthEvent>,
    ) {
        self.health.insert(broker.clone(), BrokerHealth { state, tick });
        for event in events {
            if self.alerts.len() >= ALERT_RETENTION {
                let overflow = self.alerts.len() + 1 - ALERT_RETENTION;
                self.alerts.drain(..overflow);
            }
            self.alerts.push((broker.clone(), event));
        }
    }
}

/// Handle to a running monitor agent.
pub struct MonitorAgentHandle {
    name: String,
    agent: AgentHandle,
    log: Arc<Mutex<Vec<DeliveryFailure>>>,
    obs_store: Arc<Mutex<ObsStore>>,
    scrape: Option<MetricsServer>,
    _runtime: Option<AgentRuntime>,
}

impl MonitorAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Every delivery failure reported to this monitor so far.
    pub fn delivery_log(&self) -> Vec<DeliveryFailure> {
        self.log.lock().clone()
    }

    /// Number of delivery-failure reports received.
    pub fn delivery_failure_reports(&self) -> usize {
        self.log.lock().len()
    }

    /// Sends by the monitor itself that the transport refused.
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    /// Where the Prometheus scrape endpoint actually bound, when
    /// [`MonitorSpec::scrape_addr`] was set.
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape.as_ref().map(MetricsServer::local_addr)
    }

    /// The merged metrics of every reporting runtime, rendered as
    /// Prometheus text (exactly what the scrape endpoint serves).
    pub fn metrics_text(&self) -> String {
        render_merged(&self.obs_store.lock().snapshots)
    }

    /// Sources that have forwarded at least one metrics snapshot.
    pub fn snapshot_sources(&self) -> Vec<String> {
        self.obs_store.lock().snapshots.keys().cloned().collect()
    }

    /// Every span forwarded to this monitor (bounded; oldest evicted).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.obs_store.lock().spans.clone()
    }

    /// The latest health roll-up per broker, as reported by each
    /// broker's health publisher.
    pub fn health_states(&self) -> BTreeMap<String, BrokerHealth> {
        self.obs_store.lock().health.clone()
    }

    /// Recent watermark transitions (fired and cleared), oldest first,
    /// tagged with the reporting broker. Bounded; oldest evicted.
    pub fn recent_alerts(&self) -> Vec<(String, HealthEvent)> {
        self.obs_store.lock().alerts.clone()
    }

    /// The retained history of `metric` from `source`: one
    /// `(labels, points)` row per label set, oldest point first.
    pub fn metric_history(&self, source: &str, metric: &str) -> Vec<(Labels, Vec<SeriesPoint>)> {
        let store = self.obs_store.lock();
        let Some(series) = store.history.get(source) else { return Vec::new() };
        series
            .label_sets(metric)
            .into_iter()
            .map(|labels| {
                let points = series.snapshot_history(metric, &labels);
                (labels, points)
            })
            .collect()
    }

    pub fn stop(self) {
        if let Some(server) = &self.scrape {
            server.shutdown();
        }
        self.agent.stop();
    }
}

/// One upstream subscription held at a resource agent, mapped back to the
/// downstream subscriber.
struct Relay {
    subscriber: String,
    downstream_id: String,
    resource: String,
}

struct MonitorState {
    relays: HashMap<String, Relay>,
    seq: u64,
}

struct MonitorBehavior {
    spec: MonitorSpec,
    state: Mutex<MonitorState>,
    log: Arc<Mutex<Vec<DeliveryFailure>>>,
    obs_store: Arc<Mutex<ObsStore>>,
    /// Monotonic epoch for history timestamps: snapshots from different
    /// sources land on one monitor-local clock.
    started: Instant,
}

impl MonitorBehavior {
    /// Absorbs a `tell` over the log ontology: a delivery-failure
    /// report, a forwarded metrics snapshot, or a span batch.
    fn absorb_log(&self, msg: &Message) {
        let Some(items) = msg.content().and_then(SExpr::as_list) else { return };
        match items.first().and_then(SExpr::as_text) {
            Some("delivery-failure") => {
                if let Some(report) = parse_delivery_failure(msg) {
                    self.log.lock().push(report);
                }
            }
            Some(METRICS_SNAPSHOT_HEAD) => {
                let source = items.get(1).and_then(SExpr::as_text);
                let snap = items.get(2).and_then(MetricsSnapshot::from_sexpr);
                if let (Some(source), Some(snap)) = (source, snap) {
                    let at_millis = self.started.elapsed().as_millis() as u64;
                    self.obs_store.lock().absorb_snapshot(source, snap, at_millis);
                }
            }
            Some(HEALTH_STATE_HEAD) => {
                if let Some(content) = msg.content() {
                    if let Some((broker, state, tick, events)) = health_state_from_sexpr(content) {
                        self.obs_store.lock().absorb_health(broker, state, tick, events);
                    }
                }
            }
            Some(SPANS_HEAD) => {
                let mut store = self.obs_store.lock();
                for item in &items[1..] {
                    if let Some(record) = SpanRecord::from_sexpr(item) {
                        store.push_span(record);
                    }
                }
            }
            _ => {}
        }
    }

    /// Answers an `ask-all`/`ask-one` over the log ontology:
    /// `(metrics)`, `(traces)`, `(trace <hex16>)`,
    /// `(delivery-failures)`, `(health)`, or
    /// `(history <source> <metric>)`.
    fn answer_log_query(&self, msg: &Message) -> Message {
        let items = msg.content().and_then(SExpr::as_list);
        let head = items.and_then(|l| l.first()).and_then(SExpr::as_text);
        match head {
            Some("health") => {
                let store = self.obs_store.lock();
                let mut out = vec![SExpr::atom("health")];
                out.extend(store.health.iter().map(|(broker, h)| {
                    SExpr::list(vec![
                        SExpr::atom("broker"),
                        SExpr::atom(broker),
                        SExpr::atom(h.state.as_str()),
                        SExpr::Atom(h.tick.to_string()),
                    ])
                }));
                out.extend(store.alerts.iter().map(|(broker, e)| {
                    SExpr::list(vec![
                        SExpr::atom("alert"),
                        SExpr::atom(broker),
                        SExpr::atom(&e.rule),
                        SExpr::atom(e.severity.as_str()),
                        SExpr::Atom(u8::from(e.firing).to_string()),
                        SExpr::Atom(e.tick.to_string()),
                    ])
                }));
                msg.reply_skeleton(Performative::Reply).with_content(SExpr::list(out))
            }
            Some("history") => {
                let source = items.and_then(|l| l.get(1)).and_then(SExpr::as_text);
                let metric = items.and_then(|l| l.get(2)).and_then(SExpr::as_text);
                let (Some(source), Some(metric)) = (source, metric) else {
                    return msg
                        .reply_skeleton(Performative::Error)
                        .with_content(SExpr::string("expected (history <source> <metric>)"));
                };
                let store = self.obs_store.lock();
                let Some(series) = store.history.get(source) else {
                    return msg.reply_skeleton(Performative::Sorry).with_content(SExpr::string(
                        format!("no metrics history from source {source}"),
                    ));
                };
                let mut out =
                    vec![SExpr::atom("history"), SExpr::atom(source), SExpr::atom(metric)];
                for labels in series.label_sets(metric) {
                    let label_sexpr = SExpr::list(
                        labels
                            .iter()
                            .map(|(k, v)| SExpr::list(vec![SExpr::atom(k), SExpr::atom(v)])),
                    );
                    let mut entry = vec![SExpr::atom("series"), label_sexpr];
                    entry.extend(series.snapshot_history(metric, &labels).iter().map(|p| {
                        SExpr::list(vec![
                            SExpr::Atom(p.tick.to_string()),
                            SExpr::Atom(format!("{}", p.scalar())),
                        ])
                    }));
                    out.push(SExpr::list(entry));
                }
                let perf = if out.len() > 3 { Performative::Reply } else { Performative::Sorry };
                msg.reply_skeleton(perf).with_content(SExpr::list(out))
            }
            Some("metrics") => {
                let text = render_merged(&self.obs_store.lock().snapshots);
                msg.reply_skeleton(Performative::Reply).with_content(SExpr::string(text))
            }
            Some("traces") => {
                let store = self.obs_store.lock();
                let mut out = vec![SExpr::atom("traces")];
                out.extend(
                    infosleuth_obs::trace_ids(&store.spans)
                        .iter()
                        .map(|t| SExpr::atom(t.to_string())),
                );
                msg.reply_skeleton(Performative::Reply).with_content(SExpr::list(out))
            }
            Some("trace") => {
                let wanted = items
                    .and_then(|l| l.get(1))
                    .and_then(SExpr::as_text)
                    .unwrap_or_default()
                    .to_string();
                let store = self.obs_store.lock();
                let mut out = vec![SExpr::atom(SPANS_HEAD)];
                out.extend(
                    store
                        .spans
                        .iter()
                        .filter(|r| r.trace.to_string() == wanted)
                        .map(SpanRecord::to_sexpr),
                );
                let perf = if out.len() > 1 { Performative::Reply } else { Performative::Sorry };
                msg.reply_skeleton(perf).with_content(SExpr::list(out))
            }
            Some("delivery-failures") => {
                let log = self.log.lock();
                let mut out = vec![SExpr::atom("delivery-failures")];
                out.extend(log.iter().map(|f| {
                    SExpr::list(vec![
                        SExpr::atom(&f.agent),
                        SExpr::atom(&f.peer),
                        SExpr::atom(&f.performative),
                        SExpr::Atom(f.count.to_string()),
                    ])
                }));
                msg.reply_skeleton(Performative::Reply).with_content(SExpr::list(out))
            }
            _ => msg.reply_skeleton(Performative::Error).with_content(SExpr::string(
                "log queries: (metrics) | (traces) | (trace <id>) | (delivery-failures) \
                 | (health) | (history <source> <metric>)",
            )),
        }
    }
}

impl AgentBehavior for MonitorBehavior {
    fn on_message(&self, ctx: &AgentContext, env: Envelope) {
        match env.message.performative {
            Performative::Ping => {
                let reply = env.message.reply_skeleton(Performative::Reply);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::Subscribe => {
                let mut state = self.state.lock();
                state.seq += 1;
                let seq = state.seq;
                let reply = open_subscription(ctx, &self.spec, &env, seq, &mut state.relays);
                drop(state);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::AskAll | Performative::AskOne
                if env.message.get_text("ontology") == Some(LOG_ONTOLOGY) =>
            {
                let reply = self.answer_log_query(&env.message);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::Tell => {
                // An observability report from a runtime (delivery
                // failure, metrics snapshot, or span batch): absorb it
                // rather than relaying.
                if env.message.get_text("ontology") == Some(LOG_ONTOLOGY) {
                    self.absorb_log(&env.message);
                    return;
                }
                // A notification from a resource agent: relay downstream.
                let Some(upstream_id) = env.message.in_reply_to() else {
                    return;
                };
                let state = self.state.lock();
                if let Some(relay) = state.relays.get(upstream_id) {
                    let mut fwd = Message::new(Performative::Tell)
                        .with_in_reply_to(relay.downstream_id.clone());
                    if let Some(content) = env.message.content() {
                        fwd.set("content", content.clone());
                    }
                    // Provenance: which resource changed.
                    fwd.set("resource", SExpr::atom(relay.resource.as_str()));
                    let _ = ctx.send(&relay.subscriber, fwd);
                }
            }
            _ => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string("monitor agent accepts subscribe only"));
                let _ = ctx.send(&env.from, reply);
            }
        }
    }
}

/// Decodes a `(delivery-failure <agent> <peer> <performative> <count>)`
/// log payload.
fn parse_delivery_failure(msg: &Message) -> Option<DeliveryFailure> {
    let SExpr::List(items) = msg.content()? else {
        return None;
    };
    let mut texts = items.iter().map(SExpr::as_text);
    if texts.next()? != Some("delivery-failure") {
        return None;
    }
    Some(DeliveryFailure {
        agent: texts.next()??.to_string(),
        peer: texts.next()??.to_string(),
        performative: texts.next()??.to_string(),
        count: texts.next()??.parse().ok()?,
    })
}

/// Spawns the monitor agent on its own private runtime over the bus.
pub fn spawn_monitor_agent(bus: &Bus, spec: MonitorSpec) -> Result<MonitorAgentHandle, BusError> {
    let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
    let mut handle = spawn_monitor_agent_on(&runtime, spec)?;
    handle._runtime = Some(runtime);
    Ok(handle)
}

/// Spawns the monitor agent on a shared [`AgentRuntime`]: advertises to
/// every broker, then serves `subscribe` requests, relays notifications,
/// and accumulates delivery-failure reports.
pub fn spawn_monitor_agent_on(
    runtime: &AgentRuntime,
    spec: MonitorSpec,
) -> Result<MonitorAgentHandle, BusError> {
    let name = spec.name.clone();
    let ad = monitor_advertisement(&spec.name, &spec.address);
    let brokers = spec.brokers.clone();
    let timeout = spec.timeout;
    let scrape_addr = spec.scrape_addr.clone();
    let log = Arc::new(Mutex::new(Vec::new()));
    let obs_store = Arc::new(Mutex::new(ObsStore::default()));
    let behavior = Arc::new(MonitorBehavior {
        spec,
        state: Mutex::new(MonitorState { relays: HashMap::new(), seq: 0 }),
        log: Arc::clone(&log),
        obs_store: Arc::clone(&obs_store),
        started: Instant::now(),
    });
    let scrape = match scrape_addr {
        Some(addr) => {
            let store = Arc::clone(&obs_store);
            let render: infosleuth_obs::http::RenderFn =
                Arc::new(move || render_merged(&store.lock().snapshots));
            Some(
                MetricsServer::serve(addr.as_str(), render)
                    .map_err(|e| BusError::Io(e.to_string()))?,
            )
        }
        None => None,
    };
    let agent = runtime.spawn(&name, behavior)?;
    {
        let mut requester = &**agent.ctx();
        for broker in &brokers {
            let _ = infosleuth_broker::advertise_to(&mut requester, broker, &ad, timeout);
        }
    }
    Ok(MonitorAgentHandle { name, agent, log, obs_store, scrape, _runtime: None })
}

/// Locates contributing resources for a standing query and subscribes to
/// each; returns the downstream acknowledgement.
fn open_subscription(
    ctx: &AgentContext,
    spec: &MonitorSpec,
    env: &Envelope,
    seq: u64,
    relays: &mut HashMap<String, Relay>,
) -> Message {
    let Some(sql) = env.message.content().and_then(SExpr::as_text).map(str::to_string) else {
        return env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("expected SQL content"));
    };
    let stmt = match parse_select(&sql) {
        Ok(s) => s,
        Err(e) => {
            return env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()))
        }
    };
    let classes = referenced_classes(&plan(&stmt));
    // One service query covering all referenced classes.
    let mut query = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_query_language("SQL 2.0")
        .with_classes(classes.iter().map(String::as_str));
    if let Some(o) = env.message.ontology() {
        query = query.with_ontology(o);
    }
    let mut requester = ctx;
    let mut matches = Vec::new();
    for broker in &spec.brokers {
        if let Ok(m) = query_broker(&mut requester, broker, &query, None, spec.timeout) {
            if !m.is_empty() {
                matches = m;
                break;
            }
        }
    }
    if matches.is_empty() {
        return env.message.reply_skeleton(Performative::Sorry).with_content(SExpr::string(
            format!("no resource agents found for classes {classes:?}"),
        ));
    }
    let downstream_id =
        env.message.reply_with().map(str::to_string).unwrap_or_else(|| format!("mon-{seq}"));
    let mut opened = 0;
    for m in &matches {
        // `reply-to`: notifications must flow to the monitor's own
        // mailbox, not the ephemeral endpoint carrying this request.
        let sub = Message::new(Performative::Subscribe)
            .with_language("SQL 2.0")
            .with("reply-to", SExpr::atom(ctx.name()))
            .with_content(SExpr::string(sql.clone()));
        match ctx.request(&m.name, sub, spec.timeout) {
            Ok(ack) if ack.performative == Performative::Tell => {
                let upstream_id =
                    ack.content().and_then(SExpr::as_text).unwrap_or_default().to_string();
                if !upstream_id.is_empty() {
                    let subscriber =
                        env.message.get_text("reply-to").unwrap_or(&env.from).to_string();
                    relays.insert(
                        upstream_id,
                        Relay {
                            subscriber,
                            downstream_id: downstream_id.clone(),
                            resource: m.name.clone(),
                        },
                    );
                    opened += 1;
                }
            }
            _ => {}
        }
    }
    if opened == 0 {
        return env
            .message
            .reply_skeleton(Performative::Sorry)
            .with_content(SExpr::string("no resource accepted the subscription"));
    }
    env.message
        .reply_skeleton(Performative::Tell)
        .with_content(SExpr::atom(downstream_id))
        .with("resources", SExpr::Atom(opened.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_delivery_failure_reports() {
        let msg = Message::new(Performative::Tell).with_ontology(LOG_ONTOLOGY).with_content(
            SExpr::list(vec![
                SExpr::atom("delivery-failure"),
                SExpr::atom("broker-1"),
                SExpr::atom("dead-ra"),
                SExpr::atom("ping"),
                SExpr::atom("3"),
            ]),
        );
        let report = parse_delivery_failure(&msg).expect("parses");
        assert_eq!(
            report,
            DeliveryFailure {
                agent: "broker-1".into(),
                peer: "dead-ra".into(),
                performative: "ping".into(),
                count: 3,
            }
        );
        // Malformed payloads are ignored, not crashes.
        let junk = Message::new(Performative::Tell).with_content(SExpr::atom("nope"));
        assert_eq!(parse_delivery_failure(&junk), None);
    }

    #[test]
    fn absorbs_runtime_failure_reports_into_the_log() {
        use infosleuth_agent::RuntimeConfig;
        let bus = Bus::new();
        let runtime = AgentRuntime::new(
            bus.as_transport(),
            RuntimeConfig::default().with_monitor("monitor-agent"),
        );
        let monitor = spawn_monitor_agent_on(
            &runtime,
            MonitorSpec {
                name: "monitor-agent".into(),
                address: "tcp://monitor.mcc.com:6001".into(),
                brokers: vec![],
                timeout: Duration::from_millis(200),
                scrape_addr: None,
            },
        )
        .unwrap();
        struct Talker;
        impl AgentBehavior for Talker {
            fn on_message(&self, ctx: &AgentContext, _env: Envelope) {
                let _ = ctx.send("ghost-agent", Message::new(Performative::Ping));
            }
        }
        let talker = runtime.spawn("talker", Arc::new(Talker)).unwrap();
        bus.register("poker").unwrap().send("talker", Message::new(Performative::Tell)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while monitor.delivery_failure_reports() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let log = monitor.delivery_log();
        assert!(!log.is_empty(), "monitor never received the failure report");
        assert_eq!(log[0].agent, "talker");
        assert_eq!(log[0].peer, "ghost-agent");
        assert_eq!(talker.delivery_failures(), 1);
        monitor.stop();
        runtime.shutdown();
    }

    #[test]
    fn aggregates_forwarded_obs_and_serves_scrape_endpoint() {
        use infosleuth_agent::spawn_obs_reporter;
        let bus = Bus::new();
        let runtime =
            AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
        let monitor = spawn_monitor_agent_on(
            &runtime,
            MonitorSpec {
                name: "monitor-agent".into(),
                address: "tcp://monitor.mcc.com:6001".into(),
                brokers: vec![],
                timeout: Duration::from_millis(200),
                scrape_addr: Some("127.0.0.1:0".into()),
            },
        )
        .unwrap();
        let reporter =
            spawn_obs_reporter(&runtime, "obs.node", "monitor-agent", Duration::from_secs(3600))
                .unwrap();
        runtime.obs().registry().counter("demo_total", &[]).inc();
        {
            let _span = runtime.obs().tracer().span("demo-span");
        }
        reporter.flush();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while (monitor.snapshot_sources().is_empty()
            || !monitor.spans().iter().any(|r| r.name == "demo-span"))
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(monitor.snapshot_sources(), vec!["obs.node".to_string()]);
        assert!(monitor.spans().iter().any(|r| r.name == "demo-span"));

        // The scrape endpoint serves the merged registry, tagged by source.
        let addr = monitor.scrape_addr().expect("scrape endpoint bound");
        let body = infosleuth_obs::scrape(&addr.to_string(), Duration::from_secs(2))
            .expect("scrape succeeds");
        assert!(body.contains("# TYPE demo_total counter"), "body:\n{body}");
        assert!(body.contains("demo_total{agent=\"obs.node\"} 1"), "body:\n{body}");

        // The same data is queryable over KQML (ask-all, log ontology).
        let mut client = bus.register("client").unwrap();
        let ask = |content: SExpr| {
            Message::new(Performative::AskAll).with_ontology(LOG_ONTOLOGY).with_content(content)
        };
        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![SExpr::atom("metrics")])),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        assert!(reply.content().and_then(SExpr::as_text).unwrap().contains("demo_total"));
        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![SExpr::atom("traces")])),
                Duration::from_secs(2),
            )
            .unwrap();
        let traces = reply.content().and_then(SExpr::as_list).unwrap();
        assert!(traces.len() >= 2, "at least one trace id listed: {traces:?}");
        let trace_id = traces[1].as_atom().unwrap().to_string();
        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![SExpr::atom("trace"), SExpr::atom(&trace_id)])),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        let spans = reply.content().and_then(SExpr::as_list).unwrap();
        assert!(
            spans[1..].iter().all(|s| SpanRecord::from_sexpr(s).is_some()),
            "trace reply is decodable spans"
        );
        monitor.stop();
        runtime.shutdown();
    }

    #[test]
    fn absorbs_health_tells_and_answers_health_and_history_queries() {
        use infosleuth_agent::spawn_obs_reporter;
        use infosleuth_broker::health_state_to_sexpr;
        use infosleuth_obs::Severity;
        let bus = Bus::new();
        let runtime =
            AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
        let monitor = spawn_monitor_agent_on(
            &runtime,
            MonitorSpec {
                name: "monitor-agent".into(),
                address: "tcp://monitor.mcc.com:6001".into(),
                brokers: vec![],
                timeout: Duration::from_millis(200),
                scrape_addr: None,
            },
        )
        .unwrap();

        // Two snapshots build a two-point history for the gauge.
        let reporter =
            spawn_obs_reporter(&runtime, "broker-1", "monitor-agent", Duration::from_secs(3600))
                .unwrap();
        let depth = runtime.obs().registry().gauge("runtime_queue_depth", &[]);
        depth.set(3);
        reporter.flush();
        depth.set(500);
        reporter.flush();

        // A health publisher's transition tell.
        let events = vec![HealthEvent {
            rule: "queue-depth".into(),
            metric: "runtime_queue_depth".into(),
            severity: Severity::Warning,
            value: 500.0,
            threshold: 100.0,
            firing: true,
            tick: 2,
        }];
        let mut client = bus.register("client").unwrap();
        client
            .send(
                "monitor-agent",
                Message::new(Performative::Tell).with_ontology(LOG_ONTOLOGY).with_content(
                    health_state_to_sexpr("broker-1", HealthState::Degraded, 2, &events),
                ),
            )
            .unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while (monitor.health_states().is_empty()
            || monitor.metric_history("broker-1", "runtime_queue_depth").is_empty())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }

        // Handle accessors.
        let health = monitor.health_states();
        assert_eq!(
            health.get("broker-1"),
            Some(&BrokerHealth { state: HealthState::Degraded, tick: 2 })
        );
        let alerts = monitor.recent_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].0, "broker-1");
        assert_eq!(alerts[0].1.rule, "queue-depth");
        let history = monitor.metric_history("broker-1", "runtime_queue_depth");
        assert_eq!(history.len(), 1, "one (unlabeled) series: {history:?}");
        let values: Vec<f64> = history[0].1.iter().map(SeriesPoint::scalar).collect();
        assert_eq!(values, vec![3.0, 500.0]);

        // The same data over KQML.
        let ask = |content: SExpr| {
            Message::new(Performative::AskAll).with_ontology(LOG_ONTOLOGY).with_content(content)
        };
        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![SExpr::atom("health")])),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        let text = reply.content().unwrap().to_string();
        assert!(text.contains("(broker broker-1 degraded 2)"), "health reply: {text}");
        assert!(text.contains("(alert broker-1 queue-depth warning 1 2)"), "health reply: {text}");

        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![
                    SExpr::atom("history"),
                    SExpr::atom("broker-1"),
                    SExpr::atom("runtime_queue_depth"),
                ])),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        let text = reply.content().unwrap().to_string();
        assert!(text.contains("(series ()"), "history reply carries a series: {text}");
        assert!(text.contains("500"), "history reply carries the points: {text}");

        // Unknown source gets a sorry, not an error.
        let reply = client
            .request(
                "monitor-agent",
                ask(SExpr::list(vec![
                    SExpr::atom("history"),
                    SExpr::atom("ghost"),
                    SExpr::atom("runtime_queue_depth"),
                ])),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        monitor.stop();
        runtime.shutdown();
    }
}
