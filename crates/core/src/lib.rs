//! # InfoSleuth: semantic brokering over dynamic heterogeneous sources
//!
//! A from-scratch Rust reproduction of the system described in *"Scalable
//! Semantic Brokering over Dynamic Heterogeneous Data Sources in
//! InfoSleuth"* (Nodine, Bohrer, Ngu, Cassandra — ICDE 1999): an
//! agent-based information discovery and retrieval system whose brokers
//! reason over both the **syntax** and the **semantics** of explicitly
//! advertised agent capabilities, and collaborate peer-to-peer
//! (**multibrokering**) for robustness and scalability.
//!
//! ## Quick start
//!
//! ```
//! use infosleuth_core::{Community, ResourceDef};
//! use infosleuth_core::ontology::paper_class_ontology;
//! use infosleuth_core::relquery::{generate_table, Catalog, GenSpec};
//!
//! let ontology = paper_class_ontology();
//! let mut catalog = Catalog::new();
//! catalog.insert(generate_table(&ontology, &GenSpec::new("C2", 8, 42)).unwrap());
//!
//! let community = Community::builder()
//!     .with_ontology(ontology)
//!     .add_broker("broker-1")
//!     .add_resource(ResourceDef::new("db1-resource-agent", "paper-classes", catalog))
//!     .build()
//!     .unwrap();
//!
//! let mut mhn = community.user("mhn-user-agent").unwrap();
//! let result = mhn.submit_sql("select * from C2", Some("paper-classes")).unwrap();
//! assert_eq!(result.len(), 8);
//! community.shutdown();
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | re-exported as |
//! |-------|-------|----------------|
//! | constraint algebra | `infosleuth-constraint` | [`constraint`] |
//! | ontologies & service ontology | `infosleuth-ontology` | [`ontology`] |
//! | KQML messages | `infosleuth-kqml` | [`kqml`] |
//! | LDL deductive engine | `infosleuth-ldl` | [`ldl`] |
//! | SQL subset + relational substrate | `infosleuth-relquery` | [`relquery`] |
//! | agent bus & liveness | `infosleuth-agent` | [`agent`] |
//! | broker & multibrokering | `infosleuth-broker` | [`broker`] |
//! | evaluation simulator | `infosleuth-sim` | [`sim`] |
//!
//! This crate adds the community-level agents the paper's walkthroughs use:
//! resource agents ([`ResourceDef`]), the multiresource query agent, the
//! ontology agent, and user agents ([`UserAgent`]), wired together by
//! [`Community`].

#![forbid(unsafe_code)]

pub mod combine;
pub mod community;
pub mod monitor_agent;
pub mod mrq_agent;
pub mod ontology_agent;
pub mod resource_agent;
pub mod tablecodec;
pub mod user_agent;

pub use combine::{merge_class_extent, CombineError};
pub use community::{Community, CommunityBuilder, ResourceDef};
pub use monitor_agent::{
    monitor_advertisement, spawn_monitor_agent, spawn_monitor_agent_on, BrokerHealth,
    DeliveryFailure, MonitorAgentHandle, MonitorSpec,
};
pub use mrq_agent::{
    mrq_advertisement, spawn_mrq_agent, spawn_mrq_agent_on, MrqAgentHandle, MrqSpec,
};
pub use ontology_agent::{spawn_ontology_agent, spawn_ontology_agent_on, OntologyAgentHandle};
pub use resource_agent::{
    spawn_resource_agent, spawn_resource_agent_on, ResourceAgentHandle, ResourceSpec,
};
pub use user_agent::{UserAgent, UserAgentError};

// Substrate re-exports, so downstream users depend on one crate.
pub use infosleuth_agent as agent;
pub use infosleuth_broker as broker;
pub use infosleuth_constraint as constraint;
pub use infosleuth_kqml as kqml;
pub use infosleuth_ldl as ldl;
pub use infosleuth_obs as obs;
pub use infosleuth_ontology as ontology;
pub use infosleuth_relquery as relquery;
pub use infosleuth_sim as sim;
