//! The multiresource query (MRQ) agent.
//!
//! Figures 6–7 of the paper: the MRQ agent receives an SQL query, "looks at
//! the query to determine which classes are required to answer the query",
//! asks the broker for all resource agents that can answer over those
//! classes, fans the query out, and "receives the responses, assembles the
//! result, and forwards it back".
//!
//! Assembly handles every Table 1 stream shape: replicated extents and
//! horizontal fragments union, vertical fragments rejoin on the class key,
//! subclass extents union under the superclass (see [`crate::combine`]).
//! The assembled per-class extents form a local catalog against which the
//! user's original relational plan runs, so multi-class joins and unions
//! work unchanged.

use crate::combine::merge_class_extent;
use crate::tablecodec;
use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Envelope, RuntimeConfig,
};
use infosleuth_broker::query_broker;
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, Capability, ConversationType, Ontology, SemanticInfo,
    ServiceQuery, SyntacticInfo,
};
use infosleuth_relquery::{execute, parse_select, plan, referenced_classes, Catalog, Table};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the MRQ agent.
pub struct MrqSpec {
    pub name: String,
    pub address: String,
    /// Brokers to advertise to and to consult for resource lookups.
    pub brokers: Vec<String>,
    /// Domain ontologies, for class keys and subclass knowledge.
    pub ontologies: Vec<Arc<Ontology>>,
    pub timeout: Duration,
}

/// The MRQ agent's standard advertisement.
pub fn mrq_advertisement(name: &str, address: &str) -> Advertisement {
    Advertisement::new(AgentLocation::new(name, address, AgentType::MultiResourceQuery))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::AskAll, ConversationType::AskOne])
                .with_capabilities([
                    Capability::multiresource_query_processing(),
                    Capability::select(),
                    Capability::project(),
                    Capability::join(),
                    Capability::union(),
                    Capability::statistical_aggregation(),
                ]),
        )
}

/// Handle to a running MRQ agent.
pub struct MrqAgentHandle {
    name: String,
    agent: AgentHandle,
    _runtime: Option<AgentRuntime>,
}

impl MrqAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends by this agent that the transport refused.
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    pub fn stop(self) {
        self.agent.stop();
    }
}

struct MrqBehavior {
    spec: MrqSpec,
}

impl AgentBehavior for MrqBehavior {
    fn on_message(&self, ctx: &AgentContext, env: Envelope) {
        match env.message.performative {
            Performative::Ping => {
                let reply = env.message.reply_skeleton(Performative::Reply);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::AskAll | Performative::AskOne => {
                let reply = match env.message.content().and_then(SExpr::as_text) {
                    Some(sql) => {
                        let sql = sql.to_string();
                        answer(ctx, &self.spec, &sql, &env.message)
                    }
                    None => env
                        .message
                        .reply_skeleton(Performative::Error)
                        .with_content(SExpr::string("expected SQL content")),
                };
                let _ = ctx.send(&env.from, reply);
            }
            _ => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string("MRQ agent answers SQL ask-all only"));
                let _ = ctx.send(&env.from, reply);
            }
        }
    }
}

/// Spawns the MRQ agent on its own private runtime over the bus.
pub fn spawn_mrq_agent(bus: &Bus, spec: MrqSpec) -> Result<MrqAgentHandle, BusError> {
    let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(4));
    let mut handle = spawn_mrq_agent_on(&runtime, spec)?;
    handle._runtime = Some(runtime);
    Ok(handle)
}

/// Spawns the MRQ agent on a shared [`AgentRuntime`]: advertises to every
/// configured broker, then serves SQL `ask-all` queries.
pub fn spawn_mrq_agent_on(
    runtime: &AgentRuntime,
    spec: MrqSpec,
) -> Result<MrqAgentHandle, BusError> {
    let name = spec.name.clone();
    let ad = mrq_advertisement(&spec.name, &spec.address);
    let brokers = spec.brokers.clone();
    let timeout = spec.timeout;
    let agent = runtime.spawn(&name, Arc::new(MrqBehavior { spec }))?;
    {
        let mut requester = &**agent.ctx();
        for broker in &brokers {
            let _ = infosleuth_broker::advertise_to(&mut requester, broker, &ad, timeout);
        }
    }
    Ok(MrqAgentHandle { name, agent, _runtime: None })
}

/// Full multiresource answering pipeline for one SQL query.
fn answer(ctx: &AgentContext, spec: &MrqSpec, sql: &str, msg: &Message) -> Message {
    let stmt = match parse_select(sql) {
        Ok(s) => s,
        Err(e) => {
            return msg
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()))
        }
    };
    let logical = plan(&stmt);
    let classes = referenced_classes(&logical);
    // The preferred ontology comes from the message's :ontology parameter.
    let requested_ontology = msg.ontology().map(str::to_string);

    // Assemble each class extent.
    let mut catalog = Catalog::new();
    for class in &classes {
        let ontology = ontology_for_class(spec, requested_ontology.as_deref(), class);
        match assemble_class(ctx, spec, class, ontology.as_deref(), &stmt.where_clause) {
            Ok(table) => catalog.insert(table),
            Err(reason) => {
                return msg.reply_skeleton(Performative::Sorry).with_content(SExpr::string(reason))
            }
        }
    }
    match execute(&logical, &catalog) {
        Ok(result) => msg
            .reply_skeleton(Performative::Reply)
            .with_content(tablecodec::table_to_sexpr(&result)),
        Err(e) => {
            msg.reply_skeleton(Performative::Error).with_content(SExpr::string(e.to_string()))
        }
    }
}

fn ontology_for_class(
    spec: &MrqSpec,
    requested: Option<&str>,
    class: &str,
) -> Option<Arc<Ontology>> {
    if let Some(name) = requested {
        return spec.ontologies.iter().find(|o| o.name == name).cloned();
    }
    spec.ontologies.iter().find(|o| o.class(class).is_some()).cloned()
}

/// Locates contributors for one class via the brokers and merges their
/// contributions into one extent.
fn assemble_class(
    ctx: &AgentContext,
    spec: &MrqSpec,
    class: &str,
    ontology: Option<&Ontology>,
    constraints: &infosleuth_constraint::Conjunction,
) -> Result<Table, String> {
    // Figure 7: "who has resources for class C2 (SQL)?"
    let mut query = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_query_language("SQL 2.0")
        .with_classes([class])
        .with_constraints(constraints.clone());
    if let Some(o) = ontology {
        query = query.with_ontology(o.name.clone());
    }
    // Ask brokers in order until one answers (redundant connectivity).
    let mut requester = ctx;
    let mut matches = Vec::new();
    for broker in &spec.brokers {
        match query_broker(&mut requester, broker, &query, None, spec.timeout) {
            Ok(m) if !m.is_empty() => {
                matches = m;
                break;
            }
            _ => continue,
        }
    }
    if matches.is_empty() {
        return Err(format!("no resource agents found for class '{class}'"));
    }
    // Fan the class query out; `sorry` replies contribute nothing.
    let sql = format!("select * from {class}");
    let mut contributions = Vec::new();
    for m in &matches {
        let ask = Message::new(Performative::AskAll)
            .with_language("SQL 2.0")
            .with_content(SExpr::string(sql.clone()));
        if let Ok(reply) = ctx.request(&m.name, ask, spec.timeout) {
            if reply.performative == Performative::Reply {
                if let Some(content) = reply.content() {
                    if let Ok(table) = tablecodec::table_from_sexpr(content) {
                        contributions.push(table);
                    }
                }
            }
        }
    }
    merge_class_extent(class, contributions, ontology).map_err(|e| e.to_string())
}

/// Convenience map of per-class contributor counts, used by examples and
/// diagnostics.
pub fn contributor_counts(matches: &[(String, Vec<String>)]) -> BTreeMap<String, usize> {
    matches.iter().map(|(class, agents)| (class.clone(), agents.len())).collect()
}
