//! The ontology agent: serves the community's common ontologies.
//!
//! "These agents service requests over a set of common ontologies, accessed
//! via the ontology agents." Agents ask it for class and slot definitions
//! by name; the reply carries a structured `(ontology ...)` payload.

use infosleuth_agent::{Bus, BusError};
use infosleuth_kqml::{Performative, SExpr};
use infosleuth_ontology::Ontology;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Encodes an ontology's structure (names, classes, slots, hierarchy).
pub fn ontology_to_sexpr(o: &Ontology) -> SExpr {
    let mut items = vec![SExpr::atom("ontology"), SExpr::atom(o.name.as_str())];
    for class in o.classes() {
        let mut c = vec![SExpr::atom("class"), SExpr::atom(class.name.as_str())];
        for parent in o.hierarchy().parents_of(&class.name) {
            c.push(SExpr::list([SExpr::atom("isa"), SExpr::atom(parent)]));
        }
        for slot in &class.slots {
            let mut s = vec![
                SExpr::atom("slot"),
                SExpr::atom(slot.name.as_str()),
                SExpr::atom(slot.value_type.to_string()),
            ];
            if slot.is_key {
                s.push(SExpr::atom("key"));
            }
            c.push(SExpr::List(s));
        }
        items.push(SExpr::List(c));
    }
    SExpr::List(items)
}

/// Handle to a running ontology agent.
pub struct OntologyAgentHandle {
    name: String,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OntologyAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OntologyAgentHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns an ontology agent serving the given ontologies. `ask-one` with an
/// ontology-name atom as content returns the definition; unknown names get
/// `sorry`.
pub fn spawn_ontology_agent(
    bus: &Bus,
    name: impl Into<String>,
    ontologies: Vec<Arc<Ontology>>,
) -> Result<OntologyAgentHandle, BusError> {
    let name = name.into();
    let mut endpoint = bus.register(&name)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::spawn(move || {
        while !flag.load(Ordering::Relaxed) {
            let Some(env) = endpoint.recv_timeout(Duration::from_millis(20)) else {
                continue;
            };
            let reply = match env.message.performative {
                Performative::Ping => env.message.reply_skeleton(Performative::Reply),
                Performative::AskOne | Performative::AskAll => {
                    let wanted = env.message.content().and_then(SExpr::as_text);
                    match wanted.and_then(|w| ontologies.iter().find(|o| o.name == w)) {
                        Some(o) => env
                            .message
                            .reply_skeleton(Performative::Reply)
                            .with_content(ontology_to_sexpr(o)),
                        None => env.message.reply_skeleton(Performative::Sorry),
                    }
                }
                _ => env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string("ontology agent answers ask-one only")),
            };
            let _ = endpoint.send(&env.from, reply);
        }
        endpoint.unregister();
    });
    Ok(OntologyAgentHandle { name, shutdown, thread: Some(thread) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_agent::Bus;
    use infosleuth_kqml::Message;
    use infosleuth_ontology::healthcare_ontology;

    #[test]
    fn serves_ontology_definitions() {
        let bus = Bus::new();
        let handle = spawn_ontology_agent(
            &bus,
            "ontology-agent",
            vec![Arc::new(healthcare_ontology())],
        )
        .unwrap();
        let mut client = bus.register("client").unwrap();
        let reply = client
            .request(
                "ontology-agent",
                Message::new(Performative::AskOne).with_content(SExpr::atom("healthcare")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        let text = reply.content().unwrap().to_string();
        assert!(text.contains("patient"));
        assert!(text.contains("(isa provider)")); // podiatrist is-a provider
        assert!(text.contains("key"));
        // Unknown ontology → sorry.
        let reply = client
            .request(
                "ontology-agent",
                Message::new(Performative::AskOne).with_content(SExpr::atom("nope")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        handle.stop();
    }
}
