//! The ontology agent: serves the community's common ontologies.
//!
//! "These agents service requests over a set of common ontologies, accessed
//! via the ontology agents." Agents ask it for class and slot definitions
//! by name; the reply carries a structured `(ontology ...)` payload. The
//! agent is stateless, so it is the simplest possible
//! [`AgentBehavior`]: one message in, one reply out.

use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Envelope, RuntimeConfig,
};
use infosleuth_kqml::{Performative, SExpr};
use infosleuth_ontology::Ontology;
use std::sync::Arc;

/// Encodes an ontology's structure (names, classes, slots, hierarchy).
pub fn ontology_to_sexpr(o: &Ontology) -> SExpr {
    let mut items = vec![SExpr::atom("ontology"), SExpr::atom(o.name.as_str())];
    for class in o.classes() {
        let mut c = vec![SExpr::atom("class"), SExpr::atom(class.name.as_str())];
        for parent in o.hierarchy().parents_of(&class.name) {
            c.push(SExpr::list([SExpr::atom("isa"), SExpr::atom(parent)]));
        }
        for slot in &class.slots {
            let mut s = vec![
                SExpr::atom("slot"),
                SExpr::atom(slot.name.as_str()),
                SExpr::atom(slot.value_type.to_string()),
            ];
            if slot.is_key {
                s.push(SExpr::atom("key"));
            }
            c.push(SExpr::List(s));
        }
        items.push(SExpr::List(c));
    }
    SExpr::List(items)
}

/// Handle to a running ontology agent.
pub struct OntologyAgentHandle {
    name: String,
    agent: AgentHandle,
    _runtime: Option<AgentRuntime>,
}

impl OntologyAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends by this agent that the transport refused.
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    pub fn stop(self) {
        self.agent.stop();
    }
}

struct OntologyBehavior {
    ontologies: Vec<Arc<Ontology>>,
}

impl AgentBehavior for OntologyBehavior {
    fn on_message(&self, ctx: &AgentContext, env: Envelope) {
        let reply = match env.message.performative {
            Performative::Ping => env.message.reply_skeleton(Performative::Reply),
            Performative::AskOne | Performative::AskAll => {
                let wanted = env.message.content().and_then(SExpr::as_text);
                match wanted.and_then(|w| self.ontologies.iter().find(|o| o.name == w)) {
                    Some(o) => env
                        .message
                        .reply_skeleton(Performative::Reply)
                        .with_content(ontology_to_sexpr(o)),
                    None => env.message.reply_skeleton(Performative::Sorry),
                }
            }
            _ => env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string("ontology agent answers ask-one only")),
        };
        let _ = ctx.send(&env.from, reply);
    }
}

/// Spawns an ontology agent on its own private runtime over the bus.
/// `ask-one` with an ontology-name atom as content returns the
/// definition; unknown names get `sorry`.
pub fn spawn_ontology_agent(
    bus: &Bus,
    name: impl Into<String>,
    ontologies: Vec<Arc<Ontology>>,
) -> Result<OntologyAgentHandle, BusError> {
    let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
    let mut handle = spawn_ontology_agent_on(&runtime, name, ontologies)?;
    handle._runtime = Some(runtime);
    Ok(handle)
}

/// Spawns an ontology agent on a shared [`AgentRuntime`].
pub fn spawn_ontology_agent_on(
    runtime: &AgentRuntime,
    name: impl Into<String>,
    ontologies: Vec<Arc<Ontology>>,
) -> Result<OntologyAgentHandle, BusError> {
    let name = name.into();
    let agent = runtime.spawn(&name, Arc::new(OntologyBehavior { ontologies }))?;
    Ok(OntologyAgentHandle { name, agent, _runtime: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_agent::Bus;
    use infosleuth_kqml::Message;
    use infosleuth_ontology::healthcare_ontology;
    use std::time::Duration;

    #[test]
    fn serves_ontology_definitions() {
        let bus = Bus::new();
        let handle =
            spawn_ontology_agent(&bus, "ontology-agent", vec![Arc::new(healthcare_ontology())])
                .unwrap();
        let mut client = bus.register("client").unwrap();
        let reply = client
            .request(
                "ontology-agent",
                Message::new(Performative::AskOne).with_content(SExpr::atom("healthcare")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        let text = reply.content().unwrap().to_string();
        assert!(text.contains("patient"));
        assert!(text.contains("(isa provider)")); // podiatrist is-a provider
        assert!(text.contains("key"));
        // Unknown ontology → sorry.
        let reply = client
            .request(
                "ontology-agent",
                Message::new(Performative::AskOne).with_content(SExpr::atom("nope")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        handle.stop();
    }
}
