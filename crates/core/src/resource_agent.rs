//! Resource agents: proxies for structured repositories.
//!
//! "Resource agents are the back-end agents within InfoSleuth which act as
//! proxies for structured or semi-structured repositories." Each one wraps
//! an in-memory relational [`Catalog`], advertises its content to brokers
//! (with redundancy, per §4.2), answers SQL `ask-all` queries, and responds
//! to pings. Resource agents are hosted on an [`AgentRuntime`]; §4.2.2
//! broker maintenance runs as the agent's periodic tick.

use crate::tablecodec;
use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, BrokerLists, Bus, BusError, Envelope,
    Requester, RuntimeConfig,
};
use infosleuth_broker::advertise_to;
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_ontology::{Advertisement, Ontology};
use infosleuth_relquery::{execute, parse_select, plan, Catalog, LogicalPlan, Table};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Specification of one resource agent.
pub struct ResourceSpec {
    /// The agent's complete advertisement (location, syntactic, semantic).
    pub advertisement: Advertisement,
    /// Local tables. Table names are ontology class names (a vertical
    /// fragment is a table with a subset of the class's columns; a
    /// subclass extent is a table named after the subclass).
    pub catalog: Catalog,
    /// The domain ontology, used to resolve superclass scans to local
    /// subclass tables.
    pub ontology: Arc<Ontology>,
    /// How many brokers to advertise to (redundant advertising, §4.2.1).
    pub redundancy: usize,
    /// §4.2.2 maintenance: how often to "cycle through the
    /// connected-broker-list, and query each broker in turn to see if it
    /// still knows about them" (the broker ping), re-advertising as needed.
    /// `None` disables maintenance.
    pub maintenance_interval: Option<Duration>,
    /// Request/reply timeout for broker conversations.
    pub timeout: Duration,
}

/// Handle to a running resource agent.
pub struct ResourceAgentHandle {
    name: String,
    agent: AgentHandle,
    _runtime: Option<AgentRuntime>,
}

impl ResourceAgentHandle {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends by this agent the transport refused (dead brokers, vanished
    /// subscribers).
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    pub fn stop(self) {
        self.agent.stop();
    }
}

/// A standing query opened by a `subscribe` performative (§2: "performing
/// polling and notification for monitoring changes in data").
struct Subscription {
    id: String,
    subscriber: String,
    sql: String,
    last: Option<Table>,
}

/// Mutable state guarded as one unit, so each handler sees (and leaves)
/// a consistent catalog + broker-list + subscription picture — the same
/// serialization the seed's single loop thread provided.
struct ResourceState {
    spec: ResourceSpec,
    lists: BrokerLists,
    subscriptions: Vec<Subscription>,
    sub_seq: u64,
}

struct ResourceBehavior {
    maintenance_interval: Option<Duration>,
    state: Mutex<ResourceState>,
}

impl AgentBehavior for ResourceBehavior {
    fn on_message(&self, ctx: &AgentContext, env: Envelope) {
        let mut state = self.state.lock();
        match env.message.performative {
            Performative::Ping => {
                let reply = env.message.reply_skeleton(Performative::Reply);
                let _ = ctx.send(&env.from, reply);
            }
            Performative::AskAll | Performative::AskOne => {
                let reply = match env.message.content().and_then(SExpr::as_text) {
                    Some(sql) => answer_sql(&state.spec, sql, &env.message),
                    None => env
                        .message
                        .reply_skeleton(Performative::Error)
                        .with_content(SExpr::string("expected SQL content")),
                };
                let _ = ctx.send(&env.from, reply);
            }
            Performative::Subscribe => {
                let Some(sql) = env.message.content().and_then(SExpr::as_text) else {
                    let reply = env
                        .message
                        .reply_skeleton(Performative::Error)
                        .with_content(SExpr::string("expected SQL content"));
                    let _ = ctx.send(&env.from, reply);
                    return;
                };
                state.sub_seq += 1;
                let id = env
                    .message
                    .reply_with()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("sub-{}", state.sub_seq));
                // Notifications go to the message's `reply-to` when set:
                // a subscriber that asked through a request-scoped
                // endpoint names its long-lived mailbox there.
                let subscriber = env.message.get_text("reply-to").unwrap_or(&env.from).to_string();
                let mut sub =
                    Subscription { id: id.clone(), subscriber, sql: sql.to_string(), last: None };
                // Acknowledge, then deliver the initial snapshot.
                let ack =
                    env.message.reply_skeleton(Performative::Tell).with_content(SExpr::atom(id));
                let _ = ctx.send(&env.from, ack);
                notify_if_changed(ctx, &state.spec, &mut sub);
                state.subscriptions.push(sub);
            }
            Performative::Update => {
                let reply = match env.message.content().and_then(tablecodec::table_from_sexpr_ok) {
                    Some(rows) => match apply_update(&mut state.spec, &rows) {
                        Ok(n) => env
                            .message
                            .reply_skeleton(Performative::Tell)
                            .with_content(SExpr::atom(n.to_string())),
                        Err(e) => env
                            .message
                            .reply_skeleton(Performative::Error)
                            .with_content(SExpr::string(e)),
                    },
                    None => env
                        .message
                        .reply_skeleton(Performative::Error)
                        .with_content(SExpr::string("expected (table ...) content")),
                };
                let ok = reply.performative == Performative::Tell;
                let _ = ctx.send(&env.from, reply);
                if ok {
                    let ResourceState { spec, subscriptions, .. } = &mut *state;
                    for sub in subscriptions.iter_mut() {
                        notify_if_changed(ctx, spec, sub);
                    }
                }
            }
            _ => {
                let reply = env.message.reply_skeleton(Performative::Error).with_content(
                    SExpr::string("resource agents answer SQL ask-all/subscribe/update only"),
                );
                let _ = ctx.send(&env.from, reply);
            }
        }
    }

    fn tick_interval(&self) -> Option<Duration> {
        self.maintenance_interval
    }

    fn on_tick(&self, ctx: &AgentContext) {
        let mut state = self.state.lock();
        let ResourceState { spec, lists, .. } = &mut *state;
        let mut requester = ctx;
        maintain_broker_connections(&mut requester, lists, spec);
    }
}

/// Spawns a resource agent on its own private runtime over the bus:
/// registers, advertises to brokers per the spec's redundancy, then
/// serves queries.
pub fn spawn_resource_agent(
    bus: &Bus,
    spec: ResourceSpec,
    brokers: &[String],
    timeout: Duration,
) -> Result<ResourceAgentHandle, BusError> {
    let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default().with_workers(2));
    let mut handle = spawn_resource_agent_on(&runtime, spec, brokers, timeout)?;
    handle._runtime = Some(runtime);
    Ok(handle)
}

/// Spawns a resource agent on a shared [`AgentRuntime`].
pub fn spawn_resource_agent_on(
    runtime: &AgentRuntime,
    spec: ResourceSpec,
    brokers: &[String],
    timeout: Duration,
) -> Result<ResourceAgentHandle, BusError> {
    let name = spec.advertisement.location.name.clone();
    let lists = BrokerLists::new(brokers.iter().cloned(), spec.redundancy);
    let behavior = Arc::new(ResourceBehavior {
        maintenance_interval: spec.maintenance_interval,
        state: Mutex::new(ResourceState { spec, lists, subscriptions: Vec::new(), sub_seq: 0 }),
    });
    let agent = runtime.spawn(&name, Arc::clone(&behavior) as Arc<dyn AgentBehavior>)?;
    {
        // Initial advertising, synchronously, so callers see a connected
        // agent as soon as the spawn returns.
        let mut state = behavior.state.lock();
        let ResourceState { spec, lists, .. } = &mut *state;
        let mut requester = &**agent.ctx();
        advertise_per_plan(&mut requester, lists, &spec.advertisement, timeout);
    }
    Ok(ResourceAgentHandle { name, agent, _runtime: None })
}

/// Advertises to brokers following the §4.2 plan until redundancy is met
/// or candidates run out.
fn advertise_per_plan<R: Requester>(
    requester: &mut R,
    lists: &mut BrokerLists,
    ad: &Advertisement,
    timeout: Duration,
) {
    let plan = lists.plan_readvertise();
    for broker in plan.advertise_to {
        if !lists.needs_advertising() {
            break; // redundancy target met
        }
        match advertise_to(requester, &broker, ad, timeout) {
            Ok(true) => lists.record_advertised(&broker),
            Ok(false) | Err(_) => lists.record_lost(&broker),
        }
    }
}

/// §4.2.2: ping each connected broker about ourselves; drop brokers that
/// died or forgot us; re-advertise to restore the redundancy target.
fn maintain_broker_connections<R: Requester>(
    requester: &mut R,
    lists: &mut BrokerLists,
    spec: &ResourceSpec,
) {
    let connected: Vec<String> = lists.connected().map(str::to_string).collect();
    let me = spec.advertisement.location.name.clone();
    for broker in connected {
        match infosleuth_agent::ping(requester, &broker, Some(&me), spec.timeout) {
            Ok(true) => {}
            Ok(false) => lists.record_forgotten(&broker),
            Err(_) => lists.record_lost(&broker),
        }
    }
    advertise_per_plan(requester, lists, &spec.advertisement, spec.timeout);
}

/// Appends incoming rows to the named local table, aligning columns by
/// (bare) name. Returns the number of inserted rows.
fn apply_update(spec: &mut ResourceSpec, rows: &Table) -> Result<usize, String> {
    let target = spec
        .catalog
        .table_mut(&rows.name)
        .ok_or_else(|| format!("no local table '{}'", rows.name))?;
    let idx: Vec<usize> = target
        .columns()
        .iter()
        .map(|c| {
            rows.column_index(&c.name).ok_or_else(|| format!("update missing column '{}'", c.name))
        })
        .collect::<Result<_, _>>()?;
    let mut inserted = 0;
    for row in rows.rows() {
        let aligned: Vec<_> = idx.iter().map(|&i| row[i].clone()).collect();
        target.push_row(aligned).map_err(|e| e.to_string())?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Re-evaluates a subscription; when the result changed, sends the
/// subscriber a `tell` notification tagged with the subscription id. The
/// first notification is the full snapshot (`(table ...)`); every later
/// one carries only the row-level delta against the previously delivered
/// result (`(delta (added ...) (removed ...))`). An unchanged result sends
/// nothing.
fn notify_if_changed(ctx: &AgentContext, spec: &ResourceSpec, sub: &mut Subscription) {
    let Ok(stmt) = parse_select(&sub.sql) else {
        return;
    };
    let logical = resolve_scans(&plan(&stmt), spec);
    let Ok(result) = execute(&logical, &spec.catalog) else {
        return;
    };
    let content = match &sub.last {
        None => tablecodec::table_to_sexpr(&result),
        Some(last) => {
            let (added, removed) = tablecodec::table_diff(last, &result);
            if added.is_empty() && removed.is_empty() {
                return;
            }
            tablecodec::table_delta_to_sexpr(&added, &removed)
        }
    };
    let notification =
        Message::new(Performative::Tell).with_in_reply_to(sub.id.clone()).with_content(content);
    let _ = ctx.send(&sub.subscriber, notification);
    sub.last = Some(result);
}

/// Parses and executes SQL against the local catalog, resolving scans of
/// classes this agent does not hold directly to local subclass extents.
fn answer_sql(spec: &ResourceSpec, sql: &str, msg: &Message) -> Message {
    let stmt = match parse_select(sql) {
        Ok(s) => s,
        Err(e) => {
            return msg
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()))
        }
    };
    let logical = resolve_scans(&plan(&stmt), spec);
    match execute(&logical, &spec.catalog) {
        Ok(table) => {
            msg.reply_skeleton(Performative::Reply).with_content(tablecodec::table_to_sexpr(&table))
        }
        Err(e) => {
            // No local contribution (e.g. a fragment asked for a column it
            // does not hold): `sorry`, not an error — the MRQ treats it as
            // an empty contribution.
            msg.reply_skeleton(Performative::Sorry).with_content(SExpr::string(e.to_string()))
        }
    }
}

/// Rewrites `Scan(C)` into a union of the local tables whose class is `C`
/// or a subclass of `C` (the class-hierarchy stream: a resource holding
/// `C2a` answers a query over `C2` with its `C2a` rows).
fn resolve_scans(p: &LogicalPlan, spec: &ResourceSpec) -> LogicalPlan {
    match p {
        LogicalPlan::Scan { class } => {
            if spec.catalog.table(class).is_some() {
                return p.clone();
            }
            let locals: Vec<&Table> = spec
                .catalog
                .tables()
                .filter(|t| spec.ontology.is_subclass_or_self(&t.name, class))
                .collect();
            match locals.len() {
                0 => p.clone(), // execution will report UnknownClass
                _ => {
                    let mut iter = locals.into_iter();
                    let first = iter.next().expect("len >= 1");
                    let mut acc = LogicalPlan::Scan { class: first.name.clone() };
                    for t in iter {
                        acc = LogicalPlan::Union {
                            left: Box::new(acc),
                            right: Box::new(LogicalPlan::Scan { class: t.name.clone() }),
                        };
                    }
                    acc
                }
            }
        }
        LogicalPlan::Select { predicate, input } => LogicalPlan::Select {
            predicate: predicate.clone(),
            input: Box::new(resolve_scans(input, spec)),
        },
        LogicalPlan::Project { columns, input } => LogicalPlan::Project {
            columns: columns.clone(),
            input: Box::new(resolve_scans(input, spec)),
        },
        LogicalPlan::Join { left, right, left_col, right_col } => LogicalPlan::Join {
            left: Box::new(resolve_scans(left, spec)),
            right: Box::new(resolve_scans(right, spec)),
            left_col: left_col.clone(),
            right_col: right_col.clone(),
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(resolve_scans(left, spec)),
            right: Box::new(resolve_scans(right, spec)),
        },
        LogicalPlan::Aggregate { group_by, aggregates, input } => LogicalPlan::Aggregate {
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
            input: Box::new(resolve_scans(input, spec)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::Value;
    use infosleuth_ontology::{paper_class_ontology, AgentLocation, AgentType, ValueType};
    use infosleuth_relquery::Column;

    fn spec_with(tables: Vec<Table>) -> ResourceSpec {
        let mut catalog = Catalog::new();
        for t in tables {
            catalog.insert(t);
        }
        ResourceSpec {
            advertisement: Advertisement::new(AgentLocation::new(
                "ra-test",
                "tcp://h:1",
                AgentType::Resource,
            )),
            catalog,
            ontology: Arc::new(paper_class_ontology()),
            redundancy: 1,
            maintenance_interval: None,
            timeout: Duration::from_secs(2),
        }
    }

    fn table(name: &str, rows: Vec<(i64, i64)>) -> Table {
        let mut t = Table::new(
            name,
            vec![Column::new("id", ValueType::Int), Column::new("a", ValueType::Int)],
        );
        for (id, a) in rows {
            t.push_row(vec![Value::Int(id), Value::Int(a)]).unwrap();
        }
        t
    }

    fn ask(spec: &ResourceSpec, sql: &str) -> Message {
        let msg = Message::new(Performative::AskAll)
            .with_sender("tester")
            .with_reply_with("q1")
            .with_content(SExpr::string(sql));
        answer_sql(spec, sql, &msg)
    }

    #[test]
    fn answers_direct_class_queries() {
        let spec = spec_with(vec![table("C2", vec![(1, 10), (2, 20)])]);
        let reply = ask(&spec, "select * from C2 where a > 15");
        assert_eq!(reply.performative, Performative::Reply);
        let t = tablecodec::table_from_sexpr(reply.content().unwrap()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolves_superclass_scan_to_subclass_tables() {
        // The CH stream: the agent holds C2a and C2b; a query over C2
        // returns the union of both extents.
        let spec = spec_with(vec![table("C2a", vec![(1, 10)]), table("C2b", vec![(2, 20)])]);
        let reply = ask(&spec, "select * from C2");
        assert_eq!(reply.performative, Performative::Reply);
        let t = tablecodec::table_from_sexpr(reply.content().unwrap()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_class_yields_sorry() {
        let spec = spec_with(vec![table("C2", vec![])]);
        let reply = ask(&spec, "select * from C9");
        assert_eq!(reply.performative, Performative::Sorry);
    }

    #[test]
    fn fragment_missing_column_yields_sorry() {
        // The agent holds only id+a; projecting b cannot be served locally.
        let spec = spec_with(vec![table("C1", vec![(1, 10)])]);
        let reply = ask(&spec, "select b from C1");
        assert_eq!(reply.performative, Performative::Sorry);
    }

    #[test]
    fn bad_sql_yields_error() {
        let spec = spec_with(vec![]);
        let reply = ask(&spec, "selekt * form x");
        assert_eq!(reply.performative, Performative::Error);
    }

    #[test]
    fn live_agent_round_trip() {
        let bus = Bus::new();
        let spec = spec_with(vec![table("C2", vec![(1, 10)])]);
        let handle = spawn_resource_agent(&bus, spec, &[], Duration::from_secs(1)).unwrap();
        let mut client = bus.register("client").unwrap();
        let reply = client
            .request(
                "ra-test",
                Message::new(Performative::AskAll)
                    .with_language("SQL 2.0")
                    .with_content(SExpr::string("select * from C2")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.performative, Performative::Reply);
        // Ping works.
        assert_eq!(
            infosleuth_agent::ping(&mut client, "ra-test", None, Duration::from_secs(1)),
            Ok(true)
        );
        handle.stop();
        assert!(!bus.is_registered("ra-test"));
    }

    #[test]
    fn hosted_agent_serves_subscriptions_on_shared_runtime() {
        use infosleuth_agent::{AgentRuntime, RuntimeConfig};
        let bus = Bus::new();
        let runtime = AgentRuntime::new(bus.as_transport(), RuntimeConfig::default());
        let spec = spec_with(vec![table("C2", vec![(1, 10)])]);
        let handle = spawn_resource_agent_on(&runtime, spec, &[], Duration::from_secs(1)).unwrap();
        let mut client = bus.register("subscriber").unwrap();
        let ack = client
            .request(
                "ra-test",
                Message::new(Performative::Subscribe)
                    .with_language("SQL 2.0")
                    .with_content(SExpr::string("select * from C2")),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(ack.performative, Performative::Tell);
        // The initial snapshot follows the ack.
        let snapshot = client.recv_timeout(Duration::from_secs(2)).expect("initial snapshot");
        let t = tablecodec::table_from_sexpr(snapshot.message.content().unwrap()).unwrap();
        assert_eq!(t.len(), 1);
        // An update triggers a row-level delta: only the inserted row.
        let update = Message::new(Performative::Update)
            .with_content(tablecodec::table_to_sexpr(&table("C2", vec![(2, 20)])));
        let reply = client.request("ra-test", update, Duration::from_secs(2)).unwrap();
        assert_eq!(reply.performative, Performative::Tell);
        let notify = client.recv_timeout(Duration::from_secs(2)).expect("change notification");
        let (added, removed) =
            tablecodec::table_delta_from_sexpr(notify.message.content().unwrap()).unwrap();
        assert_eq!(added.len(), 1);
        assert_eq!(added.value(0, "id"), Some(&Value::Int(2)));
        assert!(removed.is_empty());
        // Re-sending the same rows leaves the result unchanged: the agent
        // stays silent (no empty-delta notification).
        let update = Message::new(Performative::Update)
            .with_content(tablecodec::table_to_sexpr(&table("C2", vec![])));
        let reply = client.request("ra-test", update, Duration::from_secs(2)).unwrap();
        assert_eq!(reply.performative, Performative::Tell);
        assert!(client.recv_timeout(Duration::from_millis(200)).is_none());
        handle.stop();
        runtime.shutdown();
    }
}
