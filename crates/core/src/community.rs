//! Assembling a complete InfoSleuth agent community.
//!
//! A community (Figure 1) is brokers + core agents (MRQ, ontology agent) +
//! resource agents + user agents, all hosted on **one shared
//! [`AgentRuntime`]** over one [`Transport`] (the in-proc bus by default;
//! a [`TcpTransport`](infosleuth_agent::TcpTransport) node via
//! [`CommunityBuilder::with_transport`]). The builder wires everything:
//! brokers spawn and interconnect into a consortium, resource agents
//! advertise with the configured redundancy, the MRQ agent advertises to
//! every broker, and user agents connect with the broker list as their
//! preferred brokers. The monitor agent doubles as the community's
//! delivery-failure sink.

use crate::monitor_agent::{spawn_monitor_agent_on, MonitorAgentHandle, MonitorSpec};
use crate::mrq_agent::{spawn_mrq_agent_on, MrqAgentHandle, MrqSpec};
use crate::ontology_agent::{spawn_ontology_agent_on, OntologyAgentHandle};
use crate::resource_agent::{spawn_resource_agent_on, ResourceAgentHandle, ResourceSpec};
use crate::user_agent::UserAgent;
use infosleuth_agent::{AgentRuntime, Bus, BusError, RuntimeConfig, Transport};
use infosleuth_broker::{BrokerAgent, BrokerConfig, BrokerHandle, Repository};
use infosleuth_constraint::Conjunction;
use infosleuth_ontology::{
    obs_ontology, Advertisement, AgentLocation, AgentType, Capability, ConversationType, Fragment,
    Ontology, OntologyContent, SemanticInfo, SyntacticInfo,
};
use infosleuth_relquery::Catalog;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Declarative description of one resource agent.
pub struct ResourceDef {
    pub name: String,
    pub catalog: Catalog,
    /// Name of the ontology the catalog's classes come from.
    pub ontology: String,
    /// Advertised restrictions on the data (horizontal-fragment bounds).
    pub constraints: Conjunction,
    /// Advertised fragments, per class.
    pub fragments: Vec<(String, Fragment)>,
    /// Brokers to advertise to (redundant advertising); 1 by default.
    pub redundancy: usize,
    /// §4.2.2 maintenance interval (broker pings + re-advertising);
    /// `None` disables it.
    pub maintenance_interval: Option<Duration>,
}

impl ResourceDef {
    pub fn new(name: impl Into<String>, ontology: impl Into<String>, catalog: Catalog) -> Self {
        ResourceDef {
            name: name.into(),
            catalog,
            ontology: ontology.into(),
            constraints: Conjunction::always(),
            fragments: Vec::new(),
            redundancy: 1,
            maintenance_interval: None,
        }
    }

    pub fn with_constraints(mut self, c: Conjunction) -> Self {
        self.constraints = c;
        self
    }

    pub fn with_fragment(mut self, class: impl Into<String>, f: Fragment) -> Self {
        self.fragments.push((class.into(), f));
        self
    }

    pub fn with_redundancy(mut self, r: usize) -> Self {
        self.redundancy = r.max(1);
        self
    }

    /// Enables §4.2.2 maintenance (broker pings + re-advertising).
    pub fn with_maintenance(mut self, interval: Duration) -> Self {
        self.maintenance_interval = Some(interval);
        self
    }

    /// Derives the agent's advertisement from its catalog and ontology.
    /// Public so distributed deployments can build a [`ResourceSpec`]
    /// without going through [`CommunityBuilder`].
    pub fn advertisement(&self, ontology: &Ontology, port: u16) -> Advertisement {
        let classes: BTreeSet<String> = self.catalog.names().map(str::to_string).collect();
        let mut slots = BTreeSet::new();
        let mut keys = BTreeSet::new();
        for table in self.catalog.tables() {
            for col in table.columns() {
                slots.insert(format!("{}.{}", table.name, col.name));
            }
            if let Ok(class_slots) = ontology.all_slots(&table.name) {
                for s in class_slots.iter().filter(|s| s.is_key) {
                    keys.insert(format!("{}.{}", table.name, s.name));
                }
            }
        }
        let mut content = OntologyContent::new(self.ontology.clone())
            .with_classes(classes)
            .with_constraints(self.constraints.clone());
        content.slots = slots;
        content.keys = keys;
        for (class, frag) in &self.fragments {
            content = content.with_fragment(class.clone(), frag.clone());
        }
        Advertisement::new(AgentLocation::new(
            self.name.clone(),
            format!("tcp://{}.mcc.com:{}", self.name, port),
            AgentType::Resource,
        ))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::AskAll, ConversationType::AskOne])
                .with_capabilities([
                    Capability::relational_query_processing(),
                    Capability::select(),
                    Capability::project(),
                ])
                .with_content(content),
        )
    }
}

/// Builder for a [`Community`].
pub struct CommunityBuilder {
    ontologies: Vec<Arc<Ontology>>,
    broker_configs: Vec<BrokerConfig>,
    resources: Vec<ResourceDef>,
    timeout: Duration,
    transport: Option<Arc<dyn Transport>>,
}

impl Default for CommunityBuilder {
    fn default() -> Self {
        CommunityBuilder {
            ontologies: Vec::new(),
            broker_configs: Vec::new(),
            resources: Vec::new(),
            timeout: Duration::from_secs(5),
            transport: None,
        }
    }
}

impl CommunityBuilder {
    /// Registers a common domain ontology.
    pub fn with_ontology(mut self, o: Ontology) -> Self {
        self.ontologies.push(Arc::new(o));
        self
    }

    /// Adds a general-purpose broker by name.
    pub fn add_broker(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        let port = 5000 + self.broker_configs.len() as u16;
        self.broker_configs
            .push(BrokerConfig::new(name.clone(), format!("tcp://{name}.mcc.com:{port}")));
        self
    }

    /// Adds a broker with full configuration control (specialization,
    /// policies, consortia).
    pub fn add_broker_with(mut self, config: BrokerConfig) -> Self {
        self.broker_configs.push(config);
        self
    }

    /// Adds a resource agent.
    pub fn add_resource(mut self, def: ResourceDef) -> Self {
        self.resources.push(def);
        self
    }

    /// Request/reply timeout used by all agents in the community.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Hosts the community on the given transport (e.g. a
    /// [`TcpTransport`](infosleuth_agent::TcpTransport) node) instead of
    /// a fresh in-proc bus. [`Community::bus`] is unavailable on a custom
    /// transport; use [`Community::transport`].
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Spawns everything on one shared runtime and returns the running
    /// community.
    pub fn build(self) -> Result<Community, BusError> {
        assert!(!self.broker_configs.is_empty(), "a community needs at least one broker");
        let (bus, transport) = match self.transport {
            Some(t) => (None, t),
            None => {
                let bus = Bus::new();
                let t = bus.as_transport();
                (Some(bus), t)
            }
        };
        // One runtime for the whole community. Workers are sized so that
        // the deepest request chain (user → MRQ → broker → broker peer,
        // plus resource fan-out and liveness sweeps) always finds a free
        // worker; requests are timeout-bounded, so an undersized pool
        // degrades to slow rather than stuck.
        let agent_count = self.broker_configs.len() + self.resources.len() + 3;
        let runtime = AgentRuntime::new(
            Arc::clone(&transport),
            RuntimeConfig::default()
                .with_workers((4 + 2 * agent_count).min(48))
                .with_monitor("monitor-agent"),
        );
        // Brokers first; they form one fully-interconnected consortium.
        let mut brokers = Vec::new();
        for config in self.broker_configs {
            let mut repo = Repository::new();
            // Every community broker understands the observability
            // ontology, so health publishers can advertise their facts
            // (and threshold subscriptions can stand) out of the box.
            repo.register_ontology(obs_ontology());
            for o in &self.ontologies {
                repo.register_ontology((**o).clone());
            }
            brokers.push(BrokerAgent::spawn_on(&runtime, config, repo)?);
        }
        {
            let refs: Vec<&BrokerHandle> = brokers.iter().collect();
            infosleuth_broker::interconnect(&refs)?;
        }
        let broker_names: Vec<String> = brokers.iter().map(|b| b.name().to_string()).collect();

        // Core agents. The monitor comes first so delivery failures during
        // the rest of the bring-up already have a sink.
        let monitor = spawn_monitor_agent_on(
            &runtime,
            MonitorSpec {
                name: "monitor-agent".into(),
                address: "tcp://monitor.mcc.com:6001".into(),
                brokers: broker_names.clone(),
                timeout: self.timeout,
                scrape_addr: None,
            },
        )?;
        let ontology_agent =
            spawn_ontology_agent_on(&runtime, "ontology-agent", self.ontologies.clone())?;
        let mrq = spawn_mrq_agent_on(
            &runtime,
            MrqSpec {
                name: "mrq-agent".into(),
                address: "tcp://mrq.mcc.com:6000".into(),
                brokers: broker_names.clone(),
                ontologies: self.ontologies.clone(),
                timeout: self.timeout,
            },
        )?;

        // Resource agents.
        let mut resources = Vec::new();
        for (i, def) in self.resources.into_iter().enumerate() {
            let ontology = self
                .ontologies
                .iter()
                .find(|o| o.name == def.ontology)
                .unwrap_or_else(|| {
                    panic!("resource '{}' references unknown ontology '{}'", def.name, def.ontology)
                })
                .clone();
            let ad = def.advertisement(&ontology, 7000 + i as u16);
            let spec = ResourceSpec {
                advertisement: ad,
                catalog: def.catalog,
                ontology,
                redundancy: def.redundancy,
                maintenance_interval: def.maintenance_interval,
                timeout: self.timeout,
            };
            resources.push(spawn_resource_agent_on(&runtime, spec, &broker_names, self.timeout)?);
        }

        Ok(Community {
            bus,
            transport,
            runtime,
            brokers,
            broker_names,
            resources,
            mrq: Some(mrq),
            monitor: Some(monitor),
            ontology_agent: Some(ontology_agent),
            timeout: self.timeout,
        })
    }
}

/// A running InfoSleuth community.
pub struct Community {
    bus: Option<Bus>,
    transport: Arc<dyn Transport>,
    runtime: AgentRuntime,
    brokers: Vec<BrokerHandle>,
    broker_names: Vec<String>,
    resources: Vec<ResourceAgentHandle>,
    mrq: Option<MrqAgentHandle>,
    monitor: Option<MonitorAgentHandle>,
    ontology_agent: Option<OntologyAgentHandle>,
    timeout: Duration,
}

impl Community {
    pub fn builder() -> CommunityBuilder {
        CommunityBuilder::default()
    }

    /// The shared in-proc message bus (for spawning additional custom
    /// agents). Panics when the community was built on a custom
    /// transport; use [`Community::transport`] there.
    pub fn bus(&self) -> &Bus {
        self.bus.as_ref().expect("community was built with a custom transport; use transport()")
    }

    /// The transport every community agent is registered on.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The shared runtime hosting the community's agents (for spawning
    /// additional hosted agents).
    pub fn runtime(&self) -> &AgentRuntime {
        &self.runtime
    }

    pub fn broker_names(&self) -> &[String] {
        &self.broker_names
    }

    pub fn brokers(&self) -> &[BrokerHandle] {
        &self.brokers
    }

    /// The monitor agent's handle — the community's delivery-failure log.
    pub fn monitor(&self) -> Option<&MonitorAgentHandle> {
        self.monitor.as_ref()
    }

    /// Total delivery failures across the community's brokers and
    /// resource agents: sends the transport refused, §4.2.2's death
    /// signal. A healthy community reports 0.
    pub fn delivery_failures(&self) -> u64 {
        let broker_failures: u64 = self.brokers.iter().map(|b| b.delivery_failures()).sum();
        let resource_failures: u64 = self.resources.iter().map(|r| r.delivery_failures()).sum();
        broker_failures + resource_failures
    }

    /// Connects a new user agent to the community; its preferred brokers
    /// are all of the community's brokers, in order.
    pub fn user(&self, name: impl Into<String>) -> Result<UserAgent, BusError> {
        UserAgent::connect_over(
            Arc::clone(&self.transport),
            name,
            self.broker_names.clone(),
            self.timeout,
        )
    }

    /// Stops a broker (simulating failure or clean shutdown); the rest of
    /// the community keeps running. Returns false if no such broker.
    pub fn stop_broker(&mut self, name: &str) -> bool {
        if let Some(pos) = self.brokers.iter().position(|b| b.name() == name) {
            let b = self.brokers.remove(pos);
            b.stop();
            true
        } else {
            false
        }
    }

    /// Stops a resource agent. Returns false if no such agent.
    pub fn stop_resource(&mut self, name: &str) -> bool {
        if let Some(pos) = self.resources.iter().position(|r| r.name() == name) {
            let r = self.resources.remove(pos);
            r.stop();
            true
        } else {
            false
        }
    }

    /// Shuts the whole community down.
    pub fn shutdown(mut self) {
        for r in self.resources.drain(..) {
            r.stop();
        }
        if let Some(m) = self.mrq.take() {
            m.stop();
        }
        if let Some(m) = self.monitor.take() {
            m.stop();
        }
        if let Some(o) = self.ontology_agent.take() {
            o.stop();
        }
        for b in self.brokers.drain(..) {
            b.stop();
        }
        self.runtime.shutdown();
    }
}
