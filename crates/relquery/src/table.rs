//! In-memory typed relational tables.

use infosleuth_constraint::Value;
use infosleuth_ontology::ValueType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub value_type: ValueType,
}

impl Column {
    pub fn new(name: impl Into<String>, value_type: ValueType) -> Self {
        Column { name: name.into(), value_type }
    }
}

/// A row of values, positionally aligned with the table's columns.
pub type Row = Vec<Value>;

/// Errors raised when constructing or mutating tables.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    ArityMismatch { expected: usize, got: usize },
    TypeMismatch { column: String, expected: ValueType, got: &'static str },
    UnknownColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, table has {expected} columns")
            }
            TableError::TypeMismatch { column, expected, got } => {
                write!(f, "column '{column}' expects {expected}, got {got}")
            }
            TableError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
        }
    }
}

impl std::error::Error for TableError {}

/// A relation: schema plus rows. Row order is insertion order; the executor
/// treats tables as multisets except through `UNION`, which deduplicates
/// (SQL semantics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    columns: Vec<Column>,
    rows: Vec<Row>,
}

impl Table {
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Table { name: name.into(), columns, rows: Vec::new() }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The position of a column. Accepts both bare (`age`) and qualified
    /// (`patient.age`) spellings on either side.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let bare = name.rsplit('.').next().unwrap_or(name);
        // Prefer an exact match (post-join schemas carry qualified names).
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Some(i);
        }
        self.columns.iter().position(|c| c.name == bare || c.name.rsplit('.').next() == Some(bare))
    }

    /// Appends a row, checking arity and value kinds.
    pub fn push_row(&mut self, row: Row) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        for (col, v) in self.columns.iter().zip(&row) {
            let ok = matches!(
                (col.value_type, v),
                (ValueType::Int, Value::Int(_))
                    | (ValueType::Float, Value::Float(_))
                    | (ValueType::Float, Value::Int(_)) // ints widen to float columns
                    | (ValueType::Str, Value::Str(_))
                    | (ValueType::Bool, Value::Bool(_))
            );
            if !ok {
                return Err(TableError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.value_type,
                    got: v.kind(),
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// The value at (row, column name).
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Approximate size in bytes (for simulation cost models).
    pub fn approx_size_bytes(&self) -> usize {
        let row_size: usize = self
            .columns
            .iter()
            .map(|c| match c.value_type {
                ValueType::Int | ValueType::Float => 8,
                ValueType::Bool => 1,
                ValueType::Str => 24,
            })
            .sum();
        self.rows.len() * row_size.max(1) + 64
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patients() -> Table {
        let mut t = Table::new(
            "patient",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Str),
                Column::new("age", ValueType::Int),
            ],
        );
        t.push_row(vec![Value::Int(1), Value::str("ann"), Value::Int(50)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::str("bob"), Value::Int(61)]).unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = patients();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, "name"), Some(&Value::str("ann")));
        assert_eq!(t.value(1, "age"), Some(&Value::Int(61)));
        assert_eq!(t.value(2, "age"), None);
    }

    #[test]
    fn qualified_column_lookup() {
        let t = patients();
        assert_eq!(t.column_index("patient.age"), Some(2));
        assert_eq!(t.column_index("age"), Some(2));
        assert_eq!(t.column_index("height"), None);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = patients();
        assert!(matches!(t.push_row(vec![Value::Int(3)]), Err(TableError::ArityMismatch { .. })));
        assert!(matches!(
            t.push_row(vec![Value::str("x"), Value::str("y"), Value::Int(1)]),
            Err(TableError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn ints_widen_into_float_columns() {
        let mut t = Table::new("m", vec![Column::new("cost", ValueType::Float)]);
        t.push_row(vec![Value::Int(100)]).unwrap();
        t.push_row(vec![Value::Float(1.5)]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn size_estimate_grows_with_rows() {
        let empty = Table::new("e", vec![Column::new("x", ValueType::Int)]);
        assert!(patients().approx_size_bytes() > empty.approx_size_bytes());
    }
}
