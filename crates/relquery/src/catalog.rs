//! The catalog of tables a resource agent holds.

use crate::table::Table;
use std::collections::BTreeMap;

/// A named collection of tables — the "structured database" behind one
/// resource agent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Inserts (or replaces) a table under its own name.
    pub fn insert(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total approximate size of all tables in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.tables.values().map(Table::approx_size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use infosleuth_ontology::ValueType;

    #[test]
    fn insert_and_lookup() {
        let mut c = Catalog::new();
        c.insert(Table::new("t", vec![Column::new("x", ValueType::Int)]));
        assert!(c.table("t").is_some());
        assert!(c.table("u").is_none());
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["t"]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_keeps_single_entry() {
        let mut c = Catalog::new();
        c.insert(Table::new("t", vec![Column::new("x", ValueType::Int)]));
        c.insert(Table::new("t", vec![Column::new("y", ValueType::Str)]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().columns()[0].name, "y");
    }
}
