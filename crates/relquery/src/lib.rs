//! SQL-subset query language and in-memory relational substrate.
//!
//! InfoSleuth resource agents "serve as interface to external information
//! sources" — in the paper's experiments, SQL databases holding classes of
//! the common ontology. This crate is that substrate, built from scratch:
//!
//! * a tokenizer and recursive-descent parser for the SQL 2.0 subset the
//!   paper exercises: `SELECT cols FROM class [JOIN class ON a = b]
//!   [WHERE conjunction] [UNION SELECT ...]`;
//! * a relational-algebra [`LogicalPlan`] (scan / select / project / join /
//!   union — exactly the Fig. 2 capability leaves);
//! * [`required_capabilities`] and [`referenced_classes`] — the analysis the
//!   MRQ agent runs to decide which resource agents to ask the broker for;
//! * an executor over in-memory typed [`Table`]s with hash joins;
//! * deterministic synthetic data generation for experiments.
//!
//! ```
//! use infosleuth_relquery::{parse_select, plan, referenced_classes};
//!
//! let stmt = parse_select("select * from C2 where a between 1 and 10").unwrap();
//! let plan = plan(&stmt);
//! assert_eq!(referenced_classes(&plan), vec!["C2".to_string()]);
//! ```

#![forbid(unsafe_code)]

mod ast;
mod catalog;
mod exec;
mod gen;
mod parser;
mod plan;
mod table;

pub use ast::{JoinClause, Projection, SelectStmt};
pub use catalog::Catalog;
pub use exec::{execute, ExecError};
pub use gen::{generate_table, GenSpec};
pub use parser::{parse_select, SqlError};
pub use plan::{plan, referenced_classes, required_capabilities, LogicalPlan};
pub use table::{Column, Row, Table, TableError};
