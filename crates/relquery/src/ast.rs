//! Abstract syntax for the SQL 2.0 subset.

use infosleuth_constraint::Conjunction;
use serde::{Deserialize, Serialize};

/// One projected column: `*` handled as an empty projection list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Projection {
    /// Possibly-qualified column name (`age` or `patient.age`).
    pub column: String,
}

/// An aggregate function (statistical aggregation — the capability the
/// paper's example query agent explicitly lacks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn as_str(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    pub fn parse(s: &str) -> Option<AggFunc> {
        Some(match s.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One aggregate in the select list: `count(*)`, `sum(cost)`, …
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    pub func: AggFunc,
    /// `None` for `count(*)`.
    pub column: Option<String>,
}

/// `JOIN <table> ON <left> = <right>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinClause {
    pub table: String,
    pub left_col: String,
    pub right_col: String,
}

/// A parsed `SELECT` statement (possibly a `UNION` chain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Empty means `*` (unless aggregates are present).
    pub projections: Vec<Projection>,
    /// Aggregates in the select list (`count(*)`, `sum(cost)`, …).
    pub aggregates: Vec<Aggregate>,
    /// `GROUP BY` columns.
    pub group_by: Vec<String>,
    pub from: String,
    pub joins: Vec<JoinClause>,
    /// `WHERE` conjunction; trivial when absent.
    pub where_clause: Conjunction,
    /// `UNION SELECT ...` continuation.
    pub union: Option<Box<SelectStmt>>,
}

impl SelectStmt {
    /// Whether the statement projects every column.
    pub fn is_star(&self) -> bool {
        self.projections.is_empty() && self.aggregates.is_empty()
    }

    /// Whether the statement performs statistical aggregation.
    pub fn has_aggregates(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// All tables mentioned anywhere in the statement (FROM, JOINs, UNION
    /// arms), in first-mention order without duplicates.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut stmt = Some(self);
        while let Some(s) = stmt {
            if !out.contains(&s.from) {
                out.push(s.from.clone());
            }
            for j in &s.joins {
                if !out.contains(&j.table) {
                    out.push(j.table.clone());
                }
            }
            stmt = s.union.as_deref();
        }
        out
    }
}
