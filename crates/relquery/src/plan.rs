//! Relational-algebra plans and query analysis.

use crate::ast::{Aggregate, SelectStmt};
use infosleuth_constraint::Conjunction;
use infosleuth_ontology::Capability;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A relational-algebra plan. The operator inventory is deliberately the
/// Fig. 2 capability taxonomy: select, project, join, union over base scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan a base class/table.
    Scan { class: String },
    /// Filter rows by a conjunction.
    Select { predicate: Conjunction, input: Box<LogicalPlan> },
    /// Keep only the named columns.
    Project { columns: Vec<String>, input: Box<LogicalPlan> },
    /// Equi-join on `left_col = right_col`.
    Join { left: Box<LogicalPlan>, right: Box<LogicalPlan>, left_col: String, right_col: String },
    /// Set union (deduplicating).
    Union { left: Box<LogicalPlan>, right: Box<LogicalPlan> },
    /// Statistical aggregation with optional grouping.
    Aggregate { group_by: Vec<String>, aggregates: Vec<Aggregate>, input: Box<LogicalPlan> },
}

impl LogicalPlan {
    fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => {
                vec![input]
            }
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Union { left, right } => {
                vec![left, right]
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(plan: &LogicalPlan, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match plan {
                LogicalPlan::Scan { class } => writeln!(f, "{pad}Scan {class}"),
                LogicalPlan::Select { predicate, input } => {
                    writeln!(f, "{pad}Select {predicate}")?;
                    go(input, depth + 1, f)
                }
                LogicalPlan::Project { columns, input } => {
                    writeln!(f, "{pad}Project {}", columns.join(", "))?;
                    go(input, depth + 1, f)
                }
                LogicalPlan::Join { left, right, left_col, right_col } => {
                    writeln!(f, "{pad}Join {left_col} = {right_col}")?;
                    go(left, depth + 1, f)?;
                    go(right, depth + 1, f)
                }
                LogicalPlan::Union { left, right } => {
                    writeln!(f, "{pad}Union")?;
                    go(left, depth + 1, f)?;
                    go(right, depth + 1, f)
                }
                LogicalPlan::Aggregate { group_by, aggregates, input } => {
                    let aggs: Vec<String> = aggregates
                        .iter()
                        .map(|a| {
                            format!("{}({})", a.func.as_str(), a.column.as_deref().unwrap_or("*"))
                        })
                        .collect();
                    if group_by.is_empty() {
                        writeln!(f, "{pad}Aggregate {}", aggs.join(", "))?;
                    } else {
                        writeln!(
                            f,
                            "{pad}Aggregate {} group by {}",
                            aggs.join(", "),
                            group_by.join(", ")
                        )?;
                    }
                    go(input, depth + 1, f)
                }
            }
        }
        go(self, 0, f)
    }
}

/// Lowers a parsed statement to a plan: scans → joins → select → project,
/// then unions.
pub fn plan(stmt: &SelectStmt) -> LogicalPlan {
    let mut p = LogicalPlan::Scan { class: stmt.from.clone() };
    for j in &stmt.joins {
        p = LogicalPlan::Join {
            left: Box::new(p),
            right: Box::new(LogicalPlan::Scan { class: j.table.clone() }),
            left_col: j.left_col.clone(),
            right_col: j.right_col.clone(),
        };
    }
    if !stmt.where_clause.is_trivial() {
        p = LogicalPlan::Select { predicate: stmt.where_clause.clone(), input: Box::new(p) };
    }
    if stmt.has_aggregates() {
        p = LogicalPlan::Aggregate {
            group_by: stmt.group_by.clone(),
            aggregates: stmt.aggregates.clone(),
            input: Box::new(p),
        };
    } else if !stmt.is_star() {
        p = LogicalPlan::Project {
            columns: stmt.projections.iter().map(|pr| pr.column.clone()).collect(),
            input: Box::new(p),
        };
    }
    if let Some(u) = &stmt.union {
        p = LogicalPlan::Union { left: Box::new(p), right: Box::new(plan(u)) };
    }
    p
}

/// The capability-taxonomy leaves a plan requires of its executor. This is
/// what the MRQ agent matches against advertised capabilities: a plan with a
/// join cannot be shipped to an agent that only advertised `select`.
pub fn required_capabilities(plan: &LogicalPlan) -> BTreeSet<Capability> {
    let mut caps = BTreeSet::new();
    let mut stack = vec![plan];
    while let Some(p) = stack.pop() {
        match p {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Select { .. } => {
                caps.insert(Capability::select());
            }
            LogicalPlan::Project { .. } => {
                caps.insert(Capability::project());
            }
            LogicalPlan::Join { .. } => {
                caps.insert(Capability::join());
            }
            LogicalPlan::Union { .. } => {
                caps.insert(Capability::union());
            }
            LogicalPlan::Aggregate { .. } => {
                caps.insert(Capability::statistical_aggregation());
            }
        }
        stack.extend(p.children());
    }
    if caps.is_empty() {
        // A bare scan still needs basic select capability.
        caps.insert(Capability::select());
    }
    caps
}

/// The base classes a plan reads, in stable (sorted, deduplicated) order —
/// the MRQ agent "looks at the query to determine which classes are required
/// to answer the query".
pub fn referenced_classes(plan: &LogicalPlan) -> Vec<String> {
    let mut classes = BTreeSet::new();
    let mut stack = vec![plan];
    while let Some(p) = stack.pop() {
        if let LogicalPlan::Scan { class } = p {
            classes.insert(class.clone());
        }
        stack.extend(p.children());
    }
    classes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn plan_of(sql: &str) -> LogicalPlan {
        plan(&parse_select(sql).unwrap())
    }

    #[test]
    fn bare_scan_requires_select() {
        let p = plan_of("select * from C2");
        assert_eq!(referenced_classes(&p), vec!["C2"]);
        assert!(required_capabilities(&p).contains(&Capability::select()));
    }

    #[test]
    fn filter_produces_select_node() {
        let p = plan_of("select * from C2 where a = 1");
        assert!(matches!(p, LogicalPlan::Select { .. }));
    }

    #[test]
    fn projection_and_join_capabilities() {
        let p =
            plan_of("select id from patient join diagnosis on patient.id = diagnosis.patient_id");
        let caps = required_capabilities(&p);
        assert!(caps.contains(&Capability::project()));
        assert!(caps.contains(&Capability::join()));
        assert_eq!(referenced_classes(&p), vec!["diagnosis", "patient"]);
    }

    #[test]
    fn union_capability_and_classes() {
        let p = plan_of("select * from C2a union select * from C2b");
        assert!(required_capabilities(&p).contains(&Capability::union()));
        assert_eq!(referenced_classes(&p), vec!["C2a", "C2b"]);
    }

    #[test]
    fn aggregates_require_statistical_aggregation() {
        let p = plan_of("select procedure, count(*) from stay group by procedure");
        assert!(required_capabilities(&p).contains(&Capability::statistical_aggregation()));
        assert!(matches!(p, LogicalPlan::Aggregate { .. }));
        let text = p.to_string();
        assert!(text.contains("Aggregate count(*) group by procedure"));
    }

    #[test]
    fn display_is_indented() {
        let text = plan_of("select id from C2 where a = 1").to_string();
        assert!(text.contains("Project"));
        assert!(text.contains("  Select"));
        assert!(text.contains("    Scan C2"));
    }
}
