//! Plan execution over in-memory tables.

use crate::ast::{AggFunc, Aggregate};
use crate::catalog::Catalog;
use crate::plan::LogicalPlan;
use crate::table::{Column, Table};
use infosleuth_constraint::{Conjunction, Value};
use infosleuth_ontology::ValueType;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    UnknownClass(String),
    UnknownColumn(String),
    /// UNION arms with different arity.
    UnionArity {
        left: usize,
        right: usize,
    },
    /// An aggregate over a non-numeric column, or similar misuse.
    Aggregate(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownClass(c) => write!(f, "unknown class '{c}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::UnionArity { left, right } => {
                write!(f, "UNION arms have different arity ({left} vs {right})")
            }
            ExecError::Aggregate(m) => write!(f, "aggregate error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes a plan against a catalog, producing a result table.
///
/// Scans qualify column names as `class.column` so that joins never
/// produce ambiguous schemas; predicates and projections may use either
/// bare or qualified spellings ([`Table::column_index`] accepts both — when
/// a bare name is ambiguous after a join, the leftmost column wins).
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<Table, ExecError> {
    match plan {
        LogicalPlan::Scan { class } => {
            let base =
                catalog.table(class).ok_or_else(|| ExecError::UnknownClass(class.clone()))?;
            let columns = base
                .columns()
                .iter()
                .map(|c| Column::new(format!("{class}.{}", c.name), c.value_type))
                .collect();
            let mut out = Table::new(class.clone(), columns);
            for row in base.rows() {
                out.push_row(row.clone()).expect("schema copied from source");
            }
            Ok(out)
        }
        LogicalPlan::Select { predicate, input } => {
            let table = execute(input, catalog)?;
            filter(&table, predicate)
        }
        LogicalPlan::Project { columns, input } => {
            let table = execute(input, catalog)?;
            let mut idxs = Vec::with_capacity(columns.len());
            for c in columns {
                idxs.push(
                    table.column_index(c).ok_or_else(|| ExecError::UnknownColumn(c.clone()))?,
                );
            }
            let out_cols: Vec<Column> = idxs.iter().map(|&i| table.columns()[i].clone()).collect();
            let mut out = Table::new(table.name.clone(), out_cols);
            for row in table.rows() {
                let projected: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
                out.push_row(projected).expect("columns selected from source schema");
            }
            Ok(out)
        }
        LogicalPlan::Join { left, right, left_col, right_col } => {
            let lt = execute(left, catalog)?;
            let rt = execute(right, catalog)?;
            // The join condition columns may appear on either side; resolve
            // flexibly, as SQL users write `a.x = b.y` in either order.
            let (li, ri) = match (lt.column_index(left_col), rt.column_index(right_col)) {
                (Some(l), Some(r)) => (l, r),
                _ => match (lt.column_index(right_col), rt.column_index(left_col)) {
                    (Some(l), Some(r)) => (l, r),
                    _ => return Err(ExecError::UnknownColumn(format!("{left_col} = {right_col}"))),
                },
            };
            // Hash join: build on the smaller side.
            let mut out_cols = lt.columns().to_vec();
            out_cols.extend(rt.columns().iter().cloned());
            let mut out = Table::new(format!("{}_{}", lt.name, rt.name), out_cols);
            let mut built: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (i, row) in rt.rows().iter().enumerate() {
                built.entry(&row[ri]).or_default().push(i);
            }
            for lrow in lt.rows() {
                if let Some(matches) = built.get(&lrow[li]) {
                    for &ri_row in matches {
                        let mut joined = lrow.clone();
                        joined.extend(rt.rows()[ri_row].iter().cloned());
                        out.push_row(joined).expect("concatenated schemas");
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { group_by, aggregates, input } => {
            let table = execute(input, catalog)?;
            aggregate(&table, group_by, aggregates)
        }
        LogicalPlan::Union { left, right } => {
            let lt = execute(left, catalog)?;
            let rt = execute(right, catalog)?;
            if lt.columns().len() != rt.columns().len() {
                return Err(ExecError::UnionArity {
                    left: lt.columns().len(),
                    right: rt.columns().len(),
                });
            }
            let mut out = Table::new(lt.name.clone(), lt.columns().to_vec());
            let mut seen: std::collections::HashSet<&[Value]> = std::collections::HashSet::new();
            for row in lt.rows().iter().chain(rt.rows()) {
                if seen.insert(row.as_slice()) {
                    out.push_row(row.clone()).expect("rows from compatible arms");
                }
            }
            Ok(out)
        }
    }
}

/// Evaluates grouped statistical aggregation over a materialized input.
fn aggregate(
    table: &Table,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> Result<Table, ExecError> {
    // Resolve grouping and aggregate columns.
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| table.column_index(c).ok_or_else(|| ExecError::UnknownColumn(c.clone())))
        .collect::<Result<_, _>>()?;
    let agg_idx: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| match &a.column {
            None => Ok(None),
            Some(c) => {
                table.column_index(c).map(Some).ok_or_else(|| ExecError::UnknownColumn(c.clone()))
            }
        })
        .collect::<Result<_, _>>()?;

    // Output schema: grouping columns, then one column per aggregate.
    let mut columns: Vec<Column> = group_idx.iter().map(|&i| table.columns()[i].clone()).collect();
    for (a, idx) in aggregates.iter().zip(&agg_idx) {
        let name = match &a.column {
            None => format!("{}(*)", a.func.as_str()),
            Some(c) => format!("{}({c})", a.func.as_str()),
        };
        let input_type = idx.map(|i| table.columns()[i].value_type);
        let vt = match a.func {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg => ValueType::Float,
            AggFunc::Sum => match input_type {
                Some(ValueType::Int) => ValueType::Int,
                Some(ValueType::Float) => ValueType::Float,
                other => {
                    return Err(ExecError::Aggregate(format!(
                        "sum over non-numeric column ({other:?})"
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => input_type
                .ok_or_else(|| ExecError::Aggregate("min/max need a column".to_string()))?,
        };
        if matches!(a.func, AggFunc::Avg)
            && !matches!(input_type, Some(ValueType::Int | ValueType::Float))
        {
            return Err(ExecError::Aggregate("avg over non-numeric column".to_string()));
        }
        columns.push(Column::new(name, vt));
    }

    /// Per-group accumulator for one aggregate.
    #[derive(Clone)]
    struct Acc {
        count: u64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
    }
    let fresh = Acc { count: 0, sum: 0.0, min: None, max: None };

    // Group rows, preserving first-seen group order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in table.rows() {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            vec![fresh.clone(); aggregates.len()]
        });
        for ((a, idx), acc) in aggregates.iter().zip(&agg_idx).zip(accs.iter_mut()) {
            acc.count += 1;
            if let Some(i) = idx {
                let v = &row[*i];
                if matches!(a.func, AggFunc::Sum | AggFunc::Avg) {
                    acc.sum += match v {
                        Value::Int(n) => *n as f64,
                        Value::Float(x) => *x,
                        other => {
                            return Err(ExecError::Aggregate(format!("cannot sum value {other}")))
                        }
                    };
                }
                let lower = acc
                    .min
                    .as_ref()
                    .map(|m| matches!(v.partial_cmp(m), Some(std::cmp::Ordering::Less)))
                    .unwrap_or(true);
                if lower {
                    acc.min = Some(v.clone());
                }
                let higher = acc
                    .max
                    .as_ref()
                    .map(|m| matches!(v.partial_cmp(m), Some(std::cmp::Ordering::Greater)))
                    .unwrap_or(true);
                if higher {
                    acc.max = Some(v.clone());
                }
            }
        }
    }

    // Global aggregation with no rows still yields one row of zero counts
    // (SQL semantics); grouped aggregation yields no rows.
    if order.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), vec![fresh; aggregates.len()]);
    }

    let mut out = Table::new(table.name.clone(), columns);
    for key in order {
        let accs = &groups[&key];
        let mut row = key.clone();
        for ((a, idx), acc) in aggregates.iter().zip(&agg_idx).zip(accs) {
            let value = match a.func {
                AggFunc::Count => Value::Int(acc.count as i64),
                AggFunc::Sum => {
                    let int_input = idx
                        .map(|i| table.columns()[i].value_type == ValueType::Int)
                        .unwrap_or(false);
                    if int_input {
                        Value::Int(acc.sum as i64)
                    } else {
                        Value::Float(acc.sum)
                    }
                }
                AggFunc::Avg => {
                    if acc.count == 0 {
                        Value::Float(0.0)
                    } else {
                        Value::Float(acc.sum / acc.count as f64)
                    }
                }
                AggFunc::Min => acc.min.clone().unwrap_or(Value::Int(0)),
                AggFunc::Max => acc.max.clone().unwrap_or(Value::Int(0)),
            };
            row.push(value);
        }
        out.push_row(row).map_err(|e| ExecError::Aggregate(e.to_string()))?;
    }
    Ok(out)
}

/// Filters rows of a table by a conjunction, matching constraint slots to
/// columns by qualified or bare name.
fn filter(table: &Table, predicate: &Conjunction) -> Result<Table, ExecError> {
    // Precompute: constrained slot → column index.
    let mut slot_idx = Vec::new();
    for slot in predicate.constrained_slots() {
        let idx =
            table.column_index(slot).ok_or_else(|| ExecError::UnknownColumn(slot.to_string()))?;
        slot_idx.push((slot.to_string(), idx));
    }
    let mut out = Table::new(table.name.clone(), table.columns().to_vec());
    for row in table.rows() {
        let assignment: BTreeMap<String, Value> =
            slot_idx.iter().map(|(s, i)| (s.clone(), row[*i].clone())).collect();
        if predicate.matches(&assignment) {
            out.push_row(row.clone()).expect("schema copied from source");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::plan;
    use infosleuth_ontology::ValueType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut patient = Table::new(
            "patient",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("name", ValueType::Str),
                Column::new("age", ValueType::Int),
            ],
        );
        patient.push_row(vec![Value::Int(1), Value::str("ann"), Value::Int(50)]).unwrap();
        patient.push_row(vec![Value::Int(2), Value::str("bob"), Value::Int(30)]).unwrap();
        patient.push_row(vec![Value::Int(3), Value::str("cyd"), Value::Int(70)]).unwrap();
        cat.insert(patient);
        let mut diag = Table::new(
            "diagnosis",
            vec![Column::new("patient_id", ValueType::Int), Column::new("code", ValueType::Str)],
        );
        diag.push_row(vec![Value::Int(1), Value::str("40W")]).unwrap();
        diag.push_row(vec![Value::Int(3), Value::str("12K")]).unwrap();
        diag.push_row(vec![Value::Int(3), Value::str("40W")]).unwrap();
        cat.insert(diag);
        cat
    }

    fn run(sql: &str) -> Table {
        execute(&plan(&parse_select(sql).unwrap()), &catalog()).unwrap()
    }

    #[test]
    fn scan_qualifies_columns() {
        let t = run("select * from patient");
        assert_eq!(t.len(), 3);
        assert_eq!(t.columns()[0].name, "patient.id");
    }

    #[test]
    fn where_filters_rows() {
        let t = run("select * from patient where age between 40 and 75");
        assert_eq!(t.len(), 2);
        let t = run("select * from patient where name = 'bob'");
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "age"), Some(&Value::Int(30)));
    }

    #[test]
    fn projection_narrows_schema() {
        let t = run("select name from patient where age > 40");
        assert_eq!(t.columns().len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hash_join_matches_keys() {
        let t = run("select * from patient join diagnosis on patient.id = diagnosis.patient_id");
        assert_eq!(t.len(), 3); // ann x 1, cyd x 2
        assert_eq!(t.columns().len(), 5);
        // Filter on joined result.
        let t =
            run("select name from patient join diagnosis on patient.id = diagnosis.patient_id \
             where code = '40W'");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_condition_order_is_flexible() {
        let t = run("select * from patient join diagnosis on diagnosis.patient_id = patient.id");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn union_deduplicates() {
        let t = run("select name from patient union select name from patient");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let stmt = parse_select("select name from patient union select * from patient").unwrap();
        let err = execute(&plan(&stmt), &catalog()).unwrap_err();
        assert!(matches!(err, ExecError::UnionArity { left: 1, right: 3 }));
    }

    #[test]
    fn global_aggregates() {
        let t = run("select count(*), sum(age), avg(age), min(age), max(age) from patient");
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "count(*)"), Some(&Value::Int(3)));
        assert_eq!(t.value(0, "sum(age)"), Some(&Value::Int(150)));
        assert_eq!(t.value(0, "avg(age)"), Some(&Value::Float(50.0)));
        assert_eq!(t.value(0, "min(age)"), Some(&Value::Int(30)));
        assert_eq!(t.value(0, "max(age)"), Some(&Value::Int(70)));
    }

    #[test]
    fn grouped_aggregates() {
        let t = run("select code, count(*) from diagnosis group by code");
        assert_eq!(t.len(), 2); // 40W, 12K
        let w = (0..t.len())
            .find(|&i| t.value(i, "code") == Some(&Value::str("40W")))
            .expect("40W group present");
        assert_eq!(t.value(w, "count(*)"), Some(&Value::Int(2)));
    }

    #[test]
    fn aggregate_after_filter() {
        let t = run("select count(*) from patient where age > 40");
        assert_eq!(t.value(0, "count(*)"), Some(&Value::Int(2)));
    }

    #[test]
    fn empty_global_aggregate_returns_zero_row() {
        let t = run("select count(*) from patient where age > 999");
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "count(*)"), Some(&Value::Int(0)));
        // Grouped: no groups at all.
        let t = run("select name, count(*) from patient where age > 999 group by name");
        assert!(t.is_empty());
    }

    #[test]
    fn aggregate_type_errors() {
        let stmt = parse_select("select sum(name) from patient").unwrap();
        assert!(matches!(execute(&plan(&stmt), &catalog()), Err(ExecError::Aggregate(_))));
        let stmt = parse_select("select count(height) from patient").unwrap();
        assert!(matches!(execute(&plan(&stmt), &catalog()), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn unknown_class_and_column_errors() {
        let stmt = parse_select("select * from ghosts").unwrap();
        assert!(matches!(execute(&plan(&stmt), &catalog()), Err(ExecError::UnknownClass(_))));
        let stmt = parse_select("select height from patient").unwrap();
        assert!(matches!(execute(&plan(&stmt), &catalog()), Err(ExecError::UnknownColumn(_))));
        let stmt = parse_select("select * from patient where height = 1").unwrap();
        assert!(matches!(execute(&plan(&stmt), &catalog()), Err(ExecError::UnknownColumn(_))));
    }
}
