//! Tokenizer and recursive-descent parser for the SQL 2.0 subset.

use crate::ast::{AggFunc, Aggregate, JoinClause, Projection, SelectStmt};
use infosleuth_constraint::{Conjunction, Predicate, Value};
use std::fmt;

/// Error produced when a query cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Op(String),
    Star,
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, SqlError> {
    let b = src.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    let err = |pos: usize, m: &str| SqlError { message: m.into(), position: pos };
    while pos < b.len() {
        let start = pos;
        match b[pos] {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'*' => {
                pos += 1;
                out.push((Tok::Star, start));
            }
            b'(' => {
                pos += 1;
                out.push((Tok::LParen, start));
            }
            b')' => {
                pos += 1;
                out.push((Tok::RParen, start));
            }
            b',' => {
                pos += 1;
                out.push((Tok::Comma, start));
            }
            b'\'' => {
                pos += 1;
                let s = pos;
                while pos < b.len() && b[pos] != b'\'' {
                    pos += 1;
                }
                if pos >= b.len() {
                    return Err(err(start, "unterminated string literal"));
                }
                let text = std::str::from_utf8(&b[s..pos])
                    .map_err(|_| err(s, "invalid utf-8"))?
                    .to_string();
                pos += 1;
                out.push((Tok::Str(text), start));
            }
            b'=' => {
                pos += 1;
                out.push((Tok::Op("=".into()), start));
            }
            b'<' | b'>' | b'!' => {
                let mut op = (b[pos] as char).to_string();
                pos += 1;
                if pos < b.len() && (b[pos] == b'=' || b[pos] == b'>') {
                    op.push(b[pos] as char);
                    pos += 1;
                }
                if op == "!" {
                    return Err(err(start, "expected '=' after '!'"));
                }
                let op = if op == "<>" { "!=".into() } else { op };
                out.push((Tok::Op(op), start));
            }
            b'0'..=b'9' | b'-' => {
                let s = pos;
                pos += 1;
                let mut is_float = false;
                while pos < b.len() {
                    match b[pos] {
                        b'0'..=b'9' => pos += 1,
                        b'.' if !is_float && pos + 1 < b.len() && b[pos + 1].is_ascii_digit() => {
                            is_float = true;
                            pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&b[s..pos]).expect("ascii number");
                if is_float {
                    out.push((Tok::Float(text.parse().map_err(|_| err(s, "bad float"))?), start));
                } else {
                    out.push((Tok::Int(text.parse().map_err(|_| err(s, "bad int"))?), start));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = pos;
                // Identifiers allow dots for qualification: patient.age
                while pos < b.len()
                    && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_' || b[pos] == b'.')
                {
                    pos += 1;
                }
                let text = std::str::from_utf8(&b[s..pos]).expect("ascii ident").to_string();
                out.push((Tok::Ident(text), start));
            }
            other => return Err(err(pos, &format!("unexpected character {:?}", other as char))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(t, _)| t.clone());
        self.idx += 1;
        t
    }

    fn pos(&self) -> usize {
        self.toks.get(self.idx).map(|(_, p)| *p).unwrap_or(usize::MAX)
    }

    fn err(&self, m: impl Into<String>) -> SqlError {
        SqlError { message: m.into(), position: self.pos() }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.peek_kw(kw) {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn value(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            _ => Err(self.err("expected literal value")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("select")?;
        // Select list: `*`, or columns and aggregates.
        let mut projections = Vec::new();
        let mut aggregates = Vec::new();
        if matches!(self.peek(), Some(Tok::Star)) {
            self.next();
        } else {
            loop {
                // `func(col)` / `func(*)` when the name is an aggregate
                // function followed by '('.
                let is_agg = matches!(
                    (self.peek(), self.toks.get(self.idx + 1).map(|(t, _)| t)),
                    (Some(Tok::Ident(name)), Some(Tok::LParen))
                        if AggFunc::parse(name).is_some()
                );
                if is_agg {
                    let func = match self.next() {
                        Some(Tok::Ident(name)) => {
                            AggFunc::parse(&name).expect("checked by lookahead")
                        }
                        _ => unreachable!("lookahead saw an identifier"),
                    };
                    self.next(); // '('
                    let column = if matches!(self.peek(), Some(Tok::Star)) {
                        self.next();
                        if func != AggFunc::Count {
                            return Err(self.err("only count(*) takes '*'"));
                        }
                        None
                    } else {
                        Some(self.ident()?)
                    };
                    match self.next() {
                        Some(Tok::RParen) => {}
                        _ => return Err(self.err("expected ')'")),
                    }
                    aggregates.push(Aggregate { func, column });
                } else {
                    projections.push(Projection { column: self.ident()? });
                }
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect_kw("from")?;
        let from = self.ident()?;
        // Joins.
        let mut joins = Vec::new();
        while self.peek_kw("join") {
            self.next();
            let table = self.ident()?;
            self.expect_kw("on")?;
            let left_col = self.ident()?;
            match self.next() {
                Some(Tok::Op(op)) if op == "=" => {}
                _ => return Err(self.err("expected '=' in join condition")),
            }
            let right_col = self.ident()?;
            joins.push(JoinClause { table, left_col, right_col });
        }
        // Where.
        let where_clause = if self.peek_kw("where") {
            self.next();
            self.conjunction()?
        } else {
            Conjunction::always()
        };
        // Group by.
        let mut group_by = Vec::new();
        if self.peek_kw("group") {
            self.next();
            self.expect_kw("by")?;
            loop {
                group_by.push(self.ident()?);
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        if !group_by.is_empty() && aggregates.is_empty() {
            return Err(self.err("GROUP BY requires at least one aggregate"));
        }
        if !aggregates.is_empty() {
            // Plain projected columns must be grouping columns.
            for p in &projections {
                if !group_by.contains(&p.column) {
                    return Err(self.err(format!("column '{}' must appear in GROUP BY", p.column)));
                }
            }
        }
        // Union.
        let union = if self.peek_kw("union") {
            self.next();
            Some(Box::new(self.select()?))
        } else {
            None
        };
        Ok(SelectStmt { projections, aggregates, group_by, from, joins, where_clause, union })
    }

    fn conjunction(&mut self) -> Result<Conjunction, SqlError> {
        let mut preds = vec![self.predicate()?];
        while self.peek_kw("and") {
            self.next();
            preds.push(self.predicate()?);
        }
        Ok(Conjunction::from_predicates(preds))
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        // Optional parentheses around a single predicate.
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next();
            let p = self.predicate()?;
            match self.next() {
                Some(Tok::RParen) => return Ok(p),
                _ => return Err(self.err("expected ')'")),
            }
        }
        let column = self.ident()?;
        match self.peek().cloned() {
            Some(Tok::Op(op)) => {
                self.next();
                let v = self.value()?;
                Ok(match op.as_str() {
                    "=" => Predicate::eq(column, v),
                    "!=" => Predicate::ne(column, v),
                    "<" => Predicate::lt(column, v),
                    "<=" => Predicate::le(column, v),
                    ">" => Predicate::gt(column, v),
                    ">=" => Predicate::ge(column, v),
                    other => return Err(self.err(format!("unknown operator '{other}'"))),
                })
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("between") => {
                self.next();
                let lo = self.value()?;
                self.expect_kw("and")?;
                let hi = self.value()?;
                Ok(Predicate::between(column, lo, hi))
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("in") => {
                self.next();
                Ok(Predicate::is_in(column, self.value_list()?))
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("not") => {
                self.next();
                self.expect_kw("in")?;
                Ok(Predicate::not_in(column, self.value_list()?))
            }
            _ => Err(self.err("expected comparison in WHERE clause")),
        }
    }

    fn value_list(&mut self) -> Result<Vec<Value>, SqlError> {
        match self.next() {
            Some(Tok::LParen) => {}
            _ => return Err(self.err("expected '('")),
        }
        let mut vals = vec![self.value()?];
        loop {
            match self.next() {
                Some(Tok::Comma) => vals.push(self.value()?),
                Some(Tok::RParen) => break,
                _ => return Err(self.err("expected ',' or ')'")),
            }
        }
        Ok(vals)
    }
}

/// Parses a `SELECT` statement (with optional `JOIN`/`WHERE`/`UNION`).
pub fn parse_select(src: &str) -> Result<SelectStmt, SqlError> {
    let toks = lex(src)?;
    let mut p = P { toks, idx: 0 };
    let stmt = p.select()?;
    if p.idx != p.toks.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::Value;

    #[test]
    fn parses_the_paper_query() {
        let s = parse_select("select * from C2").unwrap();
        assert!(s.is_star());
        assert_eq!(s.from, "C2");
        assert!(s.joins.is_empty());
        assert!(s.where_clause.is_trivial());
        assert!(s.union.is_none());
    }

    #[test]
    fn parses_projections() {
        let s = parse_select("select id, name from patient").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.projections[0].column, "id");
    }

    #[test]
    fn parses_where_conjunction() {
        let s = parse_select(
            "select * from patient where age between 25 and 65 and diagnosis_code = '40W'",
        )
        .unwrap();
        assert!(s.where_clause.domain("age").contains(&Value::Int(30)));
        assert!(s.where_clause.domain("diagnosis_code").contains(&Value::str("40W")));
    }

    #[test]
    fn parses_parenthesized_predicates() {
        let s = parse_select("select * from p where (age >= 10) and (age <= 20)").unwrap();
        assert!(s.where_clause.domain("age").contains(&Value::Int(15)));
        assert!(!s.where_clause.domain("age").contains(&Value::Int(25)));
    }

    #[test]
    fn parses_join() {
        let s = parse_select(
            "select * from patient join diagnosis on patient.id = diagnosis.patient_id",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table, "diagnosis");
        assert_eq!(s.joins[0].left_col, "patient.id");
        assert_eq!(s.tables(), vec!["patient", "diagnosis"]);
    }

    #[test]
    fn parses_union_chain() {
        let s = parse_select("select * from C2a union select * from C2b union select * from C2")
            .unwrap();
        assert_eq!(s.tables(), vec!["C2a", "C2b", "C2"]);
        assert!(s.union.as_ref().unwrap().union.is_some());
    }

    #[test]
    fn parses_in_and_not_in() {
        let s = parse_select("select * from provider where city in ('Dallas', 'Houston')").unwrap();
        assert!(s.where_clause.domain("city").contains(&Value::str("Dallas")));
        let s = parse_select("select * from provider where city not in ('Austin')").unwrap();
        assert!(!s.where_clause.domain("city").contains(&Value::str("Austin")));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let s = parse_select("SELECT * FROM C2 WHERE a BETWEEN 1 AND 2 UNION SELECT * FROM C3")
            .unwrap();
        assert_eq!(s.tables(), vec!["C2", "C3"]);
    }

    #[test]
    fn negative_and_float_literals() {
        let s = parse_select("select * from t where x > -5 and y <= 2.5").unwrap();
        assert!(s.where_clause.domain("x").contains(&Value::Int(0)));
        assert!(s.where_clause.domain("y").contains(&Value::Float(2.5)));
    }

    #[test]
    fn parses_aggregates() {
        let s = parse_select("select count(*) from patient").unwrap();
        assert!(s.has_aggregates());
        assert_eq!(s.aggregates[0].func, AggFunc::Count);
        assert_eq!(s.aggregates[0].column, None);
        let s = parse_select(
            "select procedure, count(*), avg(cost), max(days) from hospital_stay              group by procedure",
        )
        .unwrap();
        assert_eq!(s.aggregates.len(), 3);
        assert_eq!(s.group_by, vec!["procedure"]);
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn rejects_malformed_aggregates() {
        assert!(parse_select("select sum(*) from t").is_err());
        assert!(parse_select("select count(* from t").is_err());
        assert!(parse_select("select a from t group by a").is_err()); // no aggregate
        assert!(parse_select("select a, count(*) from t").is_err()); // a not grouped
        assert!(parse_select("select count(*) from t group by").is_err());
    }

    #[test]
    fn count_is_not_reserved_as_a_column_name() {
        // `count` without '(' parses as an ordinary column.
        let s = parse_select("select count from t").unwrap();
        assert_eq!(s.projections[0].column, "count");
        assert!(!s.has_aggregates());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_select("select from C2").is_err());
        assert!(parse_select("select * C2").is_err());
        assert!(parse_select("select * from").is_err());
        assert!(parse_select("select * from C2 where").is_err());
        assert!(parse_select("select * from C2 where a ~ 1").is_err());
        assert!(parse_select("select * from C2 extra").is_err());
        assert!(parse_select("select * from a join b on x < y").is_err());
        assert!(parse_select("select * from t where s = 'oops").is_err());
    }
}
