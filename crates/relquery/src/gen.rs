//! Deterministic synthetic data generation.
//!
//! The paper's experiments ran over fabricated data ("there is no need for
//! real data" — §5.2). This generator produces class extents that *honour
//! advertised constraints*: a resource agent advertising `patient.age
//! between 43 and 75` gets rows whose ages lie in that interval, so
//! end-to-end queries observe the same containment the broker reasoned
//! about.

use crate::table::{Column, Row, Table};
use infosleuth_constraint::{Bound, Conjunction, Value};
use infosleuth_ontology::{Ontology, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for one generated table.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// Class to instantiate (with inherited slots).
    pub class: String,
    /// Number of rows.
    pub rows: usize,
    /// RNG seed — same seed, same table.
    pub seed: u64,
    /// Constraint the generated rows must satisfy (slot names may be bare
    /// or `class.slot`-qualified).
    pub constraint: Conjunction,
}

impl GenSpec {
    pub fn new(class: impl Into<String>, rows: usize, seed: u64) -> Self {
        GenSpec { class: class.into(), rows, seed, constraint: Conjunction::always() }
    }

    pub fn with_constraint(mut self, c: Conjunction) -> Self {
        self.constraint = c;
        self
    }
}

/// Generates a table for a class of an ontology per the spec.
///
/// Key slots receive sequential unique values (`1..=rows` for integers,
/// `"k1".."kN"` for strings) so vertical fragments can be rejoined. Other
/// slots are sampled uniformly inside the spec constraint's domain when one
/// is present, otherwise from small default domains.
pub fn generate_table(ontology: &Ontology, spec: &GenSpec) -> Result<Table, String> {
    let slots = ontology
        .all_slots(&spec.class)
        .map_err(|e| format!("cannot generate {}: {e}", spec.class))?;
    let columns: Vec<Column> =
        slots.iter().map(|s| Column::new(s.name.clone(), s.value_type)).collect();
    let mut table = Table::new(spec.class.clone(), columns);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for i in 0..spec.rows {
        let mut row: Row = Vec::with_capacity(slots.len());
        for slot in &slots {
            let v = if slot.is_key {
                match slot.value_type {
                    ValueType::Int => Value::Int(i as i64 + 1),
                    ValueType::Str => Value::str(format!("k{}", i + 1)),
                    ValueType::Float => Value::Float(i as f64 + 1.0),
                    ValueType::Bool => Value::Bool(i % 2 == 0),
                }
            } else {
                sample_slot(&mut rng, &spec.class, &slot.name, slot.value_type, &spec.constraint)
            };
            row.push(v);
        }
        table.push_row(row).map_err(|e| e.to_string())?;
    }
    Ok(table)
}

/// Samples one value for a slot, respecting the constraint's domain for
/// that slot (looked up under both `slot` and `class.slot`).
fn sample_slot(
    rng: &mut StdRng,
    class: &str,
    slot: &str,
    vt: ValueType,
    constraint: &Conjunction,
) -> Value {
    let qualified = format!("{class}.{slot}");
    let dom = {
        let d = constraint.domain(&qualified);
        if d == infosleuth_constraint::SlotDomain::full() {
            constraint.domain(slot)
        } else {
            d
        }
    };
    // Finite allow-set: pick a member.
    if let Some(allowed) = &dom.allowed {
        let candidates: Vec<&Value> = allowed
            .iter()
            .filter(|v| dom.range.contains(v) && !dom.excluded.contains(*v))
            .collect();
        if !candidates.is_empty() {
            return candidates[rng.random_range(0..candidates.len())].clone();
        }
    }
    match vt {
        ValueType::Int => {
            let lo = match &dom.range.lo {
                Bound::Incl(Value::Int(i)) => *i,
                Bound::Excl(Value::Int(i)) => i + 1,
                _ => 0,
            };
            let hi = match &dom.range.hi {
                Bound::Incl(Value::Int(i)) => *i,
                Bound::Excl(Value::Int(i)) => i - 1,
                _ => lo + 999,
            };
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (lo, lo) };
            // Retry around excluded points; give up after a few tries.
            for _ in 0..8 {
                let v = Value::Int(rng.random_range(lo..=hi));
                if !dom.excluded.contains(&v) {
                    return v;
                }
            }
            Value::Int(lo)
        }
        ValueType::Float => {
            let lo = match &dom.range.lo {
                Bound::Incl(v) | Bound::Excl(v) => match v {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    _ => 0.0,
                },
                Bound::Unbounded => 0.0,
            };
            let hi = match &dom.range.hi {
                Bound::Incl(v) | Bound::Excl(v) => match v {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    _ => lo + 1000.0,
                },
                Bound::Unbounded => lo + 1000.0,
            };
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (lo, lo + 1.0) };
            Value::Float(rng.random_range(lo..=hi))
        }
        ValueType::Str => {
            // Point constraint: honour it.
            if let Some(p) = dom.range.as_point() {
                return p.clone();
            }
            Value::str(format!("s{}", rng.random_range(0..1000)))
        }
        ValueType::Bool => Value::Bool(rng.random_bool(0.5)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::Predicate;
    use infosleuth_ontology::healthcare_ontology;

    #[test]
    fn generates_requested_rows_with_sequential_keys() {
        let o = healthcare_ontology();
        let t = generate_table(&o, &GenSpec::new("patient", 10, 42)).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.value(0, "id"), Some(&Value::Int(1)));
        assert_eq!(t.value(9, "id"), Some(&Value::Int(10)));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let o = healthcare_ontology();
        let a = generate_table(&o, &GenSpec::new("patient", 20, 7)).unwrap();
        let b = generate_table(&o, &GenSpec::new("patient", 20, 7)).unwrap();
        assert_eq!(a, b);
        let c = generate_table(&o, &GenSpec::new("patient", 20, 8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn honours_range_constraints() {
        let o = healthcare_ontology();
        let spec =
            GenSpec::new("patient", 50, 1).with_constraint(Conjunction::from_predicates(vec![
                Predicate::between("patient.age", 43, 75),
            ]));
        let t = generate_table(&o, &spec).unwrap();
        for i in 0..t.len() {
            let age = match t.value(i, "age").unwrap() {
                Value::Int(a) => *a,
                other => panic!("age should be int, got {other}"),
            };
            assert!((43..=75).contains(&age), "age {age} outside advertised range");
        }
    }

    #[test]
    fn honours_set_constraints() {
        let o = healthcare_ontology();
        let spec =
            GenSpec::new("provider", 30, 2).with_constraint(Conjunction::from_predicates(vec![
                Predicate::is_in("provider.city", ["Dallas", "Houston"]),
            ]));
        let t = generate_table(&o, &spec).unwrap();
        for i in 0..t.len() {
            let city = t.value(i, "city").unwrap();
            assert!(
                city == &Value::str("Dallas") || city == &Value::str("Houston"),
                "unexpected city {city}"
            );
        }
    }

    #[test]
    fn unknown_class_errors() {
        let o = healthcare_ontology();
        assert!(generate_table(&o, &GenSpec::new("ghost", 1, 0)).is_err());
    }
}
