//! Property tests for the relational substrate: algebraic laws the MRQ
//! agent's assembly logic depends on.

use infosleuth_constraint::{Conjunction, Predicate, Value};
use infosleuth_ontology::ValueType;
use infosleuth_relquery::{execute, parse_select, plan, Catalog, Column, LogicalPlan, Table};
use proptest::prelude::*;

/// A random small C-style table: columns (id, a, b).
fn arb_table(name: &'static str) -> impl Strategy<Value = Table> {
    proptest::collection::vec((0i64..20, -10i64..10, "[a-c]{1}"), 0..12).prop_map(move |rows| {
        let mut t = Table::new(
            name,
            vec![
                Column::new("id", ValueType::Int),
                Column::new("a", ValueType::Int),
                Column::new("b", ValueType::Str),
            ],
        );
        for (id, a, b) in rows {
            t.push_row(vec![Value::Int(id), Value::Int(a), Value::Str(b)]).expect("schema matches");
        }
        t
    })
}

fn catalog(tables: Vec<Table>) -> Catalog {
    let mut c = Catalog::new();
    for t in tables {
        c.insert(t);
    }
    c
}

fn scan(class: &str) -> LogicalPlan {
    LogicalPlan::Scan { class: class.to_string() }
}

fn select(pred: Conjunction, input: LogicalPlan) -> LogicalPlan {
    LogicalPlan::Select { predicate: pred, input: Box::new(input) }
}

fn project(cols: &[&str], input: LogicalPlan) -> LogicalPlan {
    LogicalPlan::Project {
        columns: cols.iter().map(|c| c.to_string()).collect(),
        input: Box::new(input),
    }
}

fn union(l: LogicalPlan, r: LogicalPlan) -> LogicalPlan {
    LogicalPlan::Union { left: Box::new(l), right: Box::new(r) }
}

proptest! {
    /// σ_p(σ_q(T)) == σ_q(σ_p(T)): selection commutes.
    #[test]
    fn selections_commute(t in arb_table("T"), lo in -10i64..10, hi in -10i64..10) {
        let cat = catalog(vec![t]);
        let p = Conjunction::from_predicates(vec![Predicate::ge("a", lo)]);
        let q = Conjunction::from_predicates(vec![Predicate::le("a", hi)]);
        let pq = execute(&select(p.clone(), select(q.clone(), scan("T"))), &cat).unwrap();
        let qp = execute(&select(q, select(p, scan("T"))), &cat).unwrap();
        prop_assert_eq!(pq.rows(), qp.rows());
    }

    /// Selection then projection == projection then selection when the
    /// predicate only uses projected columns.
    #[test]
    fn select_project_commute(t in arb_table("T"), lo in -10i64..10) {
        let cat = catalog(vec![t]);
        let p = Conjunction::from_predicates(vec![Predicate::ge("a", lo)]);
        let sp = execute(&select(p.clone(), project(&["id", "a"], scan("T"))), &cat).unwrap();
        let ps = execute(&project(&["id", "a"], select(p, scan("T"))), &cat).unwrap();
        prop_assert_eq!(sp.rows(), ps.rows());
    }

    /// Union is commutative and idempotent up to row sets.
    #[test]
    fn union_laws(a in arb_table("A"), b in arb_table("B")) {
        let cat = catalog(vec![a, b]);
        let ab = execute(&union(scan("A"), scan("B")), &cat).unwrap();
        let ba = execute(&union(scan("B"), scan("A")), &cat).unwrap();
        let mut ab_rows: Vec<_> = ab.rows().to_vec();
        let mut ba_rows: Vec<_> = ba.rows().to_vec();
        ab_rows.sort();
        ba_rows.sort();
        prop_assert_eq!(ab_rows, ba_rows);
        // Idempotence: A ∪ A == distinct(A).
        let aa = execute(&union(scan("A"), scan("A")), &cat).unwrap();
        let mut distinct: Vec<_> = cat.table("A").unwrap().rows().to_vec();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(aa.len(), distinct.len());
    }

    /// Executing a filter equals filtering executed rows.
    #[test]
    fn selection_is_row_filter(t in arb_table("T"), lo in -10i64..10) {
        let cat = catalog(vec![t.clone()]);
        let p = Conjunction::from_predicates(vec![Predicate::ge("a", lo)]);
        let result = execute(&select(p, scan("T")), &cat).unwrap();
        let expected: Vec<_> = t
            .rows()
            .iter()
            .filter(|r| matches!(r[1], Value::Int(a) if a >= lo))
            .cloned()
            .collect();
        prop_assert_eq!(result.rows(), expected.as_slice());
    }

    /// Join with itself on the key returns at least every distinct key
    /// pairing (reflexive join sanity; duplicate ids multiply).
    #[test]
    fn self_join_on_key(t in arb_table("T")) {
        let cat = catalog(vec![t.clone()]);
        let j = LogicalPlan::Join {
            left: Box::new(scan("T")),
            right: Box::new(scan("T")),
            left_col: "T.id".to_string(),
            right_col: "T.id".to_string(),
        };
        let result = execute(&j, &cat).unwrap();
        // Row count = Σ over ids of (count(id))².
        use std::collections::HashMap;
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for r in t.rows() {
            if let Value::Int(id) = r[0] {
                *counts.entry(id).or_default() += 1;
            }
        }
        let expected: usize = counts.values().map(|c| c * c).sum();
        prop_assert_eq!(result.len(), expected);
    }

    /// SQL text → parse → plan → execute agrees with hand-built plans.
    #[test]
    fn sql_text_matches_hand_built_plan(t in arb_table("T"), lo in -10i64..10) {
        let cat = catalog(vec![t]);
        let sql = format!("select id, a from T where a >= {lo}");
        let from_text = execute(&plan(&parse_select(&sql).unwrap()), &cat).unwrap();
        let hand = execute(
            &project(&["id", "a"], select(
                Conjunction::from_predicates(vec![Predicate::ge("a", lo)]),
                scan("T"),
            )),
            &cat,
        )
        .unwrap();
        prop_assert_eq!(from_text.rows(), hand.rows());
    }
}
