//! Conversation-protocol specifications and their static analysis.
//!
//! InfoSleuth agents interoperate through KQML *conversations*: an opening
//! performative (`advertise`, `subscribe`, `ask-all`, …) carrying a
//! `:reply-with` key, followed by replies carrying the matching
//! `:in-reply-to`, until the conversation reaches a terminal
//! acknowledgement (`tell`, `reply`, `sorry`, `error`). A
//! [`ProtocolSpec`] describes one such conversation family as a finite
//! state machine over performatives; [`analyze_protocol`] statically
//! checks a spec for the IS04x defect classes (undefined/unreachable
//! states, nondeterministic transitions, undeclared or unhandled
//! performatives, obligations that can never be discharged, dead-end
//! states); and [`standard_protocols`] ships the table describing the
//! broker's actual conversation behaviour, which
//! [`crate::conformance::ConformanceMonitor`] interprets at runtime.
//!
//! Specs can also be written as s-expressions (see [`parse_protocol`])
//! so the lint corpus can pin each diagnostic with a fixture:
//!
//! ```text
//! (protocol advertise
//!   (states start awaiting done)
//!   (final done)
//!   (declares advertise tell sorry)
//!   (t start advertise awaiting (opens reply))
//!   (t awaiting tell done (discharges reply))
//!   (t awaiting sorry done (discharges reply)))
//! ```
//!
//! Trigger matching is *most-specific-wins*: a trigger may name a bare
//! performative (`tell`) or refine it with a content head
//! (`tell/sub-delta`, matching a `tell` whose content is a list headed by
//! the atom `sub-delta`). A refined trigger takes precedence over a bare
//! one from the same state, so the pair is deterministic; two transitions
//! with *identical* triggers from one state are IS042.

use crate::diag::{Code, Diagnostic, Report, Span};
use infosleuth_kqml::{Message, SExpr};
use std::collections::{BTreeMap, BTreeSet};

/// Effect a transition has on the standing-subscription registry the
/// runtime monitor keeps alongside conversations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubEffect {
    /// The transition acknowledges a subscription: its key becomes active.
    Activate,
    /// The transition acknowledges an unsubscribe: the key closes.
    Close,
    /// The transition is a `sub-delta` notification on the key.
    Delta,
}

/// What a message must look like to take a transition: a performative,
/// optionally refined by the head atom of its content list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Trigger {
    pub performative: String,
    pub content_head: Option<String>,
}

impl Trigger {
    pub fn new(performative: impl Into<String>) -> Self {
        Trigger { performative: performative.into(), content_head: None }
    }

    pub fn with_head(performative: impl Into<String>, head: impl Into<String>) -> Self {
        Trigger { performative: performative.into(), content_head: Some(head.into()) }
    }

    /// Parses `perf` or `perf/content-head`.
    pub fn parse(s: &str) -> Self {
        match s.split_once('/') {
            Some((p, h)) => Trigger::with_head(p, h),
            None => Trigger::new(s),
        }
    }

    /// Does `msg` satisfy this trigger? Bare triggers match any content;
    /// refined triggers additionally require the content head atom.
    pub fn matches(&self, msg: &Message) -> bool {
        if msg.performative.as_str() != self.performative {
            return false;
        }
        match &self.content_head {
            None => true,
            Some(head) => content_head(msg).is_some_and(|h| h == head),
        }
    }

    pub fn render(&self) -> String {
        match &self.content_head {
            Some(h) => format!("{}/{}", self.performative, h),
            None => self.performative.clone(),
        }
    }
}

/// The head atom of a message's content list, if any.
pub fn content_head(msg: &Message) -> Option<&str> {
    msg.content()?.as_list()?.first()?.as_atom()
}

/// One edge of the conversation machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoTransition {
    pub from: String,
    pub on: Trigger,
    pub to: String,
    /// Obligation label this transition opens (e.g. `reply`).
    pub opens: Option<String>,
    /// Obligation label this transition discharges.
    pub discharges: Option<String>,
    pub sub: Option<SubEffect>,
    /// Byte span in the s-expression source, when parsed from text.
    pub span: Option<Span>,
}

impl ProtoTransition {
    pub fn new(from: impl Into<String>, on: Trigger, to: impl Into<String>) -> Self {
        ProtoTransition {
            from: from.into(),
            on,
            to: to.into(),
            opens: None,
            discharges: None,
            sub: None,
            span: None,
        }
    }

    pub fn opens(mut self, obligation: impl Into<String>) -> Self {
        self.opens = Some(obligation.into());
        self
    }

    pub fn discharges(mut self, obligation: impl Into<String>) -> Self {
        self.discharges = Some(obligation.into());
        self
    }

    pub fn sub_effect(mut self, effect: SubEffect) -> Self {
        self.sub = Some(effect);
        self
    }
}

/// A declarative conversation protocol: named states (the first is
/// initial), final states, the performative vocabulary the protocol
/// claims to handle, and the transition table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    pub name: String,
    /// All states; `states[0]` is the initial state.
    pub states: Vec<String>,
    pub finals: Vec<String>,
    /// Performatives the protocol declares it participates in. Optional:
    /// when empty, IS043 is not checked.
    pub declares: Vec<String>,
    pub transitions: Vec<ProtoTransition>,
}

impl ProtocolSpec {
    pub fn new(name: impl Into<String>, states: &[&str], finals: &[&str]) -> Self {
        ProtocolSpec {
            name: name.into(),
            states: states.iter().map(|s| s.to_string()).collect(),
            finals: finals.iter().map(|s| s.to_string()).collect(),
            declares: Vec::new(),
            transitions: Vec::new(),
        }
    }

    pub fn declare(mut self, performatives: &[&str]) -> Self {
        self.declares.extend(performatives.iter().map(|s| s.to_string()));
        self
    }

    pub fn transition(mut self, t: ProtoTransition) -> Self {
        self.transitions.push(t);
        self
    }

    pub fn initial(&self) -> Option<&str> {
        self.states.first().map(String::as_str)
    }

    pub fn is_final(&self, state: &str) -> bool {
        self.finals.iter().any(|f| f == state)
    }

    /// Index of `state` in the state table.
    pub fn state_index(&self, state: &str) -> Option<usize> {
        self.states.iter().position(|s| s == state)
    }

    /// Performatives that can open a conversation of this protocol:
    /// triggers of transitions leaving the initial state.
    pub fn opening_performatives(&self) -> BTreeSet<&str> {
        let Some(init) = self.initial() else { return BTreeSet::new() };
        self.transitions
            .iter()
            .filter(|t| t.from == init)
            .map(|t| t.on.performative.as_str())
            .collect()
    }

    /// The transition a message takes from `state`, most-specific-wins:
    /// a trigger refined by content head beats a bare performative.
    pub fn step<'a>(&'a self, state: &str, msg: &Message) -> Option<&'a ProtoTransition> {
        let mut bare = None;
        for t in self.transitions.iter().filter(|t| t.from == state) {
            if t.on.matches(msg) {
                if t.on.content_head.is_some() {
                    return Some(t);
                }
                bare.get_or_insert(t);
            }
        }
        bare
    }

    /// Does any performative of the spec close a conversation (enter a
    /// final state)? Used by the runtime monitor to split IS053
    /// (duplicate ack) from IS050 (plain out-of-order traffic).
    pub fn is_closing_trigger(&self, msg: &Message) -> bool {
        self.transitions.iter().any(|t| self.is_final(&t.to) && t.on.matches(msg))
    }
}

/// Statically checks one protocol spec, reporting the IS04x family.
pub fn analyze_protocol(spec: &ProtocolSpec) -> Report {
    let mut report = Report::new(format!("protocol {}", spec.name));
    let states: BTreeSet<&str> = spec.states.iter().map(String::as_str).collect();

    if spec.states.is_empty() {
        report.push(Diagnostic::new(
            Code::UndefinedProtocolState,
            "protocol declares no states (no initial state exists)",
        ));
        return report.sorted();
    }

    // IS040 — every state a transition or final list names must exist.
    for t in &spec.transitions {
        for (role, name) in [("source", &t.from), ("target", &t.to)] {
            if !states.contains(name.as_str()) {
                let mut d = Diagnostic::new(
                    Code::UndefinedProtocolState,
                    format!(
                        "transition on `{}` names undeclared {role} state `{name}`",
                        t.on.render()
                    ),
                );
                if let Some(span) = t.span {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }
    for f in &spec.finals {
        if !states.contains(f.as_str()) {
            report.push(Diagnostic::new(
                Code::UndefinedProtocolState,
                format!("final-state list names undeclared state `{f}`"),
            ));
        }
    }

    // Forward reachability from the initial state (over declared states).
    let initial = spec.states[0].as_str();
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut frontier = vec![initial];
    while let Some(s) = frontier.pop() {
        if !reachable.insert(s) {
            continue;
        }
        for t in spec.transitions.iter().filter(|t| t.from == s) {
            if states.contains(t.to.as_str()) {
                frontier.push(t.to.as_str());
            }
        }
    }

    // IS041 — declared but unreachable states.
    for s in &spec.states {
        if !reachable.contains(s.as_str()) {
            report.push(Diagnostic::new(
                Code::UnreachableProtocolState,
                format!("state `{s}` is unreachable from initial state `{initial}`"),
            ));
        }
    }

    // IS042 — identical (state, trigger) pairs. Refined vs bare triggers
    // on the same performative are fine (most-specific-wins is
    // deterministic); exact duplicates are not.
    let mut seen: BTreeMap<(&str, String), usize> = BTreeMap::new();
    for (i, t) in spec.transitions.iter().enumerate() {
        let key = (t.from.as_str(), t.on.render());
        if let Some(&first) = seen.get(&key) {
            let mut d = Diagnostic::new(
                Code::NondeterministicTransition,
                format!(
                    "state `{}` has two transitions on `{}` (targets `{}` and `{}`)",
                    t.from,
                    t.on.render(),
                    spec.transitions[first].to,
                    t.to
                ),
            );
            if let Some(span) = t.span {
                d = d.with_span(span);
            }
            report.push(d);
        } else {
            seen.insert(key, i);
        }
    }

    // IS043 — declared performatives no transition ever consumes.
    for p in &spec.declares {
        if !spec.transitions.iter().any(|t| &t.on.performative == p) {
            report.push(Diagnostic::new(
                Code::UnhandledPerformative,
                format!("declared performative `{p}` is consumed by no transition"),
            ));
        }
    }

    // IS044 — obligations that open on a reachable path but can never be
    // discharged from the state the opening transition lands in.
    // Backward reachability: states from which some discharge-of-o
    // transition's source is reachable.
    let obligations: BTreeSet<&str> =
        spec.transitions.iter().filter_map(|t| t.opens.as_deref()).collect();
    for o in obligations {
        // States with a discharging transition for `o`.
        let mut can_discharge: BTreeSet<&str> = spec
            .transitions
            .iter()
            .filter(|t| t.discharges.as_deref() == Some(o))
            .map(|t| t.from.as_str())
            .collect();
        // Fixpoint: s can discharge if some transition leads to a state
        // that can.
        loop {
            let before = can_discharge.len();
            for t in &spec.transitions {
                if can_discharge.contains(t.to.as_str()) {
                    can_discharge.insert(t.from.as_str());
                }
            }
            if can_discharge.len() == before {
                break;
            }
        }
        for t in spec.transitions.iter().filter(|t| t.opens.as_deref() == Some(o)) {
            if reachable.contains(t.from.as_str()) && !can_discharge.contains(t.to.as_str()) {
                let mut d =
                    Diagnostic::new(
                        Code::UndischargeableObligation,
                        format!(
                        "obligation `{o}` opened by `{}` from state `{}` can never be discharged \
                         from state `{}`",
                        t.on.render(), t.from, t.to
                    ),
                    );
                if let Some(span) = t.span {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }

    // IS045 — reachable non-final states with no way out.
    for s in &spec.states {
        if reachable.contains(s.as_str())
            && !spec.is_final(s)
            && !spec.transitions.iter().any(|t| &t.from == s)
        {
            report.push(Diagnostic::new(
                Code::DeadEndProtocolState,
                format!("non-final state `{s}` has no outgoing transitions — conversations reaching it are stuck"),
            ));
        }
    }

    report.sorted()
}

/// Runs [`analyze_protocol`] over every spec and absorbs the findings
/// into one report (origin `protocol-table`).
pub fn analyze_protocol_table(specs: &[ProtocolSpec]) -> Report {
    let mut report = Report::new("protocol-table");
    for spec in specs {
        report.absorb(analyze_protocol(spec));
    }
    report.sorted()
}

/// The shipped conversation-protocol table: the conversations the broker
/// in `crates/broker` actually conducts, one spec per family. The static
/// pass keeps this table clean in CI; the conformance monitor interprets
/// it at runtime.
pub fn standard_protocols() -> Vec<ProtocolSpec> {
    let mutation = ProtocolSpec::new("mutation", &["start", "awaiting", "done"], &["done"])
        .declare(&["advertise", "update", "unadvertise", "tell", "sorry", "error"])
        .transition(
            ProtoTransition::new("start", Trigger::new("advertise"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("start", Trigger::new("update"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("start", Trigger::new("unadvertise"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("tell"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("error"), "done").discharges("reply"),
        );

    let ask = ProtocolSpec::new("ask", &["start", "awaiting", "done"], &["done"])
        .declare(&["ask-all", "ask-one", "recruit-all", "recruit-one", "reply", "sorry", "error"])
        .transition(
            ProtoTransition::new("start", Trigger::new("ask-all"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("start", Trigger::new("ask-one"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("start", Trigger::new("recruit-all"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("start", Trigger::new("recruit-one"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("reply"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("error"), "done").discharges("reply"),
        );

    // `broker-one` relays the answer of whichever agent the broker picked,
    // so any terminal performative may close it.
    let broker_one = ProtocolSpec::new("broker-one", &["start", "awaiting", "done"], &["done"])
        .declare(&["broker-one", "reply", "tell", "sorry", "error"])
        .transition(
            ProtoTransition::new("start", Trigger::new("broker-one"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("reply"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("tell"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("error"), "done").discharges("reply"),
        );

    // Subscription admission: the snapshot `sub-delta` tell reaches the
    // watcher *before* the ack tell reaches the requester; the plain tell
    // ack activates the standing key; `sorry`/`error` refuse admission.
    let subscribe = ProtocolSpec::new("subscribe", &["start", "awaiting", "done"], &["done"])
        .declare(&["subscribe", "tell", "sorry", "error"])
        .transition(
            ProtoTransition::new("start", Trigger::new("subscribe"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::with_head("tell", "sub-delta"), "awaiting")
                .sub_effect(SubEffect::Delta),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("tell"), "done")
                .discharges("reply")
                .sub_effect(SubEffect::Activate),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("error"), "done").discharges("reply"),
        );

    let unsubscribe = ProtocolSpec::new("unsubscribe", &["start", "awaiting", "done"], &["done"])
        .declare(&["unsubscribe", "tell", "sorry", "error"])
        .transition(
            ProtoTransition::new("start", Trigger::new("unsubscribe"), "awaiting").opens("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("tell"), "done")
                .discharges("reply")
                .sub_effect(SubEffect::Close),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("error"), "done").discharges("reply"),
        );

    let ping = ProtocolSpec::new("ping", &["start", "awaiting", "done"], &["done"])
        .declare(&["ping", "reply", "sorry"])
        .transition(ProtoTransition::new("start", Trigger::new("ping"), "awaiting").opens("reply"))
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("reply"), "done").discharges("reply"),
        )
        .transition(
            ProtoTransition::new("awaiting", Trigger::new("sorry"), "done").discharges("reply"),
        );

    vec![mutation, ask, broker_one, subscribe, unsubscribe, ping]
}

/// Parses one `(protocol name ...)` s-expression into a spec. Returns the
/// spec (possibly partial) plus a report of structural problems; a syntax
/// error yields `None` and an IS001 diagnostic.
pub fn parse_protocol(origin: &str, src: &str) -> (Option<ProtocolSpec>, Report) {
    let mut report = Report::new(origin);
    let expr = match SExpr::parse(src) {
        Ok(e) => e,
        Err(e) => {
            report.push(
                Diagnostic::new(
                    Code::SyntaxError,
                    format!("malformed s-expression: {}", e.message),
                )
                .with_span(Span::point(e.position.min(src.len().saturating_sub(1)))),
            );
            return (None, report);
        }
    };
    let Some(items) = expr.as_list() else {
        report.push(Diagnostic::new(Code::SyntaxError, "expected a (protocol ...) list"));
        return (None, report);
    };
    if items.first().and_then(SExpr::as_atom) != Some("protocol") {
        report.push(Diagnostic::new(Code::SyntaxError, "expected a (protocol ...) list"));
        return (None, report);
    }
    let Some(name) = items.get(1).and_then(SExpr::as_atom) else {
        report.push(Diagnostic::new(Code::SyntaxError, "protocol is missing its name atom"));
        return (None, report);
    };

    let mut spec = ProtocolSpec {
        name: name.to_string(),
        states: Vec::new(),
        finals: Vec::new(),
        declares: Vec::new(),
        transitions: Vec::new(),
    };
    for clause in &items[2..] {
        let Some(parts) = clause.as_list() else {
            report.push(Diagnostic::new(Code::SyntaxError, "protocol clause is not a list"));
            continue;
        };
        match parts.first().and_then(SExpr::as_atom) {
            Some("states") => {
                spec.states.extend(parts[1..].iter().filter_map(SExpr::as_atom).map(String::from));
            }
            Some("final") => {
                spec.finals.extend(parts[1..].iter().filter_map(SExpr::as_atom).map(String::from));
            }
            Some("declares") => {
                spec.declares
                    .extend(parts[1..].iter().filter_map(SExpr::as_atom).map(String::from));
            }
            Some("t") => {
                let (Some(from), Some(on), Some(to)) = (
                    parts.get(1).and_then(SExpr::as_atom),
                    parts.get(2).and_then(SExpr::as_atom),
                    parts.get(3).and_then(SExpr::as_atom),
                ) else {
                    report.push(Diagnostic::new(
                        Code::SyntaxError,
                        "transition needs (t from trigger to ...)",
                    ));
                    continue;
                };
                let mut t = ProtoTransition::new(from, Trigger::parse(on), to);
                for ann in &parts[4..] {
                    let Some(pair) = ann.as_list() else {
                        report.push(Diagnostic::new(
                            Code::SyntaxError,
                            "transition annotation is not a list",
                        ));
                        continue;
                    };
                    match (
                        pair.first().and_then(SExpr::as_atom),
                        pair.get(1).and_then(SExpr::as_atom),
                    ) {
                        (Some("opens"), Some(o)) => t.opens = Some(o.to_string()),
                        (Some("discharges"), Some(o)) => t.discharges = Some(o.to_string()),
                        (Some("sub"), Some("activate")) => t.sub = Some(SubEffect::Activate),
                        (Some("sub"), Some("close")) => t.sub = Some(SubEffect::Close),
                        (Some("sub"), Some("delta")) => t.sub = Some(SubEffect::Delta),
                        _ => report.push(Diagnostic::new(
                            Code::SyntaxError,
                            format!("unknown transition annotation in protocol `{name}`"),
                        )),
                    }
                }
                spec.transitions.push(t);
            }
            _ => report.push(Diagnostic::new(
                Code::SyntaxError,
                "unknown protocol clause (expected states/final/declares/t)",
            )),
        }
    }
    (Some(spec), report)
}

/// Parses a `.proto` source and runs the static pass over it: structural
/// problems and IS04x findings land in one report.
pub fn analyze_protocol_source(origin: &str, src: &str) -> Report {
    let (spec, mut report) = parse_protocol(origin, src);
    if let Some(spec) = spec {
        report.absorb(analyze_protocol(&spec));
    }
    report.sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_kqml::Performative;

    fn msg(p: Performative) -> Message {
        Message::new(p)
    }

    #[test]
    fn standard_table_is_clean() {
        let report = analyze_protocol_table(&standard_protocols());
        assert!(report.is_clean(), "{}", report.render_human(None));
    }

    #[test]
    fn trigger_refinement_is_most_specific_wins() {
        let specs = standard_protocols();
        let sub = specs.iter().find(|s| s.name == "subscribe").unwrap();
        let delta = msg(Performative::Tell)
            .with_content(SExpr::list([SExpr::atom("sub-delta"), SExpr::atom("x")]));
        let ack = msg(Performative::Tell).with_content(SExpr::atom("sub-1"));
        let t = sub.step("awaiting", &delta).unwrap();
        assert_eq!(t.sub, Some(SubEffect::Delta));
        assert_eq!(t.to, "awaiting");
        let t = sub.step("awaiting", &ack).unwrap();
        assert_eq!(t.sub, Some(SubEffect::Activate));
        assert_eq!(t.to, "done");
    }

    #[test]
    fn undefined_and_unreachable_states() {
        let spec = ProtocolSpec::new("bad", &["start", "island", "done"], &["done"])
            .transition(ProtoTransition::new("start", Trigger::new("ping"), "nowhere"))
            .transition(ProtoTransition::new("island", Trigger::new("tell"), "done"));
        let report = analyze_protocol(&spec);
        let codes = report.codes();
        assert!(codes.contains(&Code::UndefinedProtocolState), "{codes:?}");
        assert!(codes.contains(&Code::UnreachableProtocolState), "{codes:?}");
    }

    #[test]
    fn nondeterminism_and_dead_end() {
        let spec = ProtocolSpec::new("bad", &["start", "stuck"], &[])
            .transition(ProtoTransition::new("start", Trigger::new("ask-one"), "stuck"))
            .transition(ProtoTransition::new("start", Trigger::new("ask-one"), "start"));
        let report = analyze_protocol(&spec);
        let codes = report.codes();
        assert!(codes.contains(&Code::NondeterministicTransition), "{codes:?}");
        assert!(codes.contains(&Code::DeadEndProtocolState), "{codes:?}");
    }

    #[test]
    fn undischargeable_obligation() {
        // `reply` opens, but the only continuation loops without a
        // discharging edge.
        let spec = ProtocolSpec::new("bad", &["start", "wait"], &["wait"])
            .transition(
                ProtoTransition::new("start", Trigger::new("ask-all"), "wait").opens("reply"),
            )
            .transition(ProtoTransition::new("wait", Trigger::new("tell"), "wait"));
        let report = analyze_protocol(&spec);
        assert!(report.codes().contains(&Code::UndischargeableObligation), "{:?}", report.codes());
    }

    #[test]
    fn unhandled_performative_is_warning() {
        let spec = ProtocolSpec::new("bad", &["start", "done"], &["done"])
            .declare(&["ping", "reply", "sorry"])
            .transition(ProtoTransition::new("start", Trigger::new("ping"), "done"));
        let report = analyze_protocol(&spec);
        let unhandled: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == Code::UnhandledPerformative).collect();
        assert_eq!(unhandled.len(), 2, "{}", report.render_human(None));
        assert!(unhandled.iter().all(|d| d.severity == crate::Severity::Warning));
        assert!(!report.has_errors());
    }

    #[test]
    fn sexpr_roundtrip_parses_and_analyzes() {
        let src = "(protocol advertise\n  (states start awaiting done)\n  (final done)\n  \
                   (declares advertise tell sorry)\n  (t start advertise awaiting (opens reply))\n  \
                   (t awaiting tell done (discharges reply))\n  \
                   (t awaiting sorry done (discharges reply)))";
        let report = analyze_protocol_source("good.proto", src);
        assert!(report.is_clean(), "{}", report.render_human(Some(src)));

        let bad = "(protocol p (states a b) (final b) (t a ping c))";
        let report = analyze_protocol_source("bad.proto", bad);
        assert!(report.codes().contains(&Code::UndefinedProtocolState), "{:?}", report.codes());
    }

    #[test]
    fn parse_errors_are_is001() {
        let report = analyze_protocol_source("x.proto", "(protocol");
        assert_eq!(report.codes(), vec![Code::SyntaxError]);
        let report = analyze_protocol_source("x.proto", "(not-a-protocol)");
        assert_eq!(report.codes(), vec![Code::SyntaxError]);
    }
}
