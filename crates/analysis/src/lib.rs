//! Static analysis for the InfoSleuth reproduction: a diagnostics
//! framework plus three passes.
//!
//! - [`ldl_pass`] — LDL rule programs: safety/range-restriction,
//!   stratified negation (reporting the precise negative cycle),
//!   dependency hygiene (undefined predicates, unreachable rules, arity
//!   clashes), and built-in argument sanity.
//! - [`ad_pass`] — advertisements: unsatisfiable constraints, classes and
//!   slots unknown to the declared ontology, unknown capabilities, invalid
//!   fragments, and subsumption by an already-registered advertisement.
//! - [`kqml_pass`] — KQML messages and conversation templates:
//!   performative and parameter well-formedness.
//! - [`query_pass`] — standing service queries (subscriptions):
//!   unsatisfiable constraint conjunctions, vacuous queries that match
//!   everything, and vocabulary unknown to the registered ontologies.
//! - [`protocol`] — conversation-protocol specs (finite state machines
//!   over performatives) and their static IS04x pass: undefined or
//!   unreachable states, nondeterministic transitions, unhandled
//!   performatives, undischargeable reply obligations, dead ends.
//! - [`conformance`] — the generated runtime monitor interpreting those
//!   specs over observed traffic (IS05x: out-of-order replies, deltas
//!   after unsubscribe, orphan conversations, duplicate acks).
//!
//! Every pass returns a [`Report`] of [`Diagnostic`]s carrying a stable
//! `IS0xx` [`Code`], a severity, and (where the input has source text) a
//! byte-offset [`Span`]. Reports render human-readable (with carets into
//! the source) or as JSON, and sort deterministically.
//!
//! The broker uses these passes to reject bad advertisements and rule
//! deltas at admission time; the `infosleuth-lint` binary runs them over
//! every shipped artifact and over the regression corpus in
//! `tests/lint_corpus/`.

#![forbid(unsafe_code)]

pub mod ad_pass;
pub mod conformance;
pub mod diag;
pub mod kqml_pass;
pub mod ldl_pass;
pub mod protocol;
pub mod query_pass;

pub use ad_pass::{analyze_advertisement, AdContext};
pub use conformance::{analyze_trace, ConformanceMonitor};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use kqml_pass::{analyze_message, analyze_template};
pub use ldl_pass::{analyze_ldl_source, analyze_rules, LdlEnv};
pub use protocol::{
    analyze_protocol, analyze_protocol_source, analyze_protocol_table, standard_protocols,
    ProtoTransition, ProtocolSpec, SubEffect, Trigger,
};
pub use query_pass::analyze_service_query;
