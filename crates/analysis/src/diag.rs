//! The diagnostics framework: error codes, severities, source spans, and
//! human/JSON renderers.
//!
//! Every pass reports through [`Report`], so the broker's admission
//! pipeline, the `infosleuth-lint` binary, and tests all consume the same
//! structured output. Diagnostic ordering is deterministic (span, then
//! code, then message) so golden tests and the JSON report are stable.

use std::fmt;

/// How bad a diagnostic is. `Error` diagnostics make the broker refuse an
/// advertisement or rule delta; `Warning` diagnostics are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Stable diagnostic codes. The `IS0xx` numbering groups codes by pass:
/// `IS00x` syntax/safety, `IS01x` LDL program structure, `IS02x`
/// advertisements, `IS03x` KQML conformance, `IS04x` conversation-protocol
/// statics, `IS05x` runtime conversation conformance, `IS06x` source
/// hygiene. Variant declaration order mirrors the numbering so the
/// derived `Ord` sorts diagnostics by code group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// IS001: the source text does not parse.
    SyntaxError,
    /// IS002: a head variable is not bound by a positive body literal.
    UnsafeHeadVar,
    /// IS003: a variable in a negated or builtin literal is not bound by a
    /// positive body literal.
    UnboundVar,
    /// IS010: recursion through negation — the program is not stratifiable.
    RecursionThroughNegation,
    /// IS011: a body predicate is neither defined by a rule nor part of the
    /// known EDB schema.
    UndefinedPredicate,
    /// IS012: a rule's head predicate is not reachable from any root
    /// (externally queried) predicate — the rule is dead code.
    UnreachableRule,
    /// IS013: a predicate is used with inconsistent arities.
    ArityMismatch,
    /// IS014: a builtin test can never hold (incomparable constant kinds or
    /// a statically false comparison), so the rule can never fire.
    ImpossibleComparison,
    /// IS015: an exact duplicate of an earlier rule.
    DuplicateRule,
    /// IS020: an advertisement's data constraints are unsatisfiable.
    UnsatisfiableConstraints,
    /// IS021: an advertised class is unknown to the declared ontology.
    UnknownClass,
    /// IS022: an advertised slot is unknown to the declared ontology.
    UnknownSlot,
    /// IS023: an advertised capability is not in the capability taxonomy.
    UnknownCapability,
    /// IS024: the advertisement is subsumed by an already-registered
    /// advertisement from the same agent (it adds nothing).
    SubsumedAdvertisement,
    /// IS025: an advertised fragment is invalid for its class.
    InvalidFragment,
    /// IS026: a subscription's (standing service query's) constraint
    /// conjunction is provably empty — it can never match any agent.
    UnsatisfiableSubscription,
    /// IS027: a subscription constrains nothing at all — it would fire on
    /// every repository mutation and match every agent.
    VacuousSubscription,
    /// IS030: a performative outside the known KQML vocabulary.
    UnknownPerformative,
    /// IS031: a parameter required (or strongly expected) by the
    /// performative is missing.
    MissingParameter,
    /// IS032: a message template is structurally malformed.
    MalformedTemplate,
    /// IS033: a reserved KQML parameter holds a non-text value.
    NonTextReservedParameter,
    /// IS034: a `:x-trace` parameter does not hold a valid encoded
    /// trace context (`"<trace-hex16>-<span-hex16>"`).
    InvalidTraceContext,
    /// IS040: a protocol transition names a state that is never declared.
    UndefinedProtocolState,
    /// IS041: a declared protocol state is unreachable from the initial
    /// state.
    UnreachableProtocolState,
    /// IS042: two transitions leave the same state on the same trigger —
    /// the conversation machine is nondeterministic.
    NondeterministicTransition,
    /// IS043: a performative the protocol declares is never consumed by
    /// any transition — there is no handler for it.
    UnhandledPerformative,
    /// IS044: a reply obligation opened on some path can never be
    /// discharged on any continuation of that path.
    UndischargeableObligation,
    /// IS045: a non-final state has no outgoing transitions — every
    /// conversation reaching it is stuck forever.
    DeadEndProtocolState,
    /// IS050: a reply whose `:in-reply-to` names no open conversation, or
    /// arrives after the conversation already closed.
    OutOfOrderReply,
    /// IS051: a `sub-delta` tell observed after the subscription's
    /// unsubscribe was acknowledged.
    TellAfterUnsubscribe,
    /// IS052: a conversation was opened but never reached a final state
    /// by the end of observation.
    OrphanConversation,
    /// IS053: a conversation received a second closing acknowledgement.
    DuplicateAck,
    /// IS060: `unwrap()`/`expect()` in non-test library source without a
    /// `// lint: allow-unwrap` justification.
    UncheckedUnwrap,
}

impl Code {
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::SyntaxError => "IS001",
            Code::UnsafeHeadVar => "IS002",
            Code::UnboundVar => "IS003",
            Code::RecursionThroughNegation => "IS010",
            Code::UndefinedPredicate => "IS011",
            Code::UnreachableRule => "IS012",
            Code::ArityMismatch => "IS013",
            Code::ImpossibleComparison => "IS014",
            Code::DuplicateRule => "IS015",
            Code::UnsatisfiableConstraints => "IS020",
            Code::UnknownClass => "IS021",
            Code::UnknownSlot => "IS022",
            Code::UnknownCapability => "IS023",
            Code::SubsumedAdvertisement => "IS024",
            Code::InvalidFragment => "IS025",
            Code::UnsatisfiableSubscription => "IS026",
            Code::VacuousSubscription => "IS027",
            Code::UnknownPerformative => "IS030",
            Code::MissingParameter => "IS031",
            Code::MalformedTemplate => "IS032",
            Code::NonTextReservedParameter => "IS033",
            Code::InvalidTraceContext => "IS034",
            Code::UndefinedProtocolState => "IS040",
            Code::UnreachableProtocolState => "IS041",
            Code::NondeterministicTransition => "IS042",
            Code::UnhandledPerformative => "IS043",
            Code::UndischargeableObligation => "IS044",
            Code::DeadEndProtocolState => "IS045",
            Code::OutOfOrderReply => "IS050",
            Code::TellAfterUnsubscribe => "IS051",
            Code::OrphanConversation => "IS052",
            Code::DuplicateAck => "IS053",
            Code::UncheckedUnwrap => "IS060",
        }
    }

    /// Every code, in declaration (and therefore numbering) order. Kept
    /// exhaustive by the match in [`Code::as_str`]; the unit tests walk
    /// this table to pin uniqueness and grouping.
    pub const ALL: &'static [Code] = &[
        Code::SyntaxError,
        Code::UnsafeHeadVar,
        Code::UnboundVar,
        Code::RecursionThroughNegation,
        Code::UndefinedPredicate,
        Code::UnreachableRule,
        Code::ArityMismatch,
        Code::ImpossibleComparison,
        Code::DuplicateRule,
        Code::UnsatisfiableConstraints,
        Code::UnknownClass,
        Code::UnknownSlot,
        Code::UnknownCapability,
        Code::SubsumedAdvertisement,
        Code::InvalidFragment,
        Code::UnsatisfiableSubscription,
        Code::VacuousSubscription,
        Code::UnknownPerformative,
        Code::MissingParameter,
        Code::MalformedTemplate,
        Code::NonTextReservedParameter,
        Code::InvalidTraceContext,
        Code::UndefinedProtocolState,
        Code::UnreachableProtocolState,
        Code::NondeterministicTransition,
        Code::UnhandledPerformative,
        Code::UndischargeableObligation,
        Code::DeadEndProtocolState,
        Code::OutOfOrderReply,
        Code::TellAfterUnsubscribe,
        Code::OrphanConversation,
        Code::DuplicateAck,
        Code::UncheckedUnwrap,
    ];

    /// The severity a pass assigns by default. Advisory findings (dead
    /// rules, duplicates, subsumption, unknown performatives) warn;
    /// everything else is an admission-blocking error.
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::UnreachableRule
            | Code::ImpossibleComparison
            | Code::DuplicateRule
            | Code::SubsumedAdvertisement
            | Code::UnknownPerformative
            | Code::UnreachableProtocolState
            | Code::UnhandledPerformative
            | Code::OrphanConversation => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A byte range `[start, end)` into the analyzed source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end: end.max(start) }
    }

    pub fn point(at: usize) -> Self {
        Span { start: at, end: at + 1 }
    }
}

/// One finding: a code, a severity, a message, an optional span into the
/// analyzed source, and free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    pub fn error(code: Code, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, ..Diagnostic::new(code, message) }
    }

    pub fn warning(code: Code, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::new(code, message) }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// The result of running a pass (or a pipeline of passes) over one
/// artifact. `origin` names the artifact — a file path, an agent name, a
/// program's label — and leads every rendered diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    pub origin: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(origin: impl Into<String>) -> Self {
        Report { origin: origin.into(), diagnostics: Vec::new() }
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends another report's diagnostics (origins must describe the
    /// same artifact; the receiver's is kept).
    pub fn absorb(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    pub fn codes(&self) -> Vec<Code> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Sorts diagnostics into the canonical deterministic order: span
    /// start, then code, then message.
    pub fn sorted(mut self) -> Self {
        self.diagnostics.sort_by(|a, b| {
            let ka = (a.span.map(|s| s.start).unwrap_or(usize::MAX), a.code, &a.message);
            let kb = (b.span.map(|s| s.start).unwrap_or(usize::MAX), b.code, &b.message);
            ka.cmp(&kb)
        });
        self
    }

    /// Renders the report for humans. When the analyzed source text is
    /// provided, spans resolve to line/column positions and the offending
    /// line is excerpted with a caret underline.
    pub fn render_human(&self, source: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            match (d.span, source) {
                (Some(span), Some(src)) => {
                    let (line, col) = line_col(src, span.start);
                    out.push_str(&format!("  --> {}:{}:{}\n", self.origin, line, col));
                    if let Some(text) = src.lines().nth(line - 1) {
                        let width = span
                            .end
                            .saturating_sub(span.start)
                            .clamp(1, text.len().saturating_sub(col - 1).max(1));
                        out.push_str(&format!("   | {text}\n"));
                        out.push_str(&format!(
                            "   | {}{}\n",
                            " ".repeat(col - 1),
                            "^".repeat(width)
                        ));
                    }
                }
                (Some(span), None) => {
                    out.push_str(&format!("  --> {}:byte {}\n", self.origin, span.start));
                }
                (None, _) => {
                    out.push_str(&format!("  --> {}\n", self.origin));
                }
            }
            for note in &d.notes {
                out.push_str(&format!("   = note: {note}\n"));
            }
        }
        out
    }

    /// Renders the report as a JSON object. Hand-rolled (this workspace
    /// vendors only a serde stub), deterministic given a [`Self::sorted`]
    /// report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"origin\":");
        json_string(&mut out, &self.origin);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"message\":");
            json_string(&mut out, &d.message);
            match d.span {
                Some(s) => {
                    out.push_str(&format!(",\"span\":{{\"start\":{},\"end\":{}}}", s.start, s.end))
                }
                None => out.push_str(",\"span\":null"),
            }
            out.push_str(",\"notes\":[");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, n);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// 1-based line and column of a byte offset.
fn line_col(src: &str, at: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..at.min(src.len())];
    let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
    let col =
        at.min(src.len()) - upto.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    (line, col + 1)
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::SyntaxError.as_str(), "IS001");
        assert_eq!(Code::RecursionThroughNegation.as_str(), "IS010");
        assert_eq!(Code::UnsatisfiableConstraints.as_str(), "IS020");
        assert_eq!(Code::UnknownPerformative.as_str(), "IS030");
        assert_eq!(Code::UndefinedProtocolState.as_str(), "IS040");
        assert_eq!(Code::OutOfOrderReply.as_str(), "IS050");
        assert_eq!(Code::UncheckedUnwrap.as_str(), "IS060");
    }

    #[test]
    fn code_table_is_unique_and_monotonically_grouped() {
        // Every code renders `ISnnn` with a unique, strictly increasing
        // number in declaration order, so the doc-comment grouping
        // (IS00x … IS06x) can't silently drift as codes are added.
        let mut last = 0u32;
        let mut seen = std::collections::BTreeSet::new();
        for code in Code::ALL {
            let s = code.as_str();
            assert!(s.starts_with("IS") && s.len() == 5, "malformed code string {s}");
            let n: u32 = s[2..].parse().unwrap_or_else(|_| panic!("non-numeric code {s}"));
            assert!(seen.insert(s), "duplicate code string {s}");
            assert!(n > last, "code {s} breaks monotonic declaration order (previous {last:03})");
            last = n;
        }
        // `ALL` must stay exhaustive: the derived Ord follows declaration
        // order, so the last variant in the table must compare >= every
        // variant the table contains.
        assert_eq!(Code::ALL.len(), 33, "update Code::ALL when adding a variant");
    }

    #[test]
    fn sorted_orders_by_span_then_code() {
        let mut r = Report::new("t");
        r.push(Diagnostic::new(Code::UnboundVar, "b").with_span(Span::new(10, 12)));
        r.push(Diagnostic::new(Code::UnsafeHeadVar, "a").with_span(Span::new(2, 4)));
        r.push(Diagnostic::new(Code::UnreachableRule, "c")); // no span → last
        let r = r.sorted();
        assert_eq!(r.codes(), vec![Code::UnsafeHeadVar, Code::UnboundVar, Code::UnreachableRule]);
    }

    #[test]
    fn human_rendering_excerpts_the_line() {
        let src = "good(X) :- base(X).\nbad(X, Y) :- base(X).\n";
        let start = src.find("bad").unwrap();
        let mut r = Report::new("rules.ldl");
        r.push(
            Diagnostic::new(Code::UnsafeHeadVar, "head variable Y not bound")
                .with_span(Span::new(start, src.len() - 1)),
        );
        let text = r.render_human(Some(src));
        assert!(text.contains("error[IS002]"), "{text}");
        assert!(text.contains("rules.ldl:2:1"), "{text}");
        assert!(text.contains("bad(X, Y) :- base(X)."), "{text}");
        assert!(text.contains('^'), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_is_wellformed() {
        let mut r = Report::new("a\"b");
        r.push(Diagnostic::new(Code::SyntaxError, "line1\nline2").with_span(Span::point(3)));
        let json = r.render_json();
        assert!(json.contains("\"origin\":\"a\\\"b\""), "{json}");
        assert!(json.contains("\"message\":\"line1\\nline2\""), "{json}");
        assert!(json.contains("\"span\":{\"start\":3,\"end\":4}"), "{json}");
    }

    #[test]
    fn severity_partitions_counts() {
        let mut r = Report::new("t");
        r.push(Diagnostic::error(Code::SyntaxError, "e"));
        r.push(Diagnostic::warning(Code::DuplicateRule, "w"));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
    }
}
