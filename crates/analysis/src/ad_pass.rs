//! Static analysis of advertisements.
//!
//! The checks mirror what the paper's broker promises on receipt of an
//! advertisement ("the broker validates and translates the advertisement")
//! but as structured diagnostics: unsatisfiable data constraints (IS020),
//! classes/slots unknown to the declared ontology (IS021/IS022), unknown
//! capabilities (IS023), invalid fragments (IS025), and advertisements
//! subsumed by one already registered for the same agent (IS024).

use crate::diag::{Code, Diagnostic, Report};
use infosleuth_ontology::{Advertisement, Ontology, OntologyContent, Taxonomy};
use std::collections::BTreeMap;

/// What the analyzer knows about the broker's world: the capability
/// taxonomy, the registered domain ontologies, and the advertisement (if
/// any) already registered for the same agent. All optional — missing
/// knowledge skips the corresponding checks, mirroring the paper's "the
/// broker cannot check what it does not know".
#[derive(Debug, Clone, Default)]
pub struct AdContext<'a> {
    taxonomy: Option<&'a Taxonomy>,
    ontologies: BTreeMap<&'a str, &'a Ontology>,
    registered: Option<&'a Advertisement>,
}

impl<'a> AdContext<'a> {
    pub fn new() -> Self {
        AdContext::default()
    }

    pub fn with_taxonomy(mut self, t: &'a Taxonomy) -> Self {
        self.taxonomy = Some(t);
        self
    }

    pub fn with_ontologies<I>(mut self, ontologies: I) -> Self
    where
        I: IntoIterator<Item = &'a Ontology>,
    {
        for o in ontologies {
            self.ontologies.insert(o.name.as_str(), o);
        }
        self
    }

    /// The advertisement currently registered for the same agent, for
    /// subsumption checking.
    pub fn with_registered(mut self, ad: &'a Advertisement) -> Self {
        self.registered = Some(ad);
        self
    }

    /// The capability taxonomy, if known.
    pub fn taxonomy(&self) -> Option<&'a Taxonomy> {
        self.taxonomy
    }

    /// Looks up a registered ontology by name.
    pub fn ontology(&self, name: &str) -> Option<&'a Ontology> {
        self.ontologies.get(name).copied()
    }
}

/// Runs every advertisement check. The report origin is the agent name.
pub fn analyze_advertisement(ad: &Advertisement, ctx: &AdContext<'_>) -> Report {
    let mut report = Report::new(ad.location.name.clone());
    if let Some(tax) = ctx.taxonomy {
        for cap in &ad.semantic.capabilities {
            if !tax.contains(cap.as_str()) {
                report.push(Diagnostic::new(
                    Code::UnknownCapability,
                    format!("capability '{}' is not in the capability taxonomy", cap.as_str()),
                ));
            }
        }
    }
    for content in &ad.semantic.content {
        check_content(content, ctx, &mut report);
    }
    if let Some(existing) = ctx.registered {
        if existing.location.name == ad.location.name && subsumes(existing, ad) {
            report.push(
                Diagnostic::new(
                    Code::SubsumedAdvertisement,
                    format!(
                        "advertisement is subsumed by the one already registered for \
                         '{}': it offers no capability, conversation, class, slot, or \
                         data region the registered one lacks",
                        ad.location.name
                    ),
                )
                .with_note(
                    "re-advertising a weaker or identical service set has no effect on matchmaking",
                ),
            );
        }
    }
    report.sorted()
}

fn check_content(content: &OntologyContent, ctx: &AdContext<'_>, report: &mut Report) {
    if !content.constraints.is_satisfiable() {
        report.push(
            Diagnostic::new(
                Code::UnsatisfiableConstraints,
                format!(
                    "data constraints for ontology '{}' are unsatisfiable: {}",
                    content.ontology,
                    content.constraints.to_text()
                ),
            )
            .with_note("no query can ever match this content; the advertisement is useless"),
        );
    }
    // Classes, slots, and fragments can only be checked against ontologies
    // the broker knows.
    let Some(onto) = ctx.ontologies.get(content.ontology.as_str()) else { return };
    for class in &content.classes {
        if onto.class(class).is_none() {
            report.push(Diagnostic::new(
                Code::UnknownClass,
                format!("class '{class}' is unknown to ontology '{}'", content.ontology),
            ));
        }
    }
    for slot in content.slots.iter().chain(content.keys.iter()) {
        check_slot(slot, content, onto, Code::UnknownSlot, report);
    }
    // Constraint slots are advisory: a constraint over a slot the ontology
    // does not define can never be compared with a request over real data.
    for slot in content.constraints.constrained_slots() {
        if !slot_known(slot, content, onto) {
            report.push(Diagnostic::warning(
                Code::UnknownSlot,
                format!("constrained slot '{slot}' is unknown to ontology '{}'", content.ontology),
            ));
        }
    }
    for (class, frag) in &content.fragments {
        if let Err(e) = onto.validate_fragment(class, frag) {
            report.push(Diagnostic::new(
                Code::InvalidFragment,
                format!("invalid fragment of class '{class}': {e}"),
            ));
        }
    }
}

fn check_slot(
    slot: &str,
    content: &OntologyContent,
    onto: &Ontology,
    code: Code,
    report: &mut Report,
) {
    if !slot_known(slot, content, onto) {
        report.push(Diagnostic::new(
            code,
            format!("slot '{slot}' is unknown to ontology '{}'", onto.name),
        ));
    }
}

/// Whether a (possibly dotted `class.slot`) slot name resolves in the
/// ontology. Dotted names must name a known class and one of its slots
/// (inherited included); bare names must be a slot of some advertised
/// class, or of any class when the advertisement names none.
fn slot_known(slot: &str, content: &OntologyContent, onto: &Ontology) -> bool {
    if let Some((class, bare)) = slot.split_once('.') {
        return match onto.all_slots(class) {
            Ok(slots) => slots.iter().any(|s| s.name == bare),
            Err(_) => false,
        };
    }
    let mut candidates: Vec<&str> = content.classes.iter().map(String::as_str).collect();
    if candidates.is_empty() {
        candidates = onto.class_names().collect();
    }
    candidates.iter().any(|class| {
        onto.all_slots(class).map(|slots| slots.iter().any(|s| s.name == slot)).unwrap_or(false)
    })
}

/// Whether `old` subsumes `new`: everything `new` offers, `old` already
/// offers. Capabilities, conversations, and per-ontology content must all
/// be covered, and `new`'s data region must lie inside `old`'s.
fn subsumes(old: &Advertisement, new: &Advertisement) -> bool {
    if !new.semantic.capabilities.is_subset(&old.semantic.capabilities) {
        return false;
    }
    if !new.semantic.conversations.is_subset(&old.semantic.conversations) {
        return false;
    }
    new.semantic.content.iter().all(|nc| {
        old.semantic.content.iter().any(|oc| {
            oc.ontology == nc.ontology
                && nc.classes.is_subset(&oc.classes)
                && nc.slots.is_subset(&oc.slots)
                && nc.keys.is_subset(&oc.keys)
                && nc.constraints.implies(&oc.constraints)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        healthcare_ontology, standard_capability_taxonomy, AgentLocation, AgentType, Capability,
        Fragment, SemanticInfo, SyntacticInfo,
    };

    fn ad(name: &str) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1000", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_capabilities([Capability::relational_query_processing()]),
            )
    }

    fn healthcare_content() -> OntologyContent {
        OntologyContent::new("healthcare")
            .with_classes(["patient"])
            .with_slots(["patient.age", "city"])
            .with_keys(["patient.id"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                43,
                75,
            )]))
    }

    fn ctx<'a>(tax: &'a Taxonomy, onto: &'a Ontology) -> AdContext<'a> {
        AdContext::new().with_taxonomy(tax).with_ontologies([onto])
    }

    #[test]
    fn wellformed_ad_is_clean() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("ra5");
        a.semantic.content.push(healthcare_content());
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unknown_capability_is_is023() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.capabilities.insert(Capability::new("quantum-foo"));
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnknownCapability]);
    }

    #[test]
    fn unsatisfiable_constraints_are_is020() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.content.push(OntologyContent::new("healthcare").with_constraints(
            Conjunction::from_predicates(vec![
                Predicate::gt("patient.age", 10),
                Predicate::lt("patient.age", 5),
            ]),
        ));
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert!(r.codes().contains(&Code::UnsatisfiableConstraints), "{:?}", r.codes());
    }

    #[test]
    fn unknown_class_and_slot_are_is021_is022() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.content.push(
            OntologyContent::new("healthcare")
                .with_classes(["martian"])
                .with_slots(["patient.blood_type"]),
        );
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnknownClass, Code::UnknownSlot]);
    }

    #[test]
    fn unknown_ontology_passes_through() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.content.push(
            OntologyContent::new("mystery").with_classes(["whatever"]).with_slots(["thing.x"]),
        );
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn invalid_fragment_is_is025() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.content.push(
            OntologyContent::new("healthcare")
                .with_fragment("patient", Fragment::vertical(["no_such_slot"])),
        );
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::InvalidFragment]);
    }

    #[test]
    fn unknown_constraint_slot_is_warning() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut a = ad("x");
        a.semantic.content.push(
            OntologyContent::new("healthcare").with_classes(["patient"]).with_constraints(
                Conjunction::from_predicates(vec![Predicate::eq("patient.nonexistent", 1)]),
            ),
        );
        let r = analyze_advertisement(&a, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnknownSlot]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn subsumed_readvertisement_is_is024_warning() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let mut old = ad("ra5");
        old.semantic.content.push(healthcare_content());
        // The new ad narrows the age range and drops a slot: subsumed.
        let mut new = ad("ra5");
        let mut c = healthcare_content();
        c.slots.remove("city");
        c.constraints =
            Conjunction::from_predicates(vec![Predicate::between("patient.age", 50, 60)]);
        new.semantic.content.push(c);
        let r = analyze_advertisement(&new, &ctx(&tax, &onto).with_registered(&old));
        assert_eq!(r.codes(), vec![Code::SubsumedAdvertisement]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        // An ad that *extends* the region is not subsumed.
        let mut wider = ad("ra5");
        let mut c = healthcare_content();
        c.constraints =
            Conjunction::from_predicates(vec![Predicate::between("patient.age", 20, 90)]);
        wider.semantic.content.push(c);
        let r = analyze_advertisement(&wider, &ctx(&tax, &onto).with_registered(&old));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }
}
