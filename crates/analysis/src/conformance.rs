//! Runtime conversation-conformance monitoring (the IS05x family).
//!
//! A [`ConformanceMonitor`] interprets a [`ProtocolSpec`]
//! table over a stream of observed message *sends*. Every message is fed
//! through [`ConformanceMonitor::observe`] in global emission order (taps
//! hook the transport's `send`, so the order is the order messages enter
//! the fabric — observing at delivery time would manufacture false
//! cross-channel reorderings). The monitor tracks:
//!
//! - **conversations**, keyed by `(opener, :reply-with)` — opened when an
//!   opening performative of some protocol carries a `:reply-with`,
//!   advanced by replies whose `:in-reply-to` routes back to the opener,
//!   closed when the machine reaches a final state;
//! - **standing subscriptions**, keyed by the subscription key — created
//!   pending at `subscribe`, activated/closed by transitions annotated
//!   with a [`SubEffect`], with `sub-delta`
//!   notifications checked against the key's lifecycle.
//!
//! Violations are collected as [`Diagnostic`]s: IS050 out-of-order or
//! unknown replies, IS051 `sub-delta` after the unsubscribe ack, IS052
//! conversations still open when observation ends, IS053 duplicate
//! closing acknowledgements.
//!
//! Two observation modes: **strict** assumes the monitor sees *every*
//! message (the interleaving explorer's virtual transport), so a reply
//! whose `:in-reply-to` names no open conversation is IS050. **Lenient**
//! tolerates partial observation (a per-node tap in a multi-node
//! deployment sees only one side of cross-node conversations) and ignores
//! unknown conversation keys.

use crate::diag::{Code, Diagnostic, Report};
use crate::protocol::{content_head, ProtocolSpec, SubEffect};
use infosleuth_kqml::Message;
use std::collections::HashMap;

/// Lifecycle of one standing subscription key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubState {
    /// `subscribe` sent, ack not yet observed (snapshot deltas are legal).
    Pending,
    /// Ack observed; deltas are legal.
    Active,
    /// Unsubscribe acknowledged; further deltas are IS051.
    Closed,
}

/// One live (or finished) conversation.
#[derive(Debug, Clone)]
struct Conversation {
    spec: usize,
    state: String,
    /// Obligation labels currently open (e.g. `reply`).
    obligations: Vec<String>,
    done: bool,
    /// For unsubscribe conversations: the standing key the ack closes.
    target_sub: Option<String>,
    /// Emission index of the opening message (for violation messages).
    opened_at: u64,
}

/// Spec-driven conversation monitor; see the module docs.
#[derive(Debug)]
pub struct ConformanceMonitor {
    specs: Vec<ProtocolSpec>,
    strict: bool,
    /// `(opener, reply-with)` → conversation.
    conversations: HashMap<(String, String), Conversation>,
    subs: HashMap<String, SubState>,
    pending: Vec<Diagnostic>,
    total: u64,
    seq: u64,
}

impl ConformanceMonitor {
    /// A monitor over `specs`. `strict` means complete observation: replies
    /// to unknown conversations are violations rather than blind spots.
    pub fn new(specs: Vec<ProtocolSpec>, strict: bool) -> Self {
        ConformanceMonitor {
            specs,
            strict,
            conversations: HashMap::new(),
            subs: HashMap::new(),
            pending: Vec::new(),
            total: 0,
            seq: 0,
        }
    }

    /// A strict monitor over [`standard_protocols`](crate::protocol::standard_protocols).
    pub fn standard_strict() -> Self {
        ConformanceMonitor::new(crate::protocol::standard_protocols(), true)
    }

    /// A lenient monitor over the standard table, for distributed taps
    /// that see only part of the traffic.
    pub fn standard_lenient() -> Self {
        ConformanceMonitor::new(crate::protocol::standard_protocols(), false)
    }

    /// Total violations recorded so far (not reset by [`Self::take_violations`]).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Drains violations recorded since the last call.
    pub fn take_violations(&mut self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.pending)
    }

    /// Number of conversations currently open.
    pub fn open_conversations(&self) -> usize {
        self.conversations.values().filter(|c| !c.done).count()
    }

    fn violate(&mut self, d: Diagnostic) {
        self.total += 1;
        self.pending.push(d);
    }

    /// Feeds one message *send* into the monitor, in emission order.
    pub fn observe(&mut self, from: &str, to: &str, msg: &Message) {
        self.seq += 1;
        let seq = self.seq;

        // 1. Opening performative with a :reply-with key opens a
        //    conversation — even when the message also carries
        //    :in-reply-to (unsubscribe names its subscription that way).
        if let Some(rw) = msg.reply_with() {
            if let Some(spec_idx) = self.opening_spec(msg) {
                let spec = &self.specs[spec_idx];
                let initial = spec.initial().unwrap_or_default().to_string();
                let t = spec.step(&initial, msg).expect("opening_spec matched a transition");
                let state = t.to.clone();
                let obligations: Vec<String> = t.opens.clone().into_iter().collect();
                let is_subscribe = spec.name == "subscribe";
                let target_sub = if spec.name == "unsubscribe" {
                    msg.content().and_then(|c| c.as_text()).or(msg.in_reply_to()).map(String::from)
                } else {
                    None
                };
                let key = (from.to_string(), rw.to_string());
                let replaced = self.conversations.insert(
                    key.clone(),
                    Conversation {
                        spec: spec_idx,
                        state,
                        obligations,
                        done: false,
                        target_sub,
                        opened_at: seq,
                    },
                );
                if let Some(old) = replaced {
                    if !old.done {
                        self.violate(Diagnostic::new(
                            Code::OrphanConversation,
                            format!(
                                "conversation ({from}, {rw}) reopened at event {seq} while still \
                                 in state `{}` (opened at event {})",
                                old.state, old.opened_at
                            ),
                        ));
                    }
                }
                if is_subscribe {
                    self.subs.insert(rw.to_string(), SubState::Pending);
                }
                return;
            }
        }

        // 2. Standing-subscription notifications route by the sub key,
        //    not a conversation: `tell` with a `sub-delta` content head.
        if let Some(irt) = msg.in_reply_to() {
            if content_head(msg) == Some("sub-delta") {
                match self.subs.get(irt) {
                    Some(SubState::Closed) => {
                        let irt = irt.to_string();
                        self.violate(Diagnostic::new(
                            Code::TellAfterUnsubscribe,
                            format!(
                                "sub-delta on key `{irt}` sent to `{to}` at event {seq} after its \
                                 unsubscribe was acknowledged"
                            ),
                        ));
                    }
                    Some(_) => {} // pending (snapshot) or active: legal
                    None if self.strict => {
                        let irt = irt.to_string();
                        self.violate(Diagnostic::new(
                            Code::OutOfOrderReply,
                            format!("sub-delta on unknown subscription key `{irt}` at event {seq}"),
                        ));
                    }
                    None => {}
                }
                return;
            }

            // 3. A reply: route to the conversation the receiver opened.
            let key = (to.to_string(), irt.to_string());
            let Some(conv) = self.conversations.get(&key) else {
                if self.strict {
                    self.violate(Diagnostic::new(
                        Code::OutOfOrderReply,
                        format!(
                            "{} from `{from}` to `{to}` at event {seq} answers unknown \
                             conversation `{irt}`",
                            msg.performative.as_str()
                        ),
                    ));
                }
                return;
            };
            let spec = &self.specs[conv.spec];
            if conv.done {
                let code = if spec.is_closing_trigger(msg) {
                    Code::DuplicateAck
                } else {
                    Code::OutOfOrderReply
                };
                let (state, what) = (conv.state.clone(), msg.performative.as_str().to_string());
                self.violate(Diagnostic::new(
                    code,
                    format!(
                        "{what} from `{from}` at event {seq} arrives after conversation \
                         ({to}, {irt}) already closed in state `{state}`"
                    ),
                ));
                return;
            }
            let Some(t) = spec.step(&conv.state, msg) else {
                let (state, name) = (conv.state.clone(), spec.name.clone());
                self.violate(Diagnostic::new(
                    Code::OutOfOrderReply,
                    format!(
                        "{} from `{from}` at event {seq} is not a legal `{name}` continuation \
                         from state `{state}` for conversation ({to}, {irt})",
                        msg.performative.as_str()
                    ),
                ));
                return;
            };
            let (to_state, opens, discharges, sub_effect) =
                (t.to.clone(), t.opens.clone(), t.discharges.clone(), t.sub);
            let is_final = spec.is_final(&to_state);
            let conv = self.conversations.get_mut(&key).expect("conversation just looked up");
            conv.state = to_state;
            if let Some(o) = opens {
                conv.obligations.push(o);
            }
            if let Some(o) = discharges {
                conv.obligations.retain(|x| x != &o);
            }
            conv.done = is_final;
            let sub_key = match sub_effect {
                Some(SubEffect::Close) => conv.target_sub.clone().or_else(|| Some(irt.to_string())),
                Some(SubEffect::Activate) => Some(irt.to_string()),
                _ => None,
            };
            match sub_effect {
                Some(SubEffect::Activate) => {
                    self.subs.insert(sub_key.expect("activate key"), SubState::Active);
                }
                Some(SubEffect::Close) => {
                    self.subs.insert(sub_key.expect("close key"), SubState::Closed);
                }
                _ => {}
            }
        }
        // Messages with neither an opening match nor :in-reply-to are
        // outside the protocol table (application traffic, log forwarding)
        // and pass through unchecked.
    }

    /// The spec whose initial state consumes this message, if any.
    fn opening_spec(&self, msg: &Message) -> Option<usize> {
        self.specs.iter().position(|s| s.initial().and_then(|init| s.step(init, msg)).is_some())
    }

    /// Ends observation: conversations still open become IS052 orphans.
    /// Returns every violation not already drained, deterministically
    /// sorted.
    pub fn finish(mut self) -> Report {
        let mut report = Report::new("conformance");
        let mut open: Vec<_> = self.conversations.iter().filter(|(_, c)| !c.done).collect();
        open.sort_by_key(|(_, c)| c.opened_at);
        for ((opener, rw), conv) in open {
            let spec = &self.specs[conv.spec];
            report.push(Diagnostic::new(
                Code::OrphanConversation,
                format!(
                    "`{}` conversation ({opener}, {rw}) opened at event {} never reached a final \
                     state (stuck in `{}`, open obligations: {})",
                    spec.name,
                    conv.opened_at,
                    conv.state,
                    if conv.obligations.is_empty() {
                        "none".to_string()
                    } else {
                        conv.obligations.join(", ")
                    }
                ),
            ));
        }
        self.total += report.diagnostics.len() as u64;
        report.diagnostics.splice(0..0, std::mem::take(&mut self.pending));
        report.sorted()
    }
}

/// Replays a textual event trace (one `sender -> receiver (kqml...)` line
/// per event, `#` comments and blank lines skipped) through a strict
/// standard monitor and returns the finished report. This is the corpus
/// entry point for `.trace` fixtures.
pub fn analyze_trace(origin: &str, src: &str) -> Report {
    let mut monitor = ConformanceMonitor::standard_strict();
    let mut report = Report::new(origin);
    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = line.split_once("->").and_then(|(from, rest)| {
            let (to, kqml) = rest.split_once('(')?;
            Some((from.trim().to_string(), to.trim().to_string(), format!("({kqml}")))
        });
        let Some((from, to, kqml)) = parsed else {
            report.push(Diagnostic::new(
                Code::SyntaxError,
                format!("trace line {} is not `from -> to (kqml...)`", lineno + 1),
            ));
            continue;
        };
        match Message::parse(&kqml) {
            Ok(msg) => monitor.observe(&from, &to, &msg),
            Err(e) => report.push(Diagnostic::new(
                Code::SyntaxError,
                format!("trace line {}: {e}", lineno + 1),
            )),
        }
    }
    report.absorb(monitor.finish());
    report.sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_kqml::{Performative, SExpr};

    fn advertise(rw: &str) -> Message {
        Message::new(Performative::Advertise).with_content(SExpr::atom("ad")).with_reply_with(rw)
    }

    fn ack(irt: &str) -> Message {
        Message::new(Performative::Tell).with_content(SExpr::atom("ok")).with_in_reply_to(irt)
    }

    fn delta(key: &str) -> Message {
        Message::new(Performative::Tell)
            .with_content(SExpr::list([SExpr::atom("sub-delta"), SExpr::atom("e")]))
            .with_in_reply_to(key)
    }

    #[test]
    fn clean_advertise_roundtrip() {
        let mut m = ConformanceMonitor::standard_strict();
        m.observe("client", "broker", &advertise("m1"));
        m.observe("broker", "client", &ack("m1"));
        assert_eq!(m.total_violations(), 0);
        assert!(m.finish().is_clean());
    }

    #[test]
    fn duplicate_ack_is_053_and_unknown_reply_is_050() {
        let mut m = ConformanceMonitor::standard_strict();
        m.observe("client", "broker", &advertise("m1"));
        m.observe("broker", "client", &ack("m1"));
        m.observe("broker", "client", &ack("m1"));
        m.observe("broker", "client", &ack("never-opened"));
        let report = m.finish();
        assert_eq!(report.codes(), vec![Code::OutOfOrderReply, Code::DuplicateAck]);
    }

    #[test]
    fn lenient_mode_ignores_unknown_conversations() {
        let mut m = ConformanceMonitor::standard_lenient();
        m.observe("broker", "client", &ack("cross-node-key"));
        m.observe("broker", "watch", &delta("cross-node-sub"));
        assert!(m.finish().is_clean());
    }

    #[test]
    fn subscription_lifecycle_and_tell_after_unsubscribe() {
        let mut m = ConformanceMonitor::standard_strict();
        let sub = Message::new(Performative::Subscribe)
            .with_content(SExpr::atom("q"))
            .with_reply_with("sub-1");
        m.observe("client", "broker", &sub);
        // Snapshot delta to the watcher *before* the ack: legal.
        m.observe("broker", "watch", &delta("sub-1"));
        m.observe("broker", "client", &ack("sub-1"));
        m.observe("broker", "watch", &delta("sub-1"));
        // Unsubscribe names the key in content; fresh reply-with.
        let unsub = Message::new(Performative::Other("unsubscribe".into()))
            .with_content(SExpr::atom("sub-1"))
            .with_reply_with("m9");
        m.observe("client", "broker", &unsub);
        m.observe("broker", "client", &ack("m9"));
        assert_eq!(m.total_violations(), 0);
        // Any further delta is IS051.
        m.observe("broker", "watch", &delta("sub-1"));
        let report = m.finish();
        assert_eq!(report.codes(), vec![Code::TellAfterUnsubscribe]);
    }

    #[test]
    fn orphan_conversations_surface_at_finish() {
        let mut m = ConformanceMonitor::standard_strict();
        m.observe("client", "broker", &advertise("m1"));
        let report = m.finish();
        assert_eq!(report.codes(), vec![Code::OrphanConversation]);
        assert!(!report.has_errors(), "orphans are warnings");
    }

    #[test]
    fn out_of_order_reply_against_open_conversation() {
        let mut m = ConformanceMonitor::standard_strict();
        // Mutations close on tell/sorry/error only; a `reply` answering
        // an advertise has no transition, so stepping fails → IS050.
        m.observe("client", "broker", &advertise("m1"));
        let bad =
            Message::new(Performative::Reply).with_content(SExpr::atom("x")).with_in_reply_to("m1");
        m.observe("broker", "client", &bad);
        let drained: Vec<Code> = m.take_violations().iter().map(|d| d.code).collect();
        assert_eq!(drained, vec![Code::OutOfOrderReply]);
        // Draining leaves the running total intact.
        assert_eq!(m.total_violations(), 1);
    }

    #[test]
    fn trace_replay_detects_seeded_violations() {
        let src = "# duplicate ack trace\n\
                   client -> broker (advertise :reply-with m1 :content ad)\n\
                   broker -> client (tell :in-reply-to m1 :content ok)\n\
                   broker -> client (tell :in-reply-to m1 :content ok)\n";
        let report = analyze_trace("dup.trace", src);
        assert_eq!(report.codes(), vec![Code::DuplicateAck]);
    }
}
