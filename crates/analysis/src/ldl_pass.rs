//! Static analysis of LDL rule programs.
//!
//! The pass pipeline, per program:
//!
//! 1. **Safety** (range restriction, IS002/IS003): every head variable and
//!    every variable in a negated or builtin literal must be bound by a
//!    positive body literal.
//! 2. **Stratified negation** (IS010): the predicate dependency graph must
//!    have no cycle through a negative edge; violations report the precise
//!    cycle, not just one involved predicate.
//! 3. **Dependency hygiene**: undefined predicates (IS011, when the EDB
//!    schema is known), unreachable rules (IS012, when the root predicates
//!    are known), arity consistency (IS013), duplicate rules (IS015).
//! 4. **Builtin consistency** (IS014): comparisons that can never hold —
//!    statically false constant tests, or a variable compared against
//!    constants of incomparable kinds.

use crate::diag::{Code, Diagnostic, Report, Span};
use infosleuth_ldl::{parse_rules_spanned, Const, Literal, Rule, RuleError, Term};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What the analyzer may assume about the world around a rule program.
/// Both fields are optional: without an EDB schema, undefined-predicate
/// and EDB-arity checks are skipped (any predicate may be a fact); without
/// roots, reachability is not checked (any rule may be queried directly).
#[derive(Debug, Clone, Default)]
pub struct LdlEnv {
    /// Known extensional (fact) predicates, with their arities.
    pub edb: Option<BTreeMap<String, usize>>,
    /// Predicates queried from outside the program. Rules not (transitively)
    /// feeding a root are dead code.
    pub roots: Option<BTreeSet<String>>,
}

impl LdlEnv {
    /// No assumptions: only safety, stratification, internal arity
    /// consistency, duplicates, and builtin checks run.
    pub fn permissive() -> Self {
        LdlEnv::default()
    }

    pub fn with_edb<I, S>(mut self, schema: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        self.edb = Some(schema.into_iter().map(|(p, a)| (p.into(), a)).collect());
        self
    }

    pub fn with_roots<I, S>(mut self, roots: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.roots = Some(roots.into_iter().map(Into::into).collect());
        self
    }
}

/// Analyzes LDL source text. Syntax errors abort with a single IS001 (there
/// is nothing meaningful to analyze past a parse failure); otherwise all
/// semantic checks run over every rule and the report carries source spans.
pub fn analyze_ldl_source(origin: &str, src: &str, env: &LdlEnv) -> Report {
    match parse_rules_spanned(src) {
        Err(e) => {
            let mut report = Report::new(origin);
            let at = e.position.min(src.len());
            report.push(Diagnostic::error(Code::SyntaxError, e.message).with_span(Span::point(at)));
            report
        }
        Ok(spanned) => {
            let rules: Vec<(Rule, Option<Span>)> =
                spanned.into_iter().map(|s| (s.rule, Some(Span::new(s.start, s.end)))).collect();
            analyze_rules(origin, &rules, env)
        }
    }
}

/// Analyzes an already-parsed rule set. Spans are optional — programs
/// assembled programmatically (the broker's compiled rule base) have none.
pub fn analyze_rules(origin: &str, rules: &[(Rule, Option<Span>)], env: &LdlEnv) -> Report {
    let mut report = Report::new(origin);
    check_safety(rules, &mut report);
    check_duplicates(rules, &mut report);
    check_arities(rules, env, &mut report);
    check_undefined(rules, env, &mut report);
    check_stratification(rules, &mut report);
    check_reachability(rules, env, &mut report);
    check_builtins(rules, &mut report);
    report.sorted()
}

fn push_at(report: &mut Report, d: Diagnostic, span: Option<Span>) {
    match span {
        Some(s) => report.push(d.with_span(s)),
        None => report.push(d),
    }
}

fn check_safety(rules: &[(Rule, Option<Span>)], report: &mut Report) {
    for (rule, span) in rules {
        match rule.check_safety() {
            Ok(()) => {}
            Err(RuleError::UnsafeHeadVar { var, .. }) => push_at(
                report,
                Diagnostic::new(
                    Code::UnsafeHeadVar,
                    format!(
                        "head variable {var} of '{rule}' is not bound by a positive body literal"
                    ),
                ),
                *span,
            ),
            Err(RuleError::UnboundVar { var, .. }) => push_at(
                report,
                Diagnostic::new(
                    Code::UnboundVar,
                    format!(
                        "variable {var} in a negated or builtin literal of '{rule}' is not \
                         bound by a positive body literal"
                    ),
                ),
                *span,
            ),
        }
    }
}

fn check_duplicates(rules: &[(Rule, Option<Span>)], report: &mut Report) {
    for (i, (rule, span)) in rules.iter().enumerate() {
        if rules[..i].iter().any(|(earlier, _)| earlier == rule) {
            push_at(
                report,
                Diagnostic::new(Code::DuplicateRule, format!("duplicate rule '{rule}'")),
                *span,
            );
        }
    }
}

/// Atoms of a rule (head + positive/negative body atoms) as
/// `(pred, arity, is_head)`.
fn rule_atoms(rule: &Rule) -> Vec<(&str, usize, bool)> {
    let mut out = vec![(rule.head.pred.as_str(), rule.head.args.len(), true)];
    for lit in &rule.body {
        if let Literal::Pos(a) | Literal::Neg(a) = lit {
            out.push((a.pred.as_str(), a.args.len(), false));
        }
    }
    out
}

fn check_arities(rules: &[(Rule, Option<Span>)], env: &LdlEnv, report: &mut Report) {
    // First use fixes the arity; the EDB schema (when present) counts as
    // the first use for its predicates.
    let mut seen: BTreeMap<String, (usize, String)> = BTreeMap::new();
    if let Some(edb) = &env.edb {
        for (pred, arity) in edb {
            seen.insert(pred.clone(), (*arity, "the EDB schema".to_string()));
        }
    }
    for (rule, span) in rules {
        for (pred, arity, _) in rule_atoms(rule) {
            match seen.get(pred) {
                Some((expected, first)) if *expected != arity => {
                    push_at(
                        report,
                        Diagnostic::new(
                            Code::ArityMismatch,
                            format!(
                                "predicate '{pred}' used with arity {arity} but {first} \
                                 uses arity {expected}"
                            ),
                        ),
                        *span,
                    );
                }
                Some(_) => {}
                None => {
                    seen.insert(pred.to_string(), (arity, format!("'{rule}'")));
                }
            }
        }
    }
}

fn check_undefined(rules: &[(Rule, Option<Span>)], env: &LdlEnv, report: &mut Report) {
    let Some(edb) = &env.edb else { return };
    let defined: BTreeSet<&str> = rules
        .iter()
        .map(|(r, _)| r.head.pred.as_str())
        .chain(edb.keys().map(String::as_str))
        .collect();
    for (rule, span) in rules {
        for lit in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = lit {
                if !defined.contains(a.pred.as_str()) {
                    push_at(
                        report,
                        Diagnostic::new(
                            Code::UndefinedPredicate,
                            format!(
                                "predicate '{}' in '{rule}' is neither defined by a rule \
                                 nor part of the EDB schema",
                                a.pred
                            ),
                        ),
                        *span,
                    );
                }
            }
        }
    }
}

/// Tarjan's strongly-connected components over the predicate dependency
/// graph (edge: head → body predicate), iterative to avoid recursion-depth
/// limits on adversarial inputs.
fn sccs(nodes: &[&str], adj: &BTreeMap<&str, Vec<&str>>) -> BTreeMap<String, usize> {
    struct Frame<'a> {
        node: &'a str,
        next_child: usize,
    }
    let mut index_of: BTreeMap<&str, usize> = BTreeMap::new();
    let mut low: BTreeMap<&str, usize> = BTreeMap::new();
    let mut on_stack: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut comp: BTreeMap<String, usize> = BTreeMap::new();
    let mut next_index = 0;
    let mut next_comp = 0;
    for &start in nodes {
        if index_of.contains_key(start) {
            continue;
        }
        let mut frames = vec![Frame { node: start, next_child: 0 }];
        index_of.insert(start, next_index);
        low.insert(start, next_index);
        next_index += 1;
        stack.push(start);
        on_stack.insert(start);
        while let Some(frame) = frames.last_mut() {
            let node = frame.node;
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if frame.next_child < children.len() {
                let child = children[frame.next_child];
                frame.next_child += 1;
                if !index_of.contains_key(child) {
                    index_of.insert(child, next_index);
                    low.insert(child, next_index);
                    next_index += 1;
                    stack.push(child);
                    on_stack.insert(child);
                    frames.push(Frame { node: child, next_child: 0 });
                } else if on_stack.contains(child) {
                    let l = low[node].min(index_of[child]);
                    low.insert(node, l);
                }
            } else {
                if low[node] == index_of[node] {
                    while let Some(top) = stack.pop() {
                        on_stack.remove(top);
                        comp.insert(top.to_string(), next_comp);
                        if top == node {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                let done = frames.pop().expect("frame present");
                if let Some(parent) = frames.last() {
                    let l = low[parent.node].min(low[done.node]);
                    low.insert(parent.node, l);
                }
            }
        }
    }
    comp
}

fn check_stratification(rules: &[(Rule, Option<Span>)], report: &mut Report) {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    // (head, dep, rule index) for every negative edge.
    let mut neg_edges: Vec<(&str, &str, usize)> = Vec::new();
    for (i, (rule, _)) in rules.iter().enumerate() {
        let head = rule.head.pred.as_str();
        nodes.insert(head);
        for (dep, negated) in rule.dependencies() {
            nodes.insert(dep);
            adj.entry(head).or_default().push(dep);
            if negated {
                neg_edges.push((head, dep, i));
            }
        }
    }
    let node_list: Vec<&str> = nodes.iter().copied().collect();
    let comp = sccs(&node_list, &adj);
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (head, dep, rule_idx) in neg_edges {
        if comp[head] != comp[dep] || !reported.insert((head, dep)) {
            continue;
        }
        let cycle = cycle_through(head, dep, &adj, &comp);
        let span = rules[rule_idx].1;
        push_at(
            report,
            Diagnostic::new(
                Code::RecursionThroughNegation,
                format!("recursion through negation: {cycle}"),
            )
            .with_note(format!("the negative dependency is introduced by '{}'", rules[rule_idx].0)),
            span,
        );
    }
}

/// Renders the cycle realized by the negative edge `head -> not dep` plus a
/// shortest positive-graph path from `dep` back to `head` inside the SCC.
fn cycle_through(
    head: &str,
    dep: &str,
    adj: &BTreeMap<&str, Vec<&str>>,
    comp: &BTreeMap<String, usize>,
) -> String {
    let target_comp = comp[head];
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([dep]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([dep]);
    while let Some(node) = queue.pop_front() {
        if node == head {
            break;
        }
        for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            if comp.get(next) == Some(&target_comp) && seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    // Walk back head → … → dep, then print forward.
    let mut path = vec![head];
    let mut cur = head;
    while cur != dep {
        match prev.get(cur) {
            Some(&p) => {
                path.push(p);
                cur = p;
            }
            None => break, // self-loop (head == dep) or disconnected: path is just [head]
        }
    }
    path.reverse(); // dep → … → head
    let mut out = format!("'{head}' -> not '{dep}'");
    for step in path.iter().skip(1) {
        out.push_str(&format!(" -> '{step}'"));
    }
    if path.len() <= 1 && head != dep {
        out.push_str(&format!(" -> '{head}'"));
    }
    out
}

fn check_reachability(rules: &[(Rule, Option<Span>)], env: &LdlEnv, report: &mut Report) {
    let Some(roots) = &env.roots else { return };
    // A predicate is *needed* if it is a root or occurs in the body of a
    // rule whose head is needed.
    let mut needed: BTreeSet<&str> = roots.iter().map(String::as_str).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (rule, _) in rules {
            if !needed.contains(rule.head.pred.as_str()) {
                continue;
            }
            for (dep, _) in rule.dependencies() {
                changed |= needed.insert(dep);
            }
        }
    }
    for (rule, span) in rules {
        if !needed.contains(rule.head.pred.as_str()) {
            push_at(
                report,
                Diagnostic::new(
                    Code::UnreachableRule,
                    format!(
                        "rule '{rule}' is unreachable: '{}' does not feed any root predicate",
                        rule.head.pred
                    ),
                ),
                *span,
            );
        }
    }
}

/// The comparability class of a constant: symbols, strings, and numbers
/// are three mutually incomparable families (`Const::compare` bridges
/// `Int` and `Float` but nothing else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Sym,
    Str,
    Num,
}

fn kind_of(c: &Const) -> Kind {
    match c {
        Const::Sym(_) => Kind::Sym,
        Const::Str(_) => Kind::Str,
        Const::Int(_) | Const::FloatBits(_) => Kind::Num,
    }
}

fn kind_name(k: Kind) -> &'static str {
    match k {
        Kind::Sym => "symbol",
        Kind::Str => "string",
        Kind::Num => "number",
    }
}

fn check_builtins(rules: &[(Rule, Option<Span>)], report: &mut Report) {
    for (rule, span) in rules {
        // Constant kinds each variable is tested against with an
        // order/equality operator (`!=` succeeds across kinds, so it never
        // constrains the kind).
        let mut var_kinds: BTreeMap<&str, BTreeSet<Kind>> = BTreeMap::new();
        for lit in &rule.body {
            if let Literal::Cmp { op, lhs, rhs } = lit {
                match (lhs, rhs) {
                    (Term::Const(a), Term::Const(b)) if !op.eval(a, b) => {
                        push_at(
                            report,
                            Diagnostic::new(
                                Code::ImpossibleComparison,
                                format!(
                                    "comparison '{a} {op} {b}' in '{rule}' is always \
                                     false; the rule can never fire"
                                ),
                            ),
                            *span,
                        );
                    }
                    (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v))
                        if *op != infosleuth_ldl::CmpOp::Ne =>
                    {
                        var_kinds.entry(v.as_str()).or_default().insert(kind_of(c));
                    }
                    _ => {}
                }
            }
        }
        for (var, kinds) in var_kinds {
            if kinds.len() > 1 {
                let names: Vec<&str> = kinds.iter().map(|&k| kind_name(k)).collect();
                push_at(
                    report,
                    Diagnostic::new(
                        Code::ImpossibleComparison,
                        format!(
                            "variable {var} in '{rule}' is compared against incomparable \
                             constant kinds ({}); no value satisfies all tests",
                            names.join(", ")
                        ),
                    ),
                    *span,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(src: &str, env: &LdlEnv) -> Vec<Code> {
        analyze_ldl_source("test.ldl", src, env).codes()
    }

    #[test]
    fn clean_program_is_clean() {
        let src = "path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).";
        let env = LdlEnv::permissive().with_edb([("edge", 2)]).with_roots(["path"]);
        let r = analyze_ldl_source("t", src, &env);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn syntax_error_is_is001_with_position() {
        let r = analyze_ldl_source("t", "p(X :- q(X).", &LdlEnv::permissive());
        assert_eq!(r.codes(), vec![Code::SyntaxError]);
        assert!(r.diagnostics[0].span.is_some());
    }

    #[test]
    fn unsafe_head_var_is_is002() {
        assert_eq!(codes("p(X, Y) :- q(X).", &LdlEnv::permissive()), vec![Code::UnsafeHeadVar]);
    }

    #[test]
    fn unbound_negation_var_is_is003() {
        assert_eq!(codes("p(X) :- q(X), not r(Y).", &LdlEnv::permissive()), vec![Code::UnboundVar]);
    }

    #[test]
    fn negation_cycle_is_is010_with_cycle_text() {
        let r = analyze_ldl_source(
            "t",
            "a(X) :- c(X), not b(X). b(X) :- c(X), not a(X).",
            &LdlEnv::permissive(),
        );
        assert_eq!(r.codes(), vec![Code::RecursionThroughNegation; 2]);
        assert!(r.diagnostics[0].message.contains("-> not"), "{}", r.diagnostics[0].message);
    }

    #[test]
    fn self_negation_reports_tight_cycle() {
        let r = analyze_ldl_source("t", "p(X) :- q(X), not p(X).", &LdlEnv::permissive());
        assert_eq!(r.codes(), vec![Code::RecursionThroughNegation]);
        assert!(
            r.diagnostics[0].message.contains("'p' -> not 'p'"),
            "{}",
            r.diagnostics[0].message
        );
    }

    #[test]
    fn undefined_predicate_needs_schema() {
        let src = "p(X) :- mystery(X).";
        assert!(codes(src, &LdlEnv::permissive()).is_empty());
        assert_eq!(
            codes(src, &LdlEnv::permissive().with_edb([("base", 1)])),
            vec![Code::UndefinedPredicate]
        );
    }

    #[test]
    fn arity_mismatch_is_is013() {
        assert_eq!(
            codes("p(X) :- q(X). r(X) :- q(X, X).", &LdlEnv::permissive()),
            vec![Code::ArityMismatch]
        );
        // EDB schema arity is authoritative.
        assert_eq!(
            codes("p(X) :- base(X, X).", &LdlEnv::permissive().with_edb([("base", 1)])),
            vec![Code::ArityMismatch]
        );
    }

    #[test]
    fn unreachable_rule_is_is012_warning() {
        let r = analyze_ldl_source(
            "t",
            "goal(X) :- base(X). orphan(X) :- base(X).",
            &LdlEnv::permissive().with_roots(["goal"]),
        );
        assert_eq!(r.codes(), vec![Code::UnreachableRule]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(r.diagnostics[0].message.contains("orphan"));
    }

    #[test]
    fn helpers_of_roots_are_reachable() {
        let src = "goal(X) :- helper(X). helper(X) :- base(X).";
        assert!(codes(src, &LdlEnv::permissive().with_roots(["goal"])).is_empty());
    }

    #[test]
    fn impossible_comparisons_are_is014() {
        // Statically false constant comparison.
        assert_eq!(
            codes("p(X) :- q(X), 3 < 2.", &LdlEnv::permissive()),
            vec![Code::ImpossibleComparison]
        );
        // Incomparable kinds on one variable.
        assert_eq!(
            codes("p(X) :- q(X), X < 5, X = \"a\".", &LdlEnv::permissive()),
            vec![Code::ImpossibleComparison]
        );
        // `!=` across kinds is fine.
        assert!(codes("p(X) :- q(X), X < 5, X != \"a\".", &LdlEnv::permissive()).is_empty());
    }

    #[test]
    fn duplicate_rule_is_is015_warning() {
        let r = analyze_ldl_source("t", "p(X) :- q(X). p(X) :- q(X).", &LdlEnv::permissive());
        assert_eq!(r.codes(), vec![Code::DuplicateRule]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn spans_point_at_the_offending_rule() {
        let src = "good(X) :- base(X).\nbad(X, Y) :- base(X).";
        let r = analyze_ldl_source("t", src, &LdlEnv::permissive());
        assert_eq!(r.codes(), vec![Code::UnsafeHeadVar]);
        let span = r.diagnostics[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "bad(X, Y) :- base(X).");
    }
}
