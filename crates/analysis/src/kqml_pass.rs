//! KQML conformance checks.
//!
//! Two entry points: [`analyze_message`] checks a concrete message for
//! performative/parameter well-formedness, and [`analyze_template`] checks
//! a conversation template (a pattern with `?var` wildcards) for
//! structural problems that would make it unmatchable.

use crate::diag::{Code, Diagnostic, Report};
use infosleuth_kqml::{Message, Performative, SExpr, Template};
use std::collections::BTreeSet;

/// Reserved parameters whose values must be textual (an atom or a string),
/// per the KQML parameter conventions. Keys omit the leading `:`, matching
/// [`Message::params`].
const TEXT_RESERVED: &[&str] =
    &["sender", "receiver", "language", "ontology", "reply-with", "in-reply-to"];

/// Performatives that carry a request or assertion and therefore need a
/// `:content` parameter.
const NEEDS_CONTENT: &[Performative] = &[
    Performative::Advertise,
    Performative::Update,
    Performative::AskAll,
    Performative::AskOne,
    Performative::Tell,
    Performative::Subscribe,
    Performative::BrokerOne,
    Performative::RecruitAll,
    Performative::RecruitOne,
];

/// Checks one message. The report origin is the performative.
pub fn analyze_message(msg: &Message) -> Report {
    let mut report = Report::new(format!("kqml:{}", msg.performative.as_str()));
    if let Performative::Other(p) = &msg.performative {
        report.push(Diagnostic::warning(
            Code::UnknownPerformative,
            format!("performative '{p}' is not a standard InfoSleuth performative"),
        ));
    }
    if NEEDS_CONTENT.contains(&msg.performative) && msg.content().is_none() {
        report.push(
            Diagnostic::new(
                Code::MissingParameter,
                format!("'{}' message has no :content parameter", msg.performative.as_str()),
            )
            .with_note("a content-bearing performative without :content cannot be acted on"),
        );
    }
    if matches!(msg.performative, Performative::Reply | Performative::Sorry)
        && msg.in_reply_to().is_none()
    {
        report.push(
            Diagnostic::new(
                Code::MissingParameter,
                format!("'{}' message has no :in-reply-to parameter", msg.performative.as_str()),
            )
            .with_note("the requester cannot correlate this response with its query"),
        );
    }
    for (key, value) in msg.params() {
        if TEXT_RESERVED.contains(&key) && value.as_text().is_none() {
            report.push(Diagnostic::new(
                Code::NonTextReservedParameter,
                format!("reserved parameter ':{key}' must be an atom or string, got '{value}'"),
            ));
        }
        // `:x-trace` is the whitelisted trace-propagation parameter; a
        // well-formed value is an opaque rider, anything else would
        // silently break cross-agent trace correlation.
        if key == infosleuth_obs::TRACE_PARAM {
            let valid = value.as_text().and_then(infosleuth_obs::TraceContext::parse).is_some();
            if !valid {
                report.push(
                    Diagnostic::new(
                        Code::InvalidTraceContext,
                        format!(
                            ":{key} must encode a trace context as \
                             \"<trace-hex16>-<span-hex16>\", got '{value}'"
                        ),
                    )
                    .with_note("receivers would drop the context and start an unrelated trace"),
                );
            }
        }
    }
    report.sorted()
}

/// Checks one conversation template pattern.
pub fn analyze_template(origin: &str, template: &Template) -> Report {
    let mut report = Report::new(origin);
    check_pattern(template.pattern(), &mut report);
    report.sorted()
}

fn check_pattern(pattern: &SExpr, report: &mut Report) {
    let Some(items) = pattern.as_list() else {
        report.push(Diagnostic::new(
            Code::MalformedTemplate,
            format!("template pattern must be a list, got '{pattern}'"),
        ));
        return;
    };
    let Some(head) = items.first() else {
        report.push(Diagnostic::new(
            Code::MalformedTemplate,
            "template pattern is an empty list".to_string(),
        ));
        return;
    };
    match head {
        SExpr::Atom(_) if head.is_variable() => {}
        SExpr::Atom(name) => {
            if matches!(Performative::from(name.as_str()), Performative::Other(_)) {
                report.push(Diagnostic::warning(
                    Code::UnknownPerformative,
                    format!("template head '{name}' is not a standard InfoSleuth performative"),
                ));
            }
        }
        other => {
            report.push(Diagnostic::new(
                Code::MalformedTemplate,
                format!("template head must be a performative atom or a variable, got '{other}'"),
            ));
        }
    }
    // After the head: alternating `:keyword value` pairs.
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut rest = &items[1..];
    while let Some((key, tail)) = rest.split_first() {
        let Some(name) = key.as_atom().filter(|_| key.is_keyword()) else {
            report.push(Diagnostic::new(
                Code::MalformedTemplate,
                format!("expected a :keyword parameter name, got '{key}'"),
            ));
            return;
        };
        if !seen.insert(name) {
            report.push(Diagnostic::new(
                Code::MalformedTemplate,
                format!("duplicate parameter '{name}' in template"),
            ));
        }
        let Some((_value, tail)) = tail.split_first() else {
            report.push(Diagnostic::new(
                Code::MalformedTemplate,
                format!("parameter '{name}' has no value (dangling keyword at end of template)"),
            ));
            return;
        };
        rest = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn wellformed_ask_all_is_clean() {
        let msg = Message::parse(
            r#"(ask-all :sender ua1 :receiver broker :language "LDL" :content (run C2))"#,
        )
        .unwrap();
        let r = analyze_message(&msg);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unknown_performative_is_is030_warning() {
        let msg = Message::new(Performative::Other("achieve".into()));
        let r = analyze_message(&msg);
        assert_eq!(r.codes(), vec![Code::UnknownPerformative]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(!r.has_errors());
    }

    #[test]
    fn missing_content_is_is031() {
        let msg = Message::new(Performative::AskOne).with_sender("ua1");
        let r = analyze_message(&msg);
        assert_eq!(r.codes(), vec![Code::MissingParameter]);
    }

    #[test]
    fn reply_without_in_reply_to_is_is031() {
        let msg = Message::new(Performative::Reply).with_sender("broker");
        let r = analyze_message(&msg);
        assert_eq!(r.codes(), vec![Code::MissingParameter]);
        // A correlated reply is fine.
        let ok = Message::new(Performative::Reply).with_in_reply_to("q1");
        assert!(analyze_message(&ok).is_clean());
    }

    #[test]
    fn non_text_reserved_parameter_is_is033() {
        let msg = Message::new(Performative::Tell)
            .with_content(SExpr::atom("x"))
            .with("sender", SExpr::list([SExpr::atom("not"), SExpr::atom("text")]));
        let r = analyze_message(&msg);
        assert_eq!(r.codes(), vec![Code::NonTextReservedParameter]);
    }

    #[test]
    fn valid_x_trace_is_whitelisted() {
        let ctx = infosleuth_obs::TraceContext {
            trace: infosleuth_obs::TraceId(0xdead_beef_0000_0001),
            span: infosleuth_obs::SpanId(0x1234_5678_9abc_def0),
        };
        let msg = Message::new(Performative::Tell)
            .with_content(SExpr::atom("x"))
            .with_trace(ctx.encode());
        let r = analyze_message(&msg);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn malformed_x_trace_is_is034() {
        for bad in [
            SExpr::string("not-a-context"),
            SExpr::atom("deadbeef"),
            SExpr::list([SExpr::atom("l")]),
        ] {
            let msg = Message::new(Performative::Tell)
                .with_content(SExpr::atom("x"))
                .with("x-trace", bad);
            let r = analyze_message(&msg);
            assert_eq!(r.codes(), vec![Code::InvalidTraceContext], "{:?}", r.diagnostics);
            assert!(r.has_errors(), "IS034 blocks");
        }
    }

    #[test]
    fn wellformed_template_is_clean() {
        let t = Template::parse("(ask-all :sender ?who :content ?q)").unwrap();
        assert!(analyze_template("t", &t).is_clean());
        // A variable head matches any performative; also fine.
        let t = Template::parse("(?perf :sender ?who)").unwrap();
        assert!(analyze_template("t", &t).is_clean());
    }

    #[test]
    fn dangling_keyword_is_is032() {
        let t = Template::parse("(ask-all :sender ?who :content)").unwrap();
        let r = analyze_template("t", &t);
        assert_eq!(r.codes(), vec![Code::MalformedTemplate]);
    }

    #[test]
    fn duplicate_and_nonkeyword_params_are_is032() {
        let t = Template::parse("(tell :content a :content b)").unwrap();
        assert_eq!(analyze_template("t", &t).codes(), vec![Code::MalformedTemplate]);
        let t = Template::parse("(tell stray a)").unwrap();
        assert_eq!(analyze_template("t", &t).codes(), vec![Code::MalformedTemplate]);
    }

    #[test]
    fn unknown_template_head_is_is030() {
        let t = Template::parse("(achieve :content ?x)").unwrap();
        let r = analyze_template("t", &t);
        assert_eq!(r.codes(), vec![Code::UnknownPerformative]);
        assert!(!r.has_errors());
    }

    #[test]
    fn non_list_template_is_is032() {
        let t = Template::new(SExpr::atom("tell"));
        let r = analyze_template("t", &t);
        assert_eq!(r.codes(), vec![Code::MalformedTemplate]);
    }
}
