//! Static analysis of standing service queries (subscriptions).
//!
//! A `subscribe` performative registers a service query that the broker
//! re-evaluates on every repository mutation for as long as the
//! subscription lives, so a query that can never match (IS026) or that
//! matches *everything* (IS027) is worth rejecting at admission instead of
//! paying for it on every churn event. The vocabulary checks reuse the
//! advertisement codes: classes (IS021), slots (IS022), and capabilities
//! (IS023) are validated against the same [`AdContext`] the broker builds
//! for advertisement admission.

use crate::ad_pass::AdContext;
use crate::diag::{Code, Diagnostic, Report};
use infosleuth_ontology::{Ontology, ServiceQuery};

/// Runs every subscription-query check; `origin` names the artifact (an
/// agent name, a file path).
pub fn analyze_service_query(origin: &str, query: &ServiceQuery, ctx: &AdContext<'_>) -> Report {
    let mut report = Report::new(origin);
    if !query.constraints.is_satisfiable() {
        report.push(
            Diagnostic::new(
                Code::UnsatisfiableSubscription,
                format!(
                    "subscription constraints are unsatisfiable: {}",
                    query.constraints.to_text()
                ),
            )
            .with_note("the standing query can never match any agent; refuse it at admission"),
        );
    }
    if is_vacuous(query) {
        report.push(
            Diagnostic::new(
                Code::VacuousSubscription,
                "subscription constrains nothing: it matches every agent and fires on every \
                 repository mutation",
            )
            .with_note("require at least one dimension (type, class, capability, constraint, ...)"),
        );
    }
    if let Some(tax) = ctx.taxonomy() {
        for cap in &query.capabilities {
            if !tax.contains(cap.as_str()) {
                report.push(Diagnostic::new(
                    Code::UnknownCapability,
                    format!("capability '{}' is not in the capability taxonomy", cap.as_str()),
                ));
            }
        }
    }
    // Vocabulary checks need a declared, registered ontology; the broker
    // cannot check what it does not know.
    if let Some(onto) = query.ontology.as_deref().and_then(|o| ctx.ontology(o)) {
        for class in &query.classes {
            if onto.class(class).is_none() {
                report.push(Diagnostic::new(
                    Code::UnknownClass,
                    format!("class '{class}' is unknown to ontology '{}'", onto.name),
                ));
            }
        }
        for slot in &query.slots {
            if !slot_known(slot, query, onto) {
                report.push(Diagnostic::new(
                    Code::UnknownSlot,
                    format!("slot '{slot}' is unknown to ontology '{}'", onto.name),
                ));
            }
        }
        // Constrained slots are advisory, as in the advertisement pass: a
        // constraint over an unknown slot can never meet advertised data.
        for slot in query.constraints.constrained_slots() {
            if !slot_known(slot, query, onto) {
                report.push(Diagnostic::warning(
                    Code::UnknownSlot,
                    format!("constrained slot '{slot}' is unknown to ontology '{}'", onto.name),
                ));
            }
        }
    }
    report.sorted()
}

/// Whether the query constrains nothing at all. `max_matches` alone does
/// not select — a "first match of anything" standing query still fires on
/// every mutation.
fn is_vacuous(q: &ServiceQuery) -> bool {
    q.agent_type.is_none()
        && q.agent_name.is_none()
        && q.query_language.is_none()
        && q.communication_language.is_none()
        && q.conversations.is_empty()
        && q.capabilities.is_empty()
        && q.ontology.is_none()
        && q.classes.is_empty()
        && q.slots.is_empty()
        && q.constraints.is_trivial()
        && q.max_response_time.is_none()
        && q.require_mobile.is_none()
        && q.require_cloneable.is_none()
}

/// Whether a (possibly dotted `class.slot`) slot name resolves in the
/// ontology, scoped to the query's classes when it names any.
fn slot_known(slot: &str, query: &ServiceQuery, onto: &Ontology) -> bool {
    if let Some((class, bare)) = slot.split_once('.') {
        return match onto.all_slots(class) {
            Ok(slots) => slots.iter().any(|s| s.name == bare),
            Err(_) => false,
        };
    }
    let mut candidates: Vec<&str> = query.classes.iter().map(String::as_str).collect();
    if candidates.is_empty() {
        candidates = onto.class_names().collect();
    }
    candidates.iter().any(|class| {
        onto.all_slots(class).map(|slots| slots.iter().any(|s| s.name == slot)).unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        healthcare_ontology, standard_capability_taxonomy, AgentType, Capability,
    };

    fn ctx<'a>(tax: &'a infosleuth_ontology::Taxonomy, onto: &'a Ontology) -> AdContext<'a> {
        AdContext::new().with_taxonomy(tax).with_ontologies([onto])
    }

    #[test]
    fn wellformed_subscription_is_clean() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("healthcare")
            .with_classes(["patient"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                25,
                65,
            )]));
        let r = analyze_service_query("watcher", &q, &ctx(&tax, &onto));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unsatisfiable_constraints_are_is026() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_constraints(
            Conjunction::from_predicates(vec![
                Predicate::gt("patient.age", 70),
                Predicate::lt("patient.age", 20),
            ]),
        );
        let r = analyze_service_query("watcher", &q, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnsatisfiableSubscription]);
        assert!(r.has_errors());
    }

    #[test]
    fn vacuous_subscription_is_is027() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let r = analyze_service_query("watcher", &ServiceQuery::any(), &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::VacuousSubscription]);
        assert!(r.has_errors());
        // max_matches alone does not make it selective.
        let r = analyze_service_query("watcher", &ServiceQuery::any().one(), &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::VacuousSubscription]);
        // Any single dimension does.
        let q = ServiceQuery::for_agent_type(AgentType::Resource);
        assert!(analyze_service_query("watcher", &q, &ctx(&tax, &onto)).is_clean());
    }

    #[test]
    fn unknown_vocabulary_reuses_ad_codes() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let q = ServiceQuery::any()
            .with_ontology("healthcare")
            .with_classes(["martian"])
            .with_slots(["patient.blood_type"])
            .with_capability(Capability::new("quantum-foo"));
        let r = analyze_service_query("watcher", &q, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnknownClass, Code::UnknownSlot, Code::UnknownCapability]);
    }

    #[test]
    fn unknown_constraint_slot_warns() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let q = ServiceQuery::any().with_ontology("healthcare").with_constraints(
            Conjunction::from_predicates(vec![Predicate::eq("patient.nonexistent", 1)]),
        );
        let r = analyze_service_query("watcher", &q, &ctx(&tax, &onto));
        assert_eq!(r.codes(), vec![Code::UnknownSlot]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(!r.has_errors());
    }

    #[test]
    fn undeclared_ontology_skips_vocabulary_checks() {
        let tax = standard_capability_taxonomy();
        let onto = healthcare_ontology();
        let q = ServiceQuery::any().with_ontology("mystery").with_classes(["whatever"]);
        let r = analyze_service_query("watcher", &q, &ctx(&tax, &onto));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }
}
