//! Compilation of advertisements into LDL facts, and the matchmaking rule
//! program the broker's reasoning engine runs over them.
//!
//! The fact schema:
//!
//! ```text
//! agent(Name, Type)           % agent name and type
//! lang(Name, "SQL 2.0")       % interface query language
//! comm(Name, "KQML")          % communication language
//! conv(Name, ask-all)         % supported conversation type
//! cap(Name, Cap)              % advertised capability
//! onto(Name, Onto)            % supported ontology
//! class(Name, Onto, Class)    % supported ontology class
//! slot(Name, Onto, Slot)      % supported ontology slot
//! isa_cap(Parent, Child)      % capability-taxonomy edge (Fig. 2)
//! isa_class(Onto, Sup, Sub)   % domain class-hierarchy edge
//! ```
//!
//! The derived predicates give the subsumption reasoning of §2.1:
//! `provides(Agent, Req)` holds when an advertised capability covers the
//! requested one, and `contributes_class(Agent, Onto, Req)` when the agent
//! holds the requested class, a superclass of it (full coverage), or a
//! subclass of it (partial contribution — the class-hierarchy query stream).

use infosleuth_ldl::{parse_rules, Const, Database, LdlParseError, Program, Rule};
use infosleuth_ontology::{Advertisement, Ontology, Taxonomy};

/// Compiles advertisements plus taxonomy knowledge into an extensional
/// database for the matchmaking program.
pub fn compile_facts<'a, A, O>(agents: A, capability_taxonomy: &Taxonomy, ontologies: O) -> Database
where
    A: IntoIterator<Item = &'a Advertisement>,
    O: IntoIterator<Item = &'a Ontology>,
{
    let mut db = compile_global_facts(capability_taxonomy, ontologies);
    for ad in agents {
        assert_agent_facts(&mut db, ad);
    }
    db
}

/// Compiles just one advertisement's facts — the delta that asserting or
/// retracting that advertisement applies to the extensional database.
/// Every tuple leads with the agent name, so two agents' fact sets are
/// disjoint and an agent's facts can be added or subtracted independently.
pub fn compile_agent_facts(ad: &Advertisement) -> Database {
    let mut db = Database::new();
    assert_agent_facts(&mut db, ad);
    db
}

fn assert_agent_facts(db: &mut Database, ad: &Advertisement) {
    let name = Const::sym(&ad.location.name);
    db.assert("agent", vec![name.clone(), Const::sym(ad.location.agent_type.to_string())]);
    for l in &ad.syntactic.query_languages {
        db.assert("lang", vec![name.clone(), Const::str(l.clone())]);
    }
    for l in &ad.syntactic.communication_languages {
        db.assert("comm", vec![name.clone(), Const::str(l.clone())]);
    }
    for c in &ad.semantic.conversations {
        db.assert("conv", vec![name.clone(), Const::sym(c.to_string())]);
    }
    for c in &ad.semantic.capabilities {
        db.assert("cap", vec![name.clone(), Const::sym(c.as_str())]);
    }
    for content in &ad.semantic.content {
        let onto = Const::sym(&content.ontology);
        db.assert("onto", vec![name.clone(), onto.clone()]);
        for class in &content.classes {
            db.assert("class", vec![name.clone(), onto.clone(), Const::sym(class)]);
        }
        for slot in &content.slots {
            db.assert("slot", vec![name.clone(), onto.clone(), Const::sym(slot)]);
        }
    }
}

/// Compiles the advertisement-independent facts: the capability taxonomy
/// and the domain class hierarchies.
pub fn compile_global_facts<'a, O>(capability_taxonomy: &Taxonomy, ontologies: O) -> Database
where
    O: IntoIterator<Item = &'a Ontology>,
{
    let mut db = Database::new();
    // Capability-taxonomy edges.
    for node in capability_taxonomy.nodes() {
        for child in capability_taxonomy.children_of(node) {
            db.assert("isa_cap", vec![Const::sym(node), Const::sym(child)]);
        }
    }
    // Domain class hierarchies.
    for o in ontologies {
        let onto = Const::sym(&o.name);
        for class in o.class_names() {
            for child in o.hierarchy().children_of(class) {
                db.assert("isa_class", vec![onto.clone(), Const::sym(class), Const::sym(child)]);
            }
        }
    }
    db
}

/// The standard matchmaking rule base extended with derived-concept rules
/// (§2.1: the broker "can reason over class-subclasses and derived
/// concepts relationships"). Fails if the combined base is not
/// stratifiable or a derived rule is unsafe.
pub fn matchmaking_program_with(derived: &[Rule]) -> Result<Program, LdlParseError> {
    let mut rules: Vec<Rule> = matchmaking_program().rules().to_vec();
    rules.extend(derived.iter().cloned());
    Program::new(rules).map_err(|e| LdlParseError { message: e.to_string(), position: 0 })
}

/// The textual source of the standard matchmaking rule base. Exposed so
/// tooling (`infosleuth-lint`) can analyze the shipped rules with source
/// spans instead of re-rendering the compiled program.
pub fn matchmaking_rules_text() -> &'static str {
    r#"
        % Transitive closure of the capability taxonomy (Fig. 2).
        cap_desc(P, C) :- isa_cap(P, C).
        cap_desc(P, C) :- isa_cap(P, B), cap_desc(B, C).

        % "if an agent does all query processing, then it certainly does
        % relational query processing and could process a simple select"
        provides(A, R) :- cap(A, R).
        provides(A, R) :- cap(A, Adv), cap_desc(Adv, R).

        % Transitive closure of each domain class hierarchy.
        class_desc(O, P, C) :- isa_class(O, P, C).
        class_desc(O, P, C) :- isa_class(O, P, B), class_desc(O, B, C).

        % Full coverage: the agent holds the class or an ancestor of it.
        serves_class(A, O, R) :- class(A, O, R).
        serves_class(A, O, R) :- class(A, O, Adv), class_desc(O, Adv, R).

        % Contribution: full coverage, or a subclass of the request (the
        % agent holds part of the requested class's extent).
        contributes_class(A, O, R) :- serves_class(A, O, R).
        contributes_class(A, O, R) :- class(A, O, Adv), class_desc(O, R, Adv).
        "#
}

/// The broker's matchmaking rule base.
pub fn matchmaking_program() -> Program {
    parse_rules(matchmaking_rules_text()).expect("rule base parses") // lint: allow-unwrap
}

/// The extensional fact schema the broker compiles advertisements into:
/// `(predicate, arity)` pairs, matching [`compile_facts`].
pub fn edb_schema() -> [(&'static str, usize); 10] {
    [
        ("agent", 2),
        ("lang", 2),
        ("comm", 2),
        ("conv", 2),
        ("cap", 2),
        ("onto", 2),
        ("class", 3),
        ("slot", 3),
        ("isa_cap", 2),
        ("isa_class", 3),
    ]
}

/// The derived predicates of the standard matchmaking base, with arities.
/// Derived-concept rule deltas may consume these as if they were given.
pub fn derived_schema() -> [(&'static str, usize); 5] {
    [
        ("cap_desc", 2),
        ("provides", 2),
        ("class_desc", 3),
        ("serves_class", 3),
        ("contributes_class", 3),
    ]
}

/// The analysis environment for rule deltas registered against the
/// matchmaking base: the EDB schema plus the base's derived predicates
/// count as defined, and any of them is a legitimate head for a delta
/// rule (the base consumes the EDB predicates, so feeding one is useful
/// work, not dead code).
pub fn matchmaking_env() -> infosleuth_analysis::LdlEnv {
    let known = edb_schema().into_iter().chain(derived_schema());
    infosleuth_analysis::LdlEnv::permissive()
        .with_edb(known.clone().map(|(name, arity)| (name.to_string(), arity)))
        .with_roots(known.map(|(name, _)| name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ldl::parse_query;
    use infosleuth_ontology::{
        paper_class_ontology, standard_capability_taxonomy, AgentLocation, AgentType, Capability,
        OntologyContent, SemanticInfo, SyntacticInfo,
    };

    fn resource(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    #[test]
    fn capability_subsumption_via_rules() {
        let mut general = resource("g", &["C1"]);
        general.semantic.capabilities.clear();
        general.semantic.capabilities.insert(Capability::query_processing());
        let mut narrow = resource("n", &["C1"]);
        narrow.semantic.capabilities.clear();
        narrow.semantic.capabilities.insert(Capability::select());

        let tax = standard_capability_taxonomy();
        let onto = paper_class_ontology();
        let db = compile_facts([&general, &narrow], &tax, [&onto]);
        let model = matchmaking_program().saturate(&db).unwrap();
        // The general agent provides select; the narrow one does not
        // provide full query processing.
        assert!(model.holds(&parse_query("provides(g, select)").unwrap()));
        assert!(model.holds(&parse_query("provides(g, join)").unwrap()));
        assert!(model.holds(&parse_query("provides(n, select)").unwrap()));
        assert!(!model.holds(&parse_query("provides(n, query-processing)").unwrap()));
        assert!(!model.holds(&parse_query("provides(n, join)").unwrap()));
    }

    #[test]
    fn class_hierarchy_contribution() {
        // db1 holds C2 (the whole class); db2 holds only subclass C2a.
        let db1 = resource("db1", &["C2"]);
        let db2 = resource("db2", &["C2a"]);
        let tax = standard_capability_taxonomy();
        let onto = paper_class_ontology();
        let db = compile_facts([&db1, &db2], &tax, [&onto]);
        let model = matchmaking_program().saturate(&db).unwrap();
        // Request for C2a: db1 serves it fully (C2 is an ancestor); db2
        // serves it exactly.
        assert!(model.holds(&parse_query("serves_class(db1, paper-classes, 'C2a')").unwrap()));
        assert!(model.holds(&parse_query("serves_class(db2, paper-classes, 'C2a')").unwrap()));
        // Request for C2: db2 cannot serve all of it, but contributes.
        assert!(!model.holds(&parse_query("serves_class(db2, paper-classes, 'C2')").unwrap()));
        assert!(model.holds(&parse_query("contributes_class(db2, paper-classes, 'C2')").unwrap()));
        assert!(model.holds(&parse_query("serves_class(db1, paper-classes, 'C2')").unwrap()));
    }

    #[test]
    fn languages_and_conversations_become_facts() {
        let ad = resource("r", &["C1"]);
        let tax = standard_capability_taxonomy();
        let db = compile_facts([&ad], &tax, []);
        assert!(db.contains("lang", &[Const::sym("r"), Const::str("SQL 2.0")]));
        assert!(db.contains("comm", &[Const::sym("r"), Const::str("KQML")]));
        assert!(db.contains("agent", &[Const::sym("r"), Const::sym("resource")]));
    }
}
