//! Inter-broker search policies (§4.3).
//!
//! "Our implementation of the inter-broker search policy follows closely
//! those defined for the trading service in CORBA. It is a property list
//! consisting of the following items: hop count … follow option …"

use serde::{Deserialize, Serialize};

/// How far the matchmaking process should look beyond the local broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FollowOption {
    /// "only consider the local broker's repository"
    LocalOnly,
    /// "all repositories"
    AllRepositories,
    /// "as many repositories as are needed to find a single match"
    UntilMatch,
}

impl FollowOption {
    pub fn as_str(&self) -> &'static str {
        match self {
            FollowOption::LocalOnly => "local-only",
            FollowOption::AllRepositories => "all-repositories",
            FollowOption::UntilMatch => "until-match",
        }
    }

    pub fn parse(s: &str) -> Option<FollowOption> {
        Some(match s {
            "local-only" => FollowOption::LocalOnly,
            "all-repositories" => FollowOption::AllRepositories,
            "until-match" => FollowOption::UntilMatch,
            _ => None?,
        })
    }
}

/// The policy a requesting agent attaches to a broker query. "This policy
/// needs to be passed along when one broker forwards a message to another
/// broker."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchPolicy {
    /// "the maximum number of hops between brokers that the request will
    /// traverse. … The default is set to one, which limits the search to
    /// the broker's own consortium and other directly-connected brokers."
    pub hop_count: u32,
    pub follow: FollowOption,
}

impl SearchPolicy {
    /// The paper's defaults for a request wanting `max_matches` agents:
    /// hop count 1; "if the request is for a single agent, this defaults to
    /// the 'until you find a single match' policy; otherwise it defaults to
    /// the 'all repositories' policy."
    pub fn default_for(max_matches: Option<usize>) -> SearchPolicy {
        SearchPolicy {
            hop_count: 1,
            follow: match max_matches {
                Some(1) => FollowOption::UntilMatch,
                _ => FollowOption::AllRepositories,
            },
        }
    }

    /// A local-only policy (no inter-broker search).
    pub fn local() -> SearchPolicy {
        SearchPolicy { hop_count: 0, follow: FollowOption::LocalOnly }
    }

    /// The policy to forward to the next broker: one fewer hop.
    pub fn next_hop(&self) -> SearchPolicy {
        SearchPolicy { hop_count: self.hop_count.saturating_sub(1), follow: self.follow }
    }

    /// Whether this broker should expand the search to peers (given how
    /// many matches it already has).
    pub fn should_expand(&self, matches_so_far: usize) -> bool {
        if self.hop_count == 0 {
            return false;
        }
        match self.follow {
            FollowOption::LocalOnly => false,
            FollowOption::AllRepositories => true,
            FollowOption::UntilMatch => matches_so_far == 0,
        }
    }
}

impl Default for SearchPolicy {
    fn default() -> Self {
        SearchPolicy::default_for(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let all = SearchPolicy::default_for(None);
        assert_eq!(all.hop_count, 1);
        assert_eq!(all.follow, FollowOption::AllRepositories);
        let one = SearchPolicy::default_for(Some(1));
        assert_eq!(one.follow, FollowOption::UntilMatch);
        let many = SearchPolicy::default_for(Some(5));
        assert_eq!(many.follow, FollowOption::AllRepositories);
    }

    #[test]
    fn expansion_rules() {
        let all = SearchPolicy { hop_count: 2, follow: FollowOption::AllRepositories };
        assert!(all.should_expand(0));
        assert!(all.should_expand(10));
        let until = SearchPolicy { hop_count: 2, follow: FollowOption::UntilMatch };
        assert!(until.should_expand(0));
        assert!(!until.should_expand(1));
        let local = SearchPolicy { hop_count: 2, follow: FollowOption::LocalOnly };
        assert!(!local.should_expand(0));
        let exhausted = SearchPolicy { hop_count: 0, follow: FollowOption::AllRepositories };
        assert!(!exhausted.should_expand(0));
    }

    #[test]
    fn next_hop_decrements_and_saturates() {
        let p = SearchPolicy { hop_count: 1, follow: FollowOption::AllRepositories };
        assert_eq!(p.next_hop().hop_count, 0);
        assert_eq!(p.next_hop().next_hop().hop_count, 0);
    }

    #[test]
    fn follow_option_text_round_trips() {
        for f in [FollowOption::LocalOnly, FollowOption::AllRepositories, FollowOption::UntilMatch]
        {
            assert_eq!(FollowOption::parse(f.as_str()), Some(f));
        }
        assert_eq!(FollowOption::parse("bogus"), None);
    }
}
