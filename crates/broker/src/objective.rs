//! Broker objectives and specialization (§3.2, §4.1).
//!
//! "With independent brokers, each broker may have a specific objective for
//! the type of agent information it maintains. … If the objective is to
//! develop a specialty in brokering over certain chosen domains, then it
//! should only accept advertisements that overlap with its chosen domains."

use infosleuth_ontology::Advertisement;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What a broker decides to do with an incoming advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Store it in the repository.
    Accept,
    /// Decline it, suggesting other brokers that look like a better fit
    /// ("a broker receiving an advertisement may … pass it on to other
    /// potentially-interested brokers"). Empty when no suggestion exists,
    /// in which case the advertiser receives a plain `sorry`.
    Forward { candidates: Vec<String> },
}

/// A broker's objective.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BrokerObjective {
    #[default]
    /// "each group of cooperating brokers should contain at least one
    /// general-purpose broker for queries not covered by the specialized
    /// brokers" — accepts every valid advertisement.
    GeneralPurpose,
    /// Accepts only advertisements whose content overlaps the chosen
    /// ontologies.
    Specialized { ontologies: BTreeSet<String> },
}

impl BrokerObjective {
    pub fn specialized<I, S>(ontologies: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        BrokerObjective::Specialized {
            ontologies: ontologies.into_iter().map(Into::into).collect(),
        }
    }

    /// How well an advertisement fits this broker's objective — the
    /// "metrics to measure how well the advertisement fits within the
    /// broker's advertised purpose": the fraction of the advertisement's
    /// content ontologies that lie inside the specialty (1.0 for
    /// general-purpose brokers and for content-free agents, which any
    /// broker can represent).
    pub fn fit(&self, ad: &Advertisement) -> f64 {
        match self {
            BrokerObjective::GeneralPurpose => 1.0,
            BrokerObjective::Specialized { ontologies } => {
                let content = &ad.semantic.content;
                if content.is_empty() {
                    return 1.0;
                }
                let inside = content.iter().filter(|c| ontologies.contains(&c.ontology)).count();
                inside as f64 / content.len() as f64
            }
        }
    }

    /// Decides whether to accept an advertisement. `peer_fits` maps peer
    /// broker names to whether that peer's advertised specialty covers the
    /// advertisement (computed by the caller from broker advertisements).
    pub fn admit(&self, ad: &Advertisement, peer_fits: &[(String, f64)]) -> AdmissionDecision {
        if self.fit(ad) > 0.0 {
            return AdmissionDecision::Accept;
        }
        let mut candidates: Vec<(String, f64)> =
            peer_fits.iter().filter(|(_, fit)| *fit > 0.0).cloned().collect();
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        AdmissionDecision::Forward { candidates: candidates.into_iter().map(|(n, _)| n).collect() }
    }

    pub fn is_general_purpose(&self) -> bool {
        matches!(self, BrokerObjective::GeneralPurpose)
    }

    /// The specialty ontologies (empty for general-purpose brokers).
    pub fn ontologies(&self) -> BTreeSet<String> {
        match self {
            BrokerObjective::GeneralPurpose => BTreeSet::new(),
            BrokerObjective::Specialized { ontologies } => ontologies.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::{AgentLocation, AgentType, OntologyContent, SemanticInfo};

    fn ad_with_ontologies(ontologies: &[&str]) -> Advertisement {
        let mut sem = SemanticInfo::default();
        for o in ontologies {
            sem = sem.with_content(OntologyContent::new(*o));
        }
        Advertisement::new(AgentLocation::new("a", "tcp://h:1", AgentType::Resource))
            .with_semantic(sem)
    }

    #[test]
    fn general_purpose_accepts_everything() {
        let obj = BrokerObjective::GeneralPurpose;
        assert_eq!(obj.fit(&ad_with_ontologies(&["food"])), 1.0);
        assert_eq!(obj.admit(&ad_with_ontologies(&["food"]), &[]), AdmissionDecision::Accept);
    }

    #[test]
    fn specialist_accepts_overlapping_domains() {
        // "if a food supplier agent advertises to a broker that only
        // brokers healthcare information, the broker should forward it"
        let obj = BrokerObjective::specialized(["healthcare"]);
        assert_eq!(obj.fit(&ad_with_ontologies(&["healthcare"])), 1.0);
        assert_eq!(obj.fit(&ad_with_ontologies(&["healthcare", "food"])), 0.5);
        assert_eq!(obj.fit(&ad_with_ontologies(&["food"])), 0.0);
        assert_eq!(obj.admit(&ad_with_ontologies(&["healthcare"]), &[]), AdmissionDecision::Accept);
    }

    #[test]
    fn specialist_forwards_to_best_fitting_peer() {
        let obj = BrokerObjective::specialized(["healthcare"]);
        let peers = vec![
            ("generalist".to_string(), 1.0),
            ("aerospace-broker".to_string(), 0.0),
            ("food-broker".to_string(), 1.0),
        ];
        let d = obj.admit(&ad_with_ontologies(&["food"]), &peers);
        match d {
            AdmissionDecision::Forward { candidates } => {
                assert_eq!(candidates, vec!["food-broker", "generalist"]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn specialist_with_no_peer_suggestions_rejects() {
        let obj = BrokerObjective::specialized(["healthcare"]);
        let d = obj.admit(&ad_with_ontologies(&["food"]), &[]);
        assert_eq!(d, AdmissionDecision::Forward { candidates: vec![] });
    }

    #[test]
    fn content_free_agents_fit_anywhere() {
        // A pure query-processing agent advertises no ontology content;
        // specialized brokers still accept it.
        let obj = BrokerObjective::specialized(["healthcare"]);
        assert_eq!(obj.fit(&ad_with_ontologies(&[])), 1.0);
    }
}
