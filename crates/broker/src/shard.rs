//! Repository sharding for broker scale-out.
//!
//! One broker's repository is a scalability bottleneck once a community
//! grows past a few hundred agents: every advertisement lands in the same
//! table and every query scans it. Sharding partitions the advertisement
//! space across a consortium by **ontology fragment** — the
//! `(ontology, class)` pairs an agent advertises — using the stable
//! [`fragment_hash`], so that each broker owns a deterministic slice of
//! the semantic space and any community member can compute an
//! advertisement's home broker without asking anyone.
//!
//! The paper's multibrokering model (§4.3) already allows redundant and
//! specialized brokers; a [`ShardPlan`] is the degenerate-but-scalable
//! layout where specialization is *by hash* instead of by domain. Queries
//! still start at any broker: the inter-broker search with routing
//! digests forwards them to the shards that can actually match.

use crate::broker_agent::{interconnect, BrokerHandle};
use crate::repository::{Repository, RepositoryError};
use infosleuth_agent::BusError;
use infosleuth_ontology::{fragment_hash, Advertisement, Ontology};
use std::collections::HashMap;

/// Deterministic assignment of ontology fragments to a fixed list of
/// shards (usually one shard per broker in a consortium).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<String>,
}

impl ShardPlan {
    /// A plan over the given shard owners (broker names), in order.
    pub fn new<I, S>(owners: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let shards: Vec<String> = owners.into_iter().map(Into::into).collect();
        assert!(!shards.is_empty(), "a shard plan needs at least one owner");
        ShardPlan { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The owner names, in shard order.
    pub fn owners(&self) -> &[String] {
        &self.shards
    }

    /// The shard owning one ontology fragment.
    pub fn shard_of(&self, ontology: &str, class: &str) -> usize {
        (fragment_hash(ontology, class) % self.shards.len() as u64) as usize
    }

    /// The home shard of an advertisement: the owner of its
    /// lexicographically smallest `(ontology, class)` fragment, so the
    /// choice is independent of content-record order. An advertisement
    /// with no classed content falls back to hashing the agent name —
    /// every agent has a home.
    pub fn home_shard(&self, ad: &Advertisement) -> usize {
        let home = ad
            .semantic
            .content
            .iter()
            .flat_map(|c| c.classes.iter().map(move |class| (c.ontology.as_str(), class.as_str())))
            .min();
        match home {
            Some((ontology, class)) => self.shard_of(ontology, class),
            None => (fragment_hash("", &ad.location.name) % self.shards.len() as u64) as usize,
        }
    }

    /// The broker owning an advertisement (name of its home shard).
    pub fn owner_of(&self, ad: &Advertisement) -> &str {
        &self.shards[self.home_shard(ad)]
    }

    /// Name of the broker owning shard `i`.
    pub fn broker(&self, i: usize) -> &str {
        &self.shards[i]
    }
}

/// A repository partitioned across shards by the [`ShardPlan`].
///
/// Each shard is a complete [`Repository`] (its own validation, facts,
/// and reasoning state), holding only the advertisements whose home
/// fragment hashes to it. Domain ontologies are registered on every
/// shard, since validation needs them regardless of placement.
pub struct ShardedRepository {
    plan: ShardPlan,
    shards: Vec<Repository>,
    homes: HashMap<String, usize>,
}

impl ShardedRepository {
    pub fn new(plan: ShardPlan) -> Self {
        let shards = (0..plan.len()).map(|_| Repository::new()).collect();
        ShardedRepository { plan, shards, homes: HashMap::new() }
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Registers a domain ontology on every shard.
    pub fn register_ontology(&mut self, o: Ontology) {
        for shard in &mut self.shards {
            shard.register_ontology(o.clone());
        }
    }

    /// Routes the advertisement to its home shard. Returns the shard
    /// index it landed on.
    pub fn advertise(&mut self, ad: Advertisement) -> Result<usize, RepositoryError> {
        let shard = self.plan.home_shard(&ad);
        let name = ad.location.name.clone();
        self.shards[shard].advertise(ad)?;
        self.homes.insert(name, shard);
        Ok(shard)
    }

    /// Removes an agent from its home shard. Returns false when unknown.
    pub fn unadvertise(&mut self, name: &str) -> bool {
        match self.homes.remove(name) {
            Some(shard) => self.shards[shard].unadvertise(name),
            None => false,
        }
    }

    /// The shard an agent currently lives on.
    pub fn home_of(&self, name: &str) -> Option<usize> {
        self.homes.get(name).copied()
    }

    pub fn shard(&self, i: usize) -> &Repository {
        &self.shards[i]
    }

    pub fn shard_mut(&mut self, i: usize) -> &mut Repository {
        &mut self.shards[i]
    }

    pub fn shards(&self) -> &[Repository] {
        &self.shards
    }

    /// Total advertisements across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Repository::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Repository::is_empty)
    }

    /// `(smallest, largest)` shard sizes — the balance a hash layout
    /// should keep tight. Benches assert the skew stays bounded.
    pub fn balance(&self) -> (usize, usize) {
        let sizes = self.shards.iter().map(Repository::len);
        (sizes.clone().min().unwrap_or(0), sizes.max().unwrap_or(0))
    }
}

/// Interconnects a consortium of brokers and returns the shard plan that
/// assigns each ontology fragment a home broker. Callers route each
/// advertisement to [`ShardPlan::owner_of`] so every broker holds only
/// its slice; queries may still enter at any broker and reach the rest
/// through the digest-pruned inter-broker search.
pub fn connect_community(brokers: &[&BrokerHandle]) -> Result<ShardPlan, BusError> {
    interconnect(brokers)?;
    Ok(ShardPlan::new(brokers.iter().map(|b| b.name().to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::{
        paper_class_ontology, AgentLocation, AgentType, Capability, ConversationType,
        OntologyContent, SemanticInfo, SyntacticInfo,
    };

    fn ad(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let plan = ShardPlan::new(["b1", "b2", "b3"]);
        let a = ad("ra", &["C1", "C2"]);
        let mut b = ad("ra", &["C2"]);
        b.semantic.content.push(OntologyContent::new("paper-classes").with_classes(["C1"]));
        // Smallest fragment (paper-classes, C1) decides in both layouts.
        assert_eq!(plan.home_shard(&a), plan.home_shard(&b));
        assert_eq!(plan.home_shard(&a), plan.shard_of("paper-classes", "C1"));
        assert_eq!(plan.owner_of(&a), plan.broker(plan.home_shard(&a)));
    }

    #[test]
    fn contentless_ads_still_get_a_home() {
        let plan = ShardPlan::new(["b1", "b2"]);
        let bare = Advertisement::new(AgentLocation::new("x", "tcp://h:1", AgentType::Resource));
        assert!(plan.home_shard(&bare) < plan.len());
    }

    #[test]
    fn sharded_repository_routes_and_balances() {
        let plan = ShardPlan::new(["b1", "b2", "b3", "b4"]);
        let mut repo = ShardedRepository::new(plan);
        repo.register_ontology(paper_class_ontology());
        for i in 0..40 {
            let class = format!("C{}", 1 + i % 3);
            let shard = repo.advertise(ad(&format!("ra{i}"), &[&class])).unwrap();
            assert_eq!(repo.home_of(&format!("ra{i}")), Some(shard));
        }
        assert_eq!(repo.len(), 40);
        // Three distinct fragments over four shards: every ad shares a
        // shard with its classmates, nothing is scattered.
        let populated = repo.shards().iter().filter(|s| !s.is_empty()).count();
        assert!(populated <= 3);
        assert!(repo.unadvertise("ra0"));
        assert!(!repo.unadvertise("ra0"));
        assert_eq!(repo.len(), 39);
    }

    #[test]
    fn hash_spread_over_many_fragments_is_even_enough() {
        let plan = ShardPlan::new((0..8).map(|i| format!("b{i}")));
        let mut counts = vec![0usize; 8];
        for i in 0..800 {
            counts[plan.shard_of("healthcare", &format!("class-{i}"))] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // 100 expected per shard; FNV keeps the skew well under 2x.
        assert!(*min > 50 && *max < 200, "skewed spread: {counts:?}");
    }
}
