//! An epoch-tagged, bounded LRU cache of ranked match results.
//!
//! Repeated service queries are the broker's steady-state workload; a
//! cache hit skips candidate narrowing and scoring entirely. Entries are
//! tagged with the repository's mutation epoch (see
//! [`Repository::epoch`](crate::Repository::epoch)): any
//! advertise/unadvertise/ontology/rule mutation bumps the epoch, so a
//! stale entry can never be served — it is dropped on the next lookup and
//! counted. No external dependencies: the LRU is a `HashMap` keyed by
//! the query's canonical KQML s-expression text, with a monotonic access
//! stamp per entry; eviction scans for the oldest stamp, which is O(capacity)
//! but only runs on insert-past-capacity.

use crate::codec::service_query_to_sexpr;
use crate::matchmaker::MatchResult;
use infosleuth_agent::sync::lock_unpoisoned;
use infosleuth_obs::{Counter, Histogram, MetricsRegistry};
use infosleuth_ontology::ServiceQuery;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of distinct queries a broker remembers.
pub const DEFAULT_MATCH_CACHE_CAPACITY: usize = 256;

struct Entry {
    epoch: u64,
    /// Shared, immutable ranked results: hits and inserts exchange an
    /// `Arc` clone, never a deep copy of the result rows.
    results: Arc<Vec<MatchResult>>,
    stamp: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    clock: u64,
    /// Lookups seen in the current admission window.
    window_lookups: u32,
    /// Hits seen in the current admission window.
    window_hits: u32,
    /// Whether the admission gate is closed (recent hit rate ~0).
    gated: bool,
    /// Inserts attempted while gated, for 1-in-N probe admission.
    probe: u64,
}

/// Lookups per admission-rate sample. Small enough to adapt within one
/// bench pass, large enough that a single hit is a real signal.
const ADMISSION_WINDOW: u32 = 64;

/// While the gate is closed, admit every Nth insert anyway, so a
/// workload that starts repeating itself can produce the hit that
/// reopens the gate.
const ADMISSION_PROBE_EVERY: u64 = 64;

/// A pre-rendered canonical cache key (see [`MatchCache::query_key`]).
/// Opaque: the only way to make one is to render a query, so a key can
/// never disagree with the query it stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryKey(String);

/// Cache counters, readable without the obs registry (used by tests and
/// the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Entries dropped because their epoch no longer matched.
    pub stale: u64,
    /// Inserts skipped by the admission gate (recent hit rate ~0, so
    /// caching the result would only pay eviction cost for no reuse).
    pub skipped_inserts: u64,
}

/// A bounded, epoch-validated LRU over normalized service queries.
///
/// Thread-safe behind an internal mutex; the broker consults it while
/// already holding the repository lock, so contention is nil in practice.
pub struct MatchCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    stale: Counter,
    skipped: Counter,
    lookup_seconds: Histogram,
}

impl MatchCache {
    pub fn new(capacity: usize) -> MatchCache {
        MatchCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                window_lookups: 0,
                window_hits: 0,
                gated: false,
                probe: 0,
            }),
            capacity: capacity.max(1),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
            stale: Counter::detached(),
            skipped: Counter::detached(),
            lookup_seconds: Histogram::detached(),
        }
    }

    /// Registers this cache's counters and lookup-latency histogram as
    /// `broker_match_cache_total{broker,event}` /
    /// `broker_match_cache_lookup_seconds{broker}` so they ride the
    /// monitor's Prometheus scrape.
    pub fn with_obs(mut self, registry: &MetricsRegistry, broker: &str) -> MatchCache {
        let event = |event: &str| {
            registry.counter("broker_match_cache_total", &[("broker", broker), ("event", event)])
        };
        self.hits = event("hit");
        self.misses = event("miss");
        self.evictions = event("eviction");
        self.stale = event("stale");
        self.skipped = event("skipped_insert");
        // Cache lookups are µs-scale; the fine buckets keep the
        // quantiles meaningful (see default_fine_latency_buckets).
        self.lookup_seconds = registry.histogram(
            "broker_match_cache_lookup_seconds",
            &[("broker", broker)],
            infosleuth_obs::default_fine_latency_buckets(),
        );
        self
    }

    /// Renders the canonical cache key: the query's KQML s-expression.
    /// Canonical because every set-valued field is ordered (`BTreeSet`)
    /// and the codec is the wire format queries already round-trip
    /// through. Callers that both look up and insert (the miss path)
    /// render once and reuse the [`QueryKey`].
    pub fn query_key(query: &ServiceQuery) -> QueryKey {
        QueryKey(service_query_to_sexpr(query).to_string())
    }

    /// Returns the ranked results cached for `query` at `epoch`, if any.
    /// An entry from an older epoch counts as stale (removed) + miss.
    pub fn lookup(&self, epoch: u64, query: &ServiceQuery) -> Option<Arc<Vec<MatchResult>>> {
        self.lookup_keyed(epoch, &Self::query_key(query))
    }

    /// [`lookup`](Self::lookup) with a pre-rendered key.
    pub fn lookup_keyed(&self, epoch: u64, key: &QueryKey) -> Option<Arc<Vec<MatchResult>>> {
        let started = Instant::now();
        let mut inner = lock_unpoisoned(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        let outcome = match inner.map.get_mut(&key.0) {
            Some(entry) if entry.epoch == epoch => {
                entry.stamp = clock;
                Some(Arc::clone(&entry.results))
            }
            Some(_) => {
                inner.map.remove(&key.0);
                self.stale.inc();
                None
            }
            None => None,
        };
        // Admission-rate sample: one closed window with zero hits means
        // the workload is not repeating itself, so inserts stop paying
        // the eviction scan until a probe-admitted entry hits again.
        inner.window_lookups += 1;
        if outcome.is_some() {
            inner.window_hits += 1;
        }
        if inner.window_lookups >= ADMISSION_WINDOW {
            inner.gated = inner.window_hits == 0;
            inner.window_lookups = 0;
            inner.window_hits = 0;
        }
        drop(inner);
        match &outcome {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        self.lookup_seconds.observe_duration(started.elapsed());
        outcome
    }

    /// Stores ranked results for `query` computed at `epoch`, evicting
    /// the least-recently-used entry when full.
    pub fn insert(&self, epoch: u64, query: &ServiceQuery, results: Arc<Vec<MatchResult>>) {
        self.insert_keyed(epoch, Self::query_key(query), results);
    }

    /// [`insert`](Self::insert) with a pre-rendered key.
    pub fn insert_keyed(&self, epoch: u64, key: QueryKey, results: Arc<Vec<MatchResult>>) {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.gated && !inner.map.contains_key(&key.0) {
            inner.probe += 1;
            if inner.probe % ADMISSION_PROBE_EVERY != 0 {
                drop(inner);
                self.skipped.inc();
                return;
            }
        }
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key.0) && inner.map.len() >= self.capacity {
            if let Some(oldest) =
                inner.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.inc();
            }
        }
        inner.map.insert(key.0, Entry { epoch, results, stamp: clock });
    }

    /// Drops every entry (e.g. after a broker restart in tests).
    pub fn clear(&self) {
        lock_unpoisoned(&self.inner).map.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> MatchCacheStats {
        MatchCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            stale: self.stale.get(),
            skipped_inserts: self.skipped.get(),
        }
    }
}

impl Default for MatchCache {
    fn default() -> Self {
        MatchCache::new(DEFAULT_MATCH_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for MatchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::AgentType;

    fn query(i: usize) -> ServiceQuery {
        ServiceQuery::for_agent_type(AgentType::Resource).with_classes([format!("C{i}")])
    }

    fn result(name: &str) -> MatchResult {
        MatchResult { name: name.into(), score: 3, ..MatchResult::default() }
    }

    fn results(name: &str) -> Arc<Vec<MatchResult>> {
        Arc::new(vec![result(name)])
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let cache = MatchCache::new(8);
        assert_eq!(cache.lookup(1, &query(0)), None);
        cache.insert(1, &query(0), results("a"));
        assert_eq!(cache.lookup(1, &query(0)).unwrap().as_slice(), &[result("a")]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn hit_shares_the_stored_results_without_copying() {
        let cache = MatchCache::new(8);
        let stored = results("a");
        cache.insert(1, &query(0), Arc::clone(&stored));
        let hit = cache.lookup(1, &query(0)).unwrap();
        assert!(Arc::ptr_eq(&stored, &hit), "a hit must be an Arc clone, not a deep copy");
    }

    #[test]
    fn epoch_mismatch_is_a_stale_miss() {
        let cache = MatchCache::new(8);
        cache.insert(1, &query(0), results("a"));
        assert_eq!(cache.lookup(2, &query(0)), None);
        let stats = cache.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(cache.len(), 0, "stale entry must be dropped");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = MatchCache::new(2);
        cache.insert(1, &query(0), results("a"));
        cache.insert(1, &query(1), results("b"));
        // Touch query(0) so query(1) is the LRU.
        assert!(cache.lookup(1, &query(0)).is_some());
        cache.insert(1, &query(2), results("c"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(1, &query(0)).is_some(), "recently used entry survives");
        assert!(cache.lookup(1, &query(1)).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1, &query(2)).is_some());
    }

    #[test]
    fn reinsert_does_not_evict() {
        let cache = MatchCache::new(2);
        cache.insert(1, &query(0), results("a"));
        cache.insert(1, &query(1), results("b"));
        cache.insert(2, &query(1), results("b2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(2, &query(1)).unwrap().as_slice(), &[result("b2")]);
    }

    #[test]
    fn unique_workload_closes_the_admission_gate() {
        let cache = MatchCache::new(16);
        // A pure-miss stream: after one full window the gate closes and
        // inserts stop landing (except the 1-in-N probes).
        for i in 0..(ADMISSION_WINDOW as usize * 3) {
            let q = query(i);
            assert!(cache.lookup(1, &q).is_none());
            cache.insert(1, &q, results("x"));
        }
        let stats = cache.stats();
        assert!(stats.skipped_inserts > 0, "gate never closed: {stats:?}");
        assert!(
            stats.evictions < ADMISSION_WINDOW as u64,
            "gated inserts must not keep paying evictions: {stats:?}"
        );
    }

    #[test]
    fn probe_admission_reopens_the_gate_for_recurring_queries() {
        let cache = MatchCache::new(16);
        // Close the gate with a unique burst.
        for i in 0..ADMISSION_WINDOW as usize {
            assert!(cache.lookup(1, &query(1000 + i)).is_none());
            cache.insert(1, &query(1000 + i), results("x"));
        }
        // Now the workload repeats one query. A probe admission must let
        // it into the cache, after which hits reopen the gate.
        let mut hit = false;
        for _ in 0..(ADMISSION_PROBE_EVERY as usize * ADMISSION_WINDOW as usize) {
            if cache.lookup(1, &query(7)).is_some() {
                hit = true;
                break;
            }
            cache.insert(1, &query(7), results("x"));
        }
        assert!(hit, "recurring query never got probe-admitted: {:?}", cache.stats());
        // With hits flowing again, fresh inserts are admitted directly.
        for _ in 0..ADMISSION_WINDOW as usize {
            assert!(cache.lookup(1, &query(7)).is_some());
        }
        let skipped_before = cache.stats().skipped_inserts;
        cache.insert(1, &query(8), results("y"));
        assert_eq!(cache.stats().skipped_inserts, skipped_before, "gate must be open again");
        assert!(cache.lookup(1, &query(8)).is_some());
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        let cache = MatchCache::new(8);
        cache.insert(1, &query(0), results("a"));
        assert_eq!(cache.lookup(1, &query(1)), None);
        let truncated = query(0).one();
        assert_eq!(cache.lookup(1, &truncated), None, "max_matches is part of the key");
    }
}
