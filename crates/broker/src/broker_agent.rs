//! The live broker agent, hosted on the shared [`AgentRuntime`].
//!
//! Handles the conversations of Figures 3–4 (advertise / query) plus the
//! multibroker machinery of §4: broker-to-broker advertising, inter-broker
//! search with hop counts, follow options and visited-list loop prevention,
//! liveness pings, and specialization-based admission.
//!
//! Incoming messages are handled concurrently on the runtime's bounded
//! worker pool (up to the per-agent in-flight cap) so that a broker
//! blocked waiting on a peer's reply never stops serving its own
//! repository — forwarded searches between mutually-querying brokers would
//! otherwise deadlock. The liveness sweep runs as the behavior's periodic
//! tick, which the runtime guarantees never overlaps itself.

use crate::codec;
use crate::match_cache::{MatchCache, MatchCacheStats, DEFAULT_MATCH_CACHE_CAPACITY};
use crate::matchmaker::{MatchResult, Matchmaker};
use crate::objective::{AdmissionDecision, BrokerObjective};
use crate::policy::SearchPolicy;
use crate::repository::Repository;
use crate::sub_index::{result_delta, SubId, SubscriptionRegistry};
use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Requester,
    RuntimeConfig, Transport,
};
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_obs::{Counter, Histogram, Obs, TraceContext};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, BrokerAdvertisement, BrokerSpecialization,
    ServiceQuery,
};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Static configuration for one broker.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    pub name: String,
    /// Advertised contact directions, e.g. `tcp://b1.mcc.com:4356`.
    pub address: String,
    pub objective: BrokerObjective,
    /// Policy used when a requester does not specify one ("if the
    /// requesting agent did not specify any policy, the default policy set
    /// by a broker will be used").
    pub default_policy: SearchPolicy,
    /// How long to wait for each peer broker during an inter-broker search.
    pub peer_timeout: Duration,
    /// Consortium memberships (Fig. 13).
    pub consortia: BTreeSet<String>,
    pub matchmaker: Matchmaker,
    /// Liveness sweep interval: "the broker periodically pings each of the
    /// agents that have advertised to it, to discover any agents that have
    /// failed. The broker removes from its repository all information about
    /// agents that have failed". `None` disables the sweep.
    pub ping_interval: Option<Duration>,
    /// Whether standing subscriptions use the inverted
    /// [`SubscriptionIndex`](crate::SubscriptionIndex) to prune which
    /// subscriptions a repository mutation re-scores. `false` falls back to
    /// re-evaluating every subscription on every mutation (the naive
    /// baseline; notification sequences are identical either way).
    pub subscription_index: bool,
    /// Maximum envelopes the hosting runtime may drain into one broker
    /// dispatch. At 1 (the default) every message takes the classic
    /// per-message path. Above 1, queued repository mutations
    /// (advertise / update / unadvertise) are applied under a single
    /// repository lock and their sub-deltas and acks leave in one
    /// coalesced transport batch — mutations are still processed
    /// strictly in arrival order, one at a time, so the emitted
    /// sequences are byte-identical to the unbatched path.
    pub batch_limit: usize,
    /// Test-only seeded bug (compiled only under the `seeded-reorder`
    /// cargo feature, and inert unless switched on at runtime): the
    /// batched dispatcher applies each queued mutation run in *reverse*
    /// arrival order. The interleaving explorer in `infosleuth-check`
    /// must catch the resulting divergence — it is the oracle proving
    /// the explorer can detect real ordering bugs.
    #[cfg(feature = "seeded-reorder")]
    pub seeded_reorder: bool,
}

impl BrokerConfig {
    pub fn new(name: impl Into<String>, address: impl Into<String>) -> Self {
        BrokerConfig {
            name: name.into(),
            address: address.into(),
            objective: BrokerObjective::GeneralPurpose,
            default_policy: SearchPolicy::default(),
            peer_timeout: Duration::from_secs(2),
            consortia: BTreeSet::new(),
            matchmaker: Matchmaker::default(),
            ping_interval: Some(Duration::from_secs(30)),
            subscription_index: true,
            batch_limit: 1,
            #[cfg(feature = "seeded-reorder")]
            seeded_reorder: false,
        }
    }

    /// Arms the seeded dispatcher-reordering bug (see the field doc).
    #[cfg(feature = "seeded-reorder")]
    pub fn with_seeded_reorder(mut self, on: bool) -> Self {
        self.seeded_reorder = on;
        self
    }

    /// Opts the broker into batched dispatch: up to `n` queued envelopes
    /// per job (clamped to at least 1).
    pub fn with_batch_limit(mut self, n: usize) -> Self {
        self.batch_limit = n.max(1);
        self
    }

    pub fn with_ping_interval(mut self, interval: Option<Duration>) -> Self {
        self.ping_interval = interval;
        self
    }

    /// Enables or disables the inverted subscription index (on by default).
    pub fn with_subscription_index(mut self, on: bool) -> Self {
        self.subscription_index = on;
        self
    }

    pub fn with_objective(mut self, o: BrokerObjective) -> Self {
        self.objective = o;
        self
    }

    pub fn with_consortia<I, S>(mut self, consortia: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.consortia.extend(consortia.into_iter().map(Into::into));
        self
    }

    /// This broker's own advertisement to peers.
    pub fn broker_advertisement(&self) -> BrokerAdvertisement {
        let base = Advertisement::new(AgentLocation::new(
            self.name.clone(),
            self.address.clone(),
            AgentType::Broker,
        ));
        BrokerAdvertisement::new(base)
            .with_consortia(self.consortia.iter().cloned())
            .with_specialization(BrokerSpecialization {
                agent_types: BTreeSet::new(),
                ontologies: self.objective.ontologies(),
                restrictions: Vec::new(),
            })
    }
}

struct Shared {
    config: BrokerConfig,
    repo: Mutex<Repository>,
    /// Epoch-tagged LRU over local match results; consulted (and filled)
    /// by every ask/recommend before any scoring happens.
    cache: MatchCache,
    /// Standing subscriptions plus their inverted index. Lock order: `repo`
    /// before `subs`; never take `repo` while holding `subs`.
    subs: Mutex<SubscriptionRegistry>,
    obs: BrokerObs,
}

/// The broker's slice of the hosting runtime's metrics registry:
/// request counters plus the query-side pipeline stages (`parse`,
/// `scoring`). The repository-side stages (`analysis`, `repository`,
/// `saturation`) are hooked in via [`Repository::set_obs`].
struct BrokerObs {
    obs: Arc<Obs>,
    match_requests: Counter,
    advertises: Counter,
    unadvertises: Counter,
    /// `subscribe` performatives accepted into the registry.
    subscribes: Counter,
    /// Repository mutations intersected against the subscription index.
    sub_events: Counter,
    /// Subscriptions selected for re-scoring by those intersections
    /// (includes index false positives, which yield empty deltas).
    sub_affected: Counter,
    /// Non-empty delta notifications actually delivered.
    sub_notifications: Counter,
    parse: Histogram,
    scoring: Histogram,
    /// End-to-end cost of one mutation's notification fan-out: intersect +
    /// re-score affected + diff + send.
    sub_notify: Histogram,
}

impl BrokerObs {
    fn new(obs: &Arc<Obs>, broker: &str) -> BrokerObs {
        let reg = obs.registry();
        let lat = |stage: &str| {
            reg.latency("broker_stage_seconds", &[("broker", broker), ("stage", stage)])
        };
        BrokerObs {
            obs: Arc::clone(obs),
            match_requests: reg.counter("broker_match_requests_total", &[("broker", broker)]),
            advertises: reg.counter("broker_advertise_total", &[("broker", broker)]),
            unadvertises: reg.counter("broker_unadvertise_total", &[("broker", broker)]),
            subscribes: reg.counter("broker_subscribe_total", &[("broker", broker)]),
            sub_events: reg.counter("broker_sub_events_total", &[("broker", broker)]),
            sub_affected: reg.counter("broker_sub_affected_total", &[("broker", broker)]),
            sub_notifications: reg.counter("broker_sub_notifications_total", &[("broker", broker)]),
            parse: lat("parse"),
            scoring: lat("scoring"),
            // Fan-out latencies sit in the single-digit-µs range on the
            // indexed path; the coarse default buckets (first bound
            // 100µs) would lump every sample into one bucket, so this
            // histogram registers with the fine µs-scale bounds.
            sub_notify: reg.histogram(
                "broker_sub_notify_seconds",
                &[("broker", broker)],
                infosleuth_obs::default_fine_latency_buckets(),
            ),
        }
    }
}

/// The broker's [`AgentBehavior`]: message dispatch plus the liveness
/// sweep as its periodic tick.
struct BrokerBehavior {
    shared: Arc<Shared>,
}

impl AgentBehavior for BrokerBehavior {
    fn on_message(&self, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
        handle_envelope(&self.shared, ctx, env);
    }

    fn batch_limit(&self) -> usize {
        self.shared.config.batch_limit
    }

    fn on_batch(&self, ctx: &AgentContext, batch: Vec<infosleuth_agent::Envelope>) {
        handle_batch(&self.shared, ctx, batch);
    }

    fn tick_interval(&self) -> Option<Duration> {
        self.shared.config.ping_interval
    }

    fn on_tick(&self, ctx: &AgentContext) {
        liveness_sweep(&self.shared, ctx);
    }
}

/// The broker agent. Construct with [`BrokerAgent::spawn`] (in-proc bus),
/// [`BrokerAgent::spawn_over`] (any transport, private runtime), or
/// [`BrokerAgent::spawn_on`] (an existing shared runtime).
pub struct BrokerAgent;

/// A handle to a running broker: stop it, connect it to peers, inspect its
/// repository and delivery-failure count.
pub struct BrokerHandle {
    shared: Arc<Shared>,
    agent: AgentHandle,
    /// Present when this broker owns a private runtime (the `spawn` /
    /// `spawn_over` paths); dropped last so in-flight handlers wind down
    /// after the agent is unregistered.
    _runtime: Option<AgentRuntime>,
}

impl BrokerAgent {
    /// Registers the broker on the in-process bus with a private runtime.
    pub fn spawn(
        bus: &Bus,
        config: BrokerConfig,
        repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        BrokerAgent::spawn_over(bus.as_transport(), config, repo)
    }

    /// Registers the broker on any transport with a private runtime.
    pub fn spawn_over(
        transport: Arc<dyn Transport>,
        config: BrokerConfig,
        repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        // A broker needs concurrent handlers (mutually-querying peers) but
        // not a big pool when it runs alone.
        let runtime = AgentRuntime::new(transport, RuntimeConfig::default().with_workers(4));
        let mut handle = BrokerAgent::spawn_on(&runtime, config, repo)?;
        handle._runtime = Some(runtime);
        Ok(handle)
    }

    /// Hosts the broker on an existing runtime (the shared-community and
    /// multi-agent-per-node deployments).
    pub fn spawn_on(
        runtime: &AgentRuntime,
        config: BrokerConfig,
        mut repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        repo.set_obs(runtime.obs(), &config.name);
        let obs = BrokerObs::new(runtime.obs(), &config.name);
        let cache = MatchCache::new(DEFAULT_MATCH_CACHE_CAPACITY)
            .with_obs(runtime.obs().registry(), &config.name);
        let subs = Mutex::new(SubscriptionRegistry::new(config.subscription_index));
        let shared = Arc::new(Shared { config, repo: Mutex::new(repo), cache, subs, obs });
        let behavior = Arc::new(BrokerBehavior { shared: Arc::clone(&shared) });
        let agent = runtime.spawn(shared.config.name.clone(), behavior)?;
        Ok(BrokerHandle { shared, agent, _runtime: None })
    }

    /// Builds the broker's dispatch core without spawning it on a
    /// runtime. The interleaving explorer in `infosleuth-check` drives
    /// the returned [`BrokerCore`]'s behavior directly with a detached
    /// [`AgentContext`], so that *it* — not a worker pool — decides the
    /// order in which envelopes are dispatched.
    pub fn core(obs: &Arc<Obs>, config: BrokerConfig, mut repo: Repository) -> BrokerCore {
        repo.set_obs(obs, &config.name);
        let broker_obs = BrokerObs::new(obs, &config.name);
        let cache =
            MatchCache::new(DEFAULT_MATCH_CACHE_CAPACITY).with_obs(obs.registry(), &config.name);
        let subs = Mutex::new(SubscriptionRegistry::new(config.subscription_index));
        let shared =
            Arc::new(Shared { config, repo: Mutex::new(repo), cache, subs, obs: broker_obs });
        let behavior = Arc::new(BrokerBehavior { shared: Arc::clone(&shared) });
        BrokerCore { shared, behavior }
    }
}

/// The broker's dispatch core detached from any hosting runtime: the
/// same [`AgentBehavior`] a runtime would drive, plus read-only probes
/// over the shared state that the explorer's invariants compare across
/// schedules.
pub struct BrokerCore {
    shared: Arc<Shared>,
    behavior: Arc<BrokerBehavior>,
}

impl BrokerCore {
    /// The behavior to dispatch envelopes into (`on_message` /
    /// `on_batch`, exactly as the runtime's event loop would).
    pub fn behavior(&self) -> Arc<dyn AgentBehavior> {
        Arc::clone(&self.behavior) as Arc<dyn AgentBehavior>
    }

    pub fn name(&self) -> &str {
        &self.shared.config.name
    }

    /// Effective batch limit of the wrapped behavior.
    pub fn batch_limit(&self) -> usize {
        self.shared.config.batch_limit
    }

    /// Repository mutation epoch (bumps once per applied mutation).
    pub fn repo_epoch(&self) -> u64 {
        self.shared.repo.lock().epoch()
    }

    /// Canonical byte-stable digest of the repository: every resource and
    /// broker advertisement rendered to KQML text, sorted. Every schedule
    /// of one scenario must converge to an identical fingerprint.
    pub fn repo_fingerprint(&self) -> String {
        let repo = self.shared.repo.lock();
        let mut lines: Vec<String> =
            repo.agents().map(|ad| codec::advertisement_to_sexpr(ad).to_string()).collect();
        lines.extend(
            repo.broker_advertisements()
                .map(|ad| codec::broker_advertisement_to_sexpr(ad).to_string()),
        );
        lines.sort();
        lines.join("\n")
    }

    /// Number of standing subscriptions currently registered.
    pub fn subscription_count(&self) -> usize {
        self.shared.subs.lock().len()
    }
}

impl BrokerHandle {
    pub fn name(&self) -> &str {
        &self.shared.config.name
    }

    /// Runs a closure against the broker's repository (tests, metrics, and
    /// pre-seeding).
    pub fn with_repository<T>(&self, f: impl FnOnce(&mut Repository) -> T) -> T {
        f(&mut self.shared.repo.lock())
    }

    /// Hit/miss/eviction/stale counters of this broker's match cache.
    pub fn match_cache_stats(&self) -> MatchCacheStats {
        self.shared.cache.stats()
    }

    /// Number of standing subscriptions currently registered.
    pub fn subscription_count(&self) -> usize {
        self.shared.subs.lock().len()
    }

    /// Re-evaluates every standing subscription and delivers deltas to the
    /// ones whose result set changed. Call after mutating the repository
    /// out-of-band (via [`with_repository`](Self::with_repository), e.g. a
    /// derived-rule registration or ontology load) — mutations arriving as
    /// performatives notify automatically.
    pub fn resync_subscriptions(&self) {
        let all = self.shared.subs.lock().ids();
        notify_subscriptions(&self.shared, self.agent.ctx(), all);
    }

    /// Sends by this broker that the transport refused (each one was also
    /// reported to the runtime's monitor agent, when configured).
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    /// Advertises this broker to a peer broker and stores the peer's
    /// reciprocal advertisement, so both ends know each other (the
    /// bidirectional arrows of Figure 11).
    pub fn connect_peer(&self, peer: &str) -> Result<(), BusError> {
        let ctx = self.agent.ctx();
        let my_ad = self.shared.config.broker_advertisement();
        let msg = Message::new(Performative::Advertise)
            .with_ontology("infosleuth-service")
            .with_content(codec::broker_advertisement_to_sexpr(&my_ad));
        let reply = ctx.request(peer, msg, self.shared.config.peer_timeout)?;
        if let Some(content) = reply.content() {
            if let Ok(peer_ad) = codec::broker_advertisement_from_sexpr(content) {
                let _ = self.shared.repo.lock().advertise_broker(peer_ad);
            }
        }
        Ok(())
    }

    /// Stops the broker cleanly: the broker's mailbox is removed from the
    /// transport (subsequent sends fail like sends to a dead process) and
    /// no further messages are dispatched to it.
    pub fn stop(self) {
        self.agent.stop();
        // Drop order then shuts down the private runtime, if any.
    }
}

/// Fully interconnects a set of brokers into a consortium ("a set of
/// brokers that are fully interconnected").
pub fn interconnect(brokers: &[&BrokerHandle]) -> Result<(), BusError> {
    for a in brokers {
        for b in brokers {
            if a.name() != b.name() {
                a.connect_peer(b.name())?;
            }
        }
    }
    Ok(())
}

/// Sends `reply` as the broker (not as a worker's ephemeral endpoint).
/// A refused delivery is no longer silently swallowed: the context counts
/// it in the broker's delivery-failure stat and reports it to the
/// runtime's monitor agent.
fn reply_as_broker(ctx: &AgentContext, to: &str, reply: Message) {
    let _ = ctx.send(to, reply);
}

/// Pings every advertised agent and removes the ones that no longer
/// respond — the repository-maintenance half of §2.2's lifecycle.
fn liveness_sweep(shared: &Shared, ctx: &AgentContext) {
    let agents: Vec<String> = {
        let repo = shared.repo.lock();
        repo.agent_names().map(str::to_string).collect()
    };
    if agents.is_empty() {
        return;
    }
    let mut dead = Vec::new();
    for agent in agents {
        let probe = Message::new(Performative::Ping);
        // A probe the transport refuses counts as a delivery failure (and
        // is reported to the monitor) in addition to marking the agent
        // dead — the sweep no longer swallows send errors.
        if ctx.request(&agent, probe, shared.config.peer_timeout).is_err() {
            dead.push(agent);
        }
    }
    if !dead.is_empty() {
        let affected = {
            let mut repo = shared.repo.lock();
            let mut affected = BTreeSet::new();
            for agent in dead {
                let old = repo.advertisement_arc(&agent).cloned();
                if repo.unadvertise(&agent) {
                    if let Some(old) = &old {
                        affected.append(&mut subs_affected(shared, &repo, Some(old), None));
                    }
                }
            }
            affected
        };
        notify_subscriptions(shared, ctx, affected);
    }
}

fn handle_envelope(shared: &Shared, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
    let msg = &env.message;
    match msg.performative {
        Performative::Advertise | Performative::Update => handle_advertise(shared, ctx, &env),
        Performative::Unadvertise => handle_unadvertise(shared, ctx, &env),
        Performative::Ping => handle_ping(shared, ctx, &env),
        Performative::AskAll | Performative::RecruitAll => handle_query(shared, ctx, &env, None),
        Performative::AskOne | Performative::RecruitOne => handle_query(shared, ctx, &env, Some(1)),
        Performative::BrokerOne => handle_broker_one(shared, ctx, &env),
        Performative::Subscribe => handle_subscribe(shared, ctx, &env),
        Performative::Other(ref other) if other == "unsubscribe" => {
            handle_unsubscribe(shared, ctx, &env)
        }
        _ => {
            let reply = msg.reply_skeleton(Performative::Error).with_content(SExpr::string(
                format!("unsupported performative '{}'", msg.performative),
            ));
            reply_as_broker(ctx, &env.from, reply);
        }
    }
}

/// True for the performatives the batched path applies under a shared
/// repository lock.
fn is_repo_mutation(p: &Performative) -> bool {
    matches!(p, Performative::Advertise | Performative::Update | Performative::Unadvertise)
}

/// Batched dispatch (`batch_limit > 1`): consecutive runs of repository
/// mutations are applied under one repo lock and their outgoing traffic
/// (sub-deltas then acks, in mutation order) leaves as one coalesced
/// [`AgentContext::send_batch`]; everything else dispatches through the
/// classic per-message path in place, so arrival order is preserved
/// across the whole batch.
fn handle_batch(shared: &Shared, ctx: &AgentContext, batch: Vec<infosleuth_agent::Envelope>) {
    let mut run: Vec<infosleuth_agent::Envelope> = Vec::new();
    for env in batch {
        if is_repo_mutation(&env.message.performative) {
            run.push(env);
        } else {
            flush_mutation_run(shared, ctx, &mut run);
            dispatch_with_span(shared, ctx, env);
        }
    }
    flush_mutation_run(shared, ctx, &mut run);
}

/// Applies a run of queued mutations strictly in order under a single
/// repository lock — each one still bumps the epoch, probes the
/// subscription index, and emits its own deltas, exactly as if it had
/// arrived alone; only the lock round-trips and the transport sends are
/// amortized.
fn flush_mutation_run(
    shared: &Shared,
    ctx: &AgentContext,
    run: &mut Vec<infosleuth_agent::Envelope>,
) {
    if run.is_empty() {
        return;
    }
    #[cfg(feature = "seeded-reorder")]
    if shared.config.seeded_reorder {
        run.reverse();
    }
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        for env in run.drain(..) {
            let parent = env.message.trace().and_then(TraceContext::parse);
            let _span = shared.obs.obs.tracer().agent_span(
                format!("recv:{}", env.message.performative),
                ctx.name(),
                parent,
            );
            if env.message.performative == Performative::Unadvertise {
                apply_unadvertise(shared, &mut repo, &env, &mut out);
            } else {
                apply_advertise(shared, &mut repo, &env, &mut out);
            }
        }
    }
    let _ = ctx.send_batch(out);
}

/// Runs one non-mutation envelope through the per-message handler,
/// wrapped in the dispatch span the runtime would have opened had the
/// envelope not ridden in a batch.
fn dispatch_with_span(shared: &Shared, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
    let parent = env.message.trace().and_then(TraceContext::parse);
    let span = shared.obs.obs.tracer().agent_span(
        format!("recv:{}", env.message.performative),
        ctx.name(),
        parent,
    );
    handle_envelope(shared, ctx, env);
    drop(span);
}

/// Queues an outgoing message, stamping the active span's trace context
/// the way [`AgentContext::send`] would have at this point — buffered
/// sends otherwise leave the handler span before they hit the wire.
fn push_out(out: &mut Vec<(String, Message)>, to: &str, mut msg: Message) {
    if msg.trace().is_none() {
        if let Some(c) = infosleuth_obs::current_context() {
            msg = msg.with_trace(c.encode());
        }
    }
    out.push((to.to_string(), msg));
}

fn handle_advertise(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        apply_advertise(shared, &mut repo, env, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The advertise / update core, against an already-locked repository.
/// Outgoing traffic (sub-deltas first, the ack last) is pushed onto
/// `out` in the exact order the unbatched path would have sent it.
fn apply_advertise(
    shared: &Shared,
    repo: &mut Repository,
    env: &infosleuth_agent::Envelope,
    out: &mut Vec<(String, Message)>,
) {
    shared.obs.advertises.inc();
    let Some(content) = env.message.content() else {
        let reply = env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("advertise without content"));
        push_out(out, &env.from, reply);
        return;
    };
    // Peer broker advertising itself?
    if let Ok(broker_ad) = codec::broker_advertisement_from_sexpr(content) {
        let accepted = repo.advertise_broker(broker_ad);
        let reply = match accepted {
            Ok(()) => {
                // Reciprocate with our own advertisement so the sender can
                // store it (one round trip establishes mutual knowledge).
                let mine = shared.config.broker_advertisement();
                env.message
                    .reply_skeleton(Performative::Tell)
                    .with_content(codec::broker_advertisement_to_sexpr(&mine))
            }
            Err(e) => env
                .message
                .reply_skeleton(Performative::Sorry)
                .with_content(SExpr::string(e.to_string())),
        };
        push_out(out, &env.from, reply);
        return;
    }
    match codec::advertisement_from_sexpr(content) {
        Ok(ad) => {
            let decision = {
                // Fit of each known peer, from their advertised specialties.
                let peer_fits: Vec<(String, f64)> = repo
                    .broker_advertisements()
                    .map(|b| {
                        let objective = if b.specialization.ontologies.is_empty() {
                            BrokerObjective::GeneralPurpose
                        } else {
                            BrokerObjective::Specialized {
                                ontologies: b.specialization.ontologies.clone(),
                            }
                        };
                        (b.base.location.name.clone(), objective.fit(&ad))
                    })
                    .collect();
                shared.config.objective.admit(&ad, &peer_fits)
            };
            let reply = match decision {
                AdmissionDecision::Accept => {
                    let name = ad.location.name.clone();
                    let old = repo.advertisement_arc(&name).cloned();
                    let result = repo.advertise(ad);
                    let affected = if result.is_ok() {
                        let new = repo.advertisement_arc(&name).cloned();
                        subs_affected(shared, repo, old.as_deref(), new.as_deref())
                    } else {
                        BTreeSet::new()
                    };
                    // Deltas go out before the ack so a subscriber that is
                    // also the advertiser sees a deterministic sequence.
                    notify_subscriptions_locked(shared, repo, affected, out);
                    match result {
                        Ok(()) => env.message.reply_skeleton(Performative::Tell),
                        Err(e) => env
                            .message
                            .reply_skeleton(Performative::Sorry)
                            .with_content(SExpr::string(e.to_string())),
                    }
                }
                AdmissionDecision::Forward { candidates } => {
                    // "If no brokers accept the advertisement, the broker …
                    // will reply with a sorry message", listing better fits
                    // when it has suggestions.
                    let mut items = vec![SExpr::atom("forward-to")];
                    items.extend(candidates.iter().map(|c| SExpr::atom(c.as_str())));
                    env.message.reply_skeleton(Performative::Sorry).with_content(SExpr::List(items))
                }
            };
            push_out(out, &env.from, reply);
        }
        Err(e) => {
            let reply = env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()));
            push_out(out, &env.from, reply);
        }
    }
}

fn handle_unadvertise(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        apply_unadvertise(shared, &mut repo, env, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The unadvertise core, against an already-locked repository (deltas
/// first, ack last — same contract as [`apply_advertise`]).
fn apply_unadvertise(
    shared: &Shared,
    repo: &mut Repository,
    env: &infosleuth_agent::Envelope,
    out: &mut Vec<(String, Message)>,
) {
    shared.obs.unadvertises.inc();
    // Content is the agent name (atom) or absent (sender unadvertises
    // itself).
    let name = env
        .message
        .content()
        .and_then(SExpr::as_text)
        .map(str::to_string)
        .unwrap_or_else(|| env.from.clone());
    let old = repo.advertisement_arc(&name).cloned();
    let removed = repo.unadvertise(&name) || repo.unadvertise_broker(&name);
    let affected = match &old {
        Some(old) if removed => subs_affected(shared, repo, Some(old), None),
        _ => BTreeSet::new(),
    };
    notify_subscriptions_locked(shared, repo, affected, out);
    let perf = if removed { Performative::Tell } else { Performative::Sorry };
    push_out(out, &env.from, env.message.reply_skeleton(perf));
}

/// Registers a standing service query (§2.2's "subscribe to changes in the
/// set of matching agents"). Notifications are `tell`s carrying a
/// `sub-delta` (only agents that entered or left the match set) to the
/// `:reply-to` endpoint, tagged with the subscription key as
/// `:in-reply-to` and the subscribe message's `:x-trace`.
fn handle_subscribe(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let msg = &env.message;
    let Some(content) = msg.content() else {
        let reply = msg
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("subscribe without content"));
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    let query = match codec::service_query_from_sexpr(content) {
        Ok(q) => q,
        Err(e) => {
            let reply =
                msg.reply_skeleton(Performative::Error).with_content(SExpr::string(e.to_string()));
            reply_as_broker(ctx, &env.from, reply);
            return;
        }
    };
    let subscriber = msg.get_text("reply-to").unwrap_or(&env.from).to_string();
    // Admission: an unsatisfiable or vacuous standing query would be paid
    // for on every repository mutation — reject it with the rendered
    // diagnostics instead.
    let report = shared.repo.lock().analyze_subscription(&subscriber, &query);
    if report.has_errors() {
        let reply = msg
            .reply_skeleton(Performative::Sorry)
            .with_content(SExpr::string(report.render_human(None)));
        reply_as_broker(ctx, &env.from, reply);
        return;
    }
    let trace = msg.trace().map(str::to_string);
    let (sub_key, initial, epoch) = {
        let mut repo = shared.repo.lock();
        let initial = shared.config.matchmaker.match_query_cached(&mut repo, &shared.cache, &query);
        let epoch = repo.epoch();
        let mut subs = shared.subs.lock();
        let sub_key = msg
            .reply_with()
            .map(str::to_string)
            .unwrap_or_else(|| format!("sub-{}", subs.next_key()));
        subs.register(
            sub_key.clone(),
            subscriber.clone(),
            trace.clone(),
            query,
            Arc::clone(&initial),
            &repo,
        );
        (sub_key, initial, epoch)
    };
    shared.obs.subscribes.inc();
    // Initial snapshot: the delta against the empty set, so the subscriber
    // learns the baseline the following deltas build on.
    let mut snapshot = Message::new(Performative::Tell)
        .with_in_reply_to(sub_key.clone())
        .with_ontology("infosleuth-service")
        .with_content(codec::sub_delta_to_sexpr(epoch, &initial, &[]));
    if let Some(t) = &trace {
        snapshot = snapshot.with_trace(t.clone());
    }
    let _ = ctx.send(&subscriber, snapshot);
    // Ack after the snapshot so a subscriber that is also the requester
    // observes a deterministic sequence.
    let reply = msg.reply_skeleton(Performative::Tell).with_content(SExpr::atom(sub_key));
    reply_as_broker(ctx, &env.from, reply);
}

/// Cancels a standing subscription: content (or `:in-reply-to`) names the
/// subscription key; only the registered subscriber may cancel it.
fn handle_unsubscribe(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let msg = &env.message;
    let key =
        msg.content().and_then(SExpr::as_text).or_else(|| msg.in_reply_to()).map(str::to_string);
    let subscriber = msg.get_text("reply-to").unwrap_or(&env.from);
    let removed = key
        .and_then(|k| {
            let mut subs = shared.subs.lock();
            subs.find(&k, subscriber).and_then(|id| subs.remove(id))
        })
        .is_some();
    let perf = if removed { Performative::Tell } else { Performative::Sorry };
    reply_as_broker(ctx, &env.from, msg.reply_skeleton(perf));
}

/// The subscriptions a repository mutation must re-score: the inverted
/// index's candidate set (or everything, in naive mode / under derived
/// rules). Caller holds the repo lock; takes the subs lock (repo → subs).
fn subs_affected(
    shared: &Shared,
    repo: &Repository,
    old: Option<&Advertisement>,
    new: Option<&Advertisement>,
) -> BTreeSet<SubId> {
    let mut subs = shared.subs.lock();
    if subs.is_empty() {
        return BTreeSet::new();
    }
    shared.obs.sub_events.inc();
    subs.affected(old, new, repo)
}

/// Re-scores each affected subscription (through the epoch-tagged match
/// cache) and delivers a `sub-delta` notification to every one whose
/// result set actually changed. Index false positives die here as empty
/// deltas. Iteration is in ascending id order, so notification sequences
/// are deterministic and identical between indexed and naive modes.
fn notify_subscriptions(shared: &Shared, ctx: &AgentContext, affected: BTreeSet<SubId>) {
    if affected.is_empty() {
        return;
    }
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        notify_subscriptions_locked(shared, &mut repo, affected, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The fan-out core, against an already-locked repository: notifications
/// are pushed onto `out` (in ascending id order) rather than sent, so the
/// batched path can coalesce them with the mutation acks that follow.
fn notify_subscriptions_locked(
    shared: &Shared,
    repo: &mut Repository,
    affected: BTreeSet<SubId>,
    out: &mut Vec<(String, Message)>,
) {
    if affected.is_empty() {
        return;
    }
    shared.obs.sub_affected.add(affected.len() as u64);
    let timer = shared.obs.obs.stage(&shared.obs.sub_notify, "sub-notify");
    for id in affected {
        let snapshot = {
            let subs = shared.subs.lock();
            subs.entry(id).map(|s| {
                (
                    s.query.clone(),
                    Arc::clone(&s.last),
                    s.subscriber.clone(),
                    s.sub_key.clone(),
                    s.trace.clone(),
                )
            })
        };
        let Some((query, last, subscriber, sub_key, trace)) = snapshot else {
            continue;
        };
        let new = shared.config.matchmaker.match_query_cached(repo, &shared.cache, &query);
        let epoch = repo.epoch();
        let (matched, unmatched) = result_delta(&last, &new);
        if matched.is_empty() && unmatched.is_empty() {
            continue;
        }
        shared.subs.lock().update_last(id, new);
        let mut note = Message::new(Performative::Tell)
            .with_in_reply_to(sub_key)
            .with_ontology("infosleuth-service")
            .with_content(codec::sub_delta_to_sexpr(epoch, &matched, &unmatched));
        if let Some(t) = trace {
            note = note.with_trace(t);
        }
        shared.obs.sub_notifications.inc();
        push_out(out, &subscriber, note);
    }
    drop(timer);
}

fn handle_ping(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    // "In the event that a broker is alive but does not have information
    // about the agent that is doing the querying, [it] will receive a reply
    // containing no matches" — modelled as `sorry`.
    let perf = match env.message.content().and_then(SExpr::as_text) {
        Some(about) => {
            let repo = shared.repo.lock();
            if repo.contains_agent(about) || repo.peer_brokers().iter().any(|b| b == about) {
                Performative::Reply
            } else {
                Performative::Sorry
            }
        }
        None => Performative::Reply,
    };
    reply_as_broker(ctx, &env.from, env.message.reply_skeleton(perf));
}

fn handle_query(
    shared: &Shared,
    ctx: &AgentContext,
    env: &infosleuth_agent::Envelope,
    force_max: Option<usize>,
) {
    shared.obs.match_requests.inc();
    let Some(content) = env.message.content() else {
        let reply = env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("query without content"));
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    // Accept either a full broker-search or a bare service-query.
    let parse_timer = shared.obs.obs.stage(&shared.obs.parse, "parse");
    let request = match codec::search_request_from_sexpr(content) {
        Ok(r) => r,
        Err(_) => match codec::service_query_from_sexpr(content) {
            Ok(mut query) => {
                if let Some(n) = force_max {
                    query.max_matches = Some(query.max_matches.map_or(n, |m| m.min(n)));
                }
                let policy = if query.max_matches.is_some() {
                    SearchPolicy::default_for(query.max_matches)
                } else {
                    shared.config.default_policy
                };
                codec::SearchRequest { query, policy, visited: Vec::new() }
            }
            Err(e) => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string(e.to_string()));
                reply_as_broker(ctx, &env.from, reply);
                return;
            }
        },
    };
    drop(parse_timer);
    // §4.1 "Agents Discovering Brokers": a query for agents of type
    // `broker` is answered from the peer-broker table (plus this broker
    // itself), filtered by advertised specialization when the requester
    // names a data domain.
    if request.query.agent_type == Some(AgentType::Broker) {
        let matches = broker_discovery(shared, &request.query);
        let perf = if matches.is_empty() { Performative::Sorry } else { Performative::Reply };
        let reply =
            env.message.reply_skeleton(perf).with_content(codec::matches_to_sexpr(&matches));
        reply_as_broker(ctx, &env.from, reply);
        return;
    }
    let matches = collaborative_search(shared, ctx, &request);
    let perf = if matches.is_empty() { Performative::Sorry } else { Performative::Reply };
    let reply = env.message.reply_skeleton(perf).with_content(codec::matches_to_sexpr(&matches));
    reply_as_broker(ctx, &env.from, reply);
}

/// Answers "which brokers are available (for this domain)?" from the local
/// broker-advertisement table, so an operational agent can "query the
/// preferred broker for one or all of the brokers that are available in
/// the system with the capabilities and data domain that it is interested
/// in" and reconfigure its preferred-broker list.
fn broker_discovery(shared: &Shared, query: &ServiceQuery) -> Vec<MatchResult> {
    let fits = |ontologies: &std::collections::BTreeSet<String>| match &query.ontology {
        None => true,
        // A specialist fits if it covers the domain; a general-purpose
        // broker (empty specialization) fits anything.
        Some(o) => ontologies.is_empty() || ontologies.contains(o),
    };
    let mut out = Vec::new();
    {
        let repo = shared.repo.lock();
        for b in repo.broker_advertisements() {
            if fits(&b.specialization.ontologies) {
                out.push(MatchResult {
                    name: b.base.location.name.clone(),
                    address: b.base.location.address.clone(),
                    score: if b.specialization.ontologies.is_empty() { 1 } else { 2 },
                    ontology: query.ontology.clone(),
                    ..MatchResult::default()
                });
            }
        }
    }
    // This broker itself is also a candidate.
    if fits(&shared.config.objective.ontologies()) {
        out.push(MatchResult {
            name: shared.config.name.clone(),
            address: shared.config.address.clone(),
            score: if shared.config.objective.is_general_purpose() { 1 } else { 2 },
            ontology: query.ontology.clone(),
            ..MatchResult::default()
        });
    }
    out.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
    if let Some(n) = query.max_matches {
        out.truncate(n);
    }
    out
}

/// Local matchmaking plus the §3.3 collaborative expansion: "Each broker
/// request is forwarded to relevant other brokers … The response to the
/// broker query contains the union of all agents which have advertised to
/// some broker that the broker query reached, and which match the request."
fn collaborative_search(
    shared: &Shared,
    ctx: &AgentContext,
    request: &codec::SearchRequest,
) -> Vec<MatchResult> {
    // Local matches first. For the expansion decision we must consider
    // matches *without* the max_matches truncation, so run untruncated and
    // truncate at the very end.
    let mut untruncated = request.query.clone();
    untruncated.max_matches = None;
    let mut matches = {
        let mut repo = shared.repo.lock();
        // The cache keys the untruncated query, so every policy variant of
        // the same request shares one entry; peer expansion below always
        // runs against the request's own policy.
        let key = MatchCache::query_key(&untruncated);
        match shared.cache.lookup_keyed(repo.epoch(), &key) {
            // Peer expansion / truncation below mutate the list, so the
            // shared rows are copied out here; the copy is proportional
            // to the answer, not to the scoring work a hit skipped.
            Some(hit) => (*hit).clone(),
            None => {
                // Obtaining the model records the "saturation" stage via the
                // repository's hooks; candidate narrowing + scoring is its
                // own stage so one ask-all trace shows the full pipeline.
                let model = repo.saturated();
                let _t = shared.obs.obs.stage(&shared.obs.scoring, "scoring");
                let computed =
                    Arc::new(shared.config.matchmaker.match_query(&repo, &model, &untruncated));
                shared.cache.insert_keyed(repo.epoch(), key, Arc::clone(&computed));
                (*computed).clone()
            }
        }
    };

    if request.policy.should_expand(matches.len()) {
        let peers: Vec<String> = {
            let repo = shared.repo.lock();
            // §5.2.2: "brokers can advertise their capabilities to other
            // brokers which means that a broker can know in advance which
            // brokers it can immediately rule out from a query" — a peer
            // specialized in other ontologies cannot hold a match for this
            // query's ontology, so we skip it without a network round trip.
            let wanted_ontology = request.query.ontology.clone();
            repo.broker_advertisements()
                .filter(|b| {
                    let name = &b.base.location.name;
                    if request.visited.contains(name) || name == &shared.config.name {
                        return false;
                    }
                    match (&wanted_ontology, b.specialization.ontologies.is_empty()) {
                        // General-purpose peers, or no ontology requested:
                        // always worth asking.
                        (_, true) | (None, _) => true,
                        (Some(o), false) => b.specialization.ontologies.contains(o),
                    }
                })
                .map(|b| b.base.location.name.clone())
                .collect()
        };
        if !peers.is_empty() {
            // The forwarded visited list contains everywhere the request
            // has been or is being sent, preventing loops and duplicate
            // work even across consortium overlaps.
            let mut visited = request.visited.clone();
            visited.push(shared.config.name.clone());
            visited.extend(peers.iter().cloned());
            let forwarded = codec::SearchRequest {
                query: untruncated.clone(),
                policy: request.policy.next_hop(),
                visited,
            };
            for peer in peers {
                match forward_to_peer(shared, ctx, &peer, &forwarded) {
                    Ok(peer_matches) => {
                        matches.extend(peer_matches);
                        if !matches.is_empty()
                            && matches!(
                                request.policy.follow,
                                crate::policy::FollowOption::UntilMatch
                            )
                        {
                            break;
                        }
                    }
                    Err(_) => {
                        // Peer is unreachable: drop it from our repository
                        // so future searches skip it until it re-advertises.
                        shared.repo.lock().unadvertise_broker(&peer);
                    }
                }
            }
        }
    }

    // "…combines them with its own (possibly empty) list of providing
    // agents, eliminating duplicated entries."
    let mut deduped: Vec<MatchResult> = Vec::new();
    for m in matches {
        match deduped.iter_mut().find(|d| d.name == m.name) {
            Some(existing) => {
                if m.score > existing.score {
                    *existing = m;
                }
            }
            None => deduped.push(m),
        }
    }
    deduped.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
    if let Some(n) = request.query.max_matches {
        deduped.truncate(n);
    }
    deduped
}

fn forward_to_peer(
    shared: &Shared,
    ctx: &AgentContext,
    peer: &str,
    request: &codec::SearchRequest,
) -> Result<Vec<MatchResult>, BusError> {
    let msg = Message::new(Performative::AskAll)
        .with_ontology("infosleuth-service")
        .with_content(codec::search_request_to_sexpr(request));
    let reply = ctx.request(peer, msg, shared.config.peer_timeout)?;
    match reply.content() {
        Some(content) => Ok(codec::matches_from_sexpr(content).unwrap_or_default()),
        None => Ok(Vec::new()),
    }
}

/// KQML `broker-one`: "allow an agent to … ask a broker about other
/// services", here in the *brokered* (delegation) form — the broker finds
/// one matching agent, forwards the embedded message to it, and relays the
/// answer back to the requester. Content shape:
/// `(broker-one (service-query ...) (message "<kqml text>"))`.
fn handle_broker_one(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let fail = |reason: String| {
        let reply =
            env.message.reply_skeleton(Performative::Error).with_content(SExpr::string(reason));
        reply_as_broker(ctx, &env.from, reply);
    };
    let Some(items) = env.message.content().and_then(SExpr::as_list) else {
        return fail("broker-one expects (broker-one (service-query ...) (message ...))".into());
    };
    if items.first().and_then(SExpr::as_atom) != Some("broker-one") {
        return fail("expected (broker-one ...) content".into());
    }
    let Some(query_expr) = items.iter().find(|e| {
        e.as_list()
            .and_then(|l| l.first())
            .and_then(SExpr::as_atom)
            .map(|h| h == "service-query")
            .unwrap_or(false)
    }) else {
        return fail("broker-one missing service-query".into());
    };
    let mut query = match codec::service_query_from_sexpr(query_expr) {
        Ok(q) => q,
        Err(e) => return fail(e.to_string()),
    };
    query.max_matches = Some(1);
    let Some(embedded_text) = items.iter().find_map(|e| {
        let l = e.as_list()?;
        if l.first()?.as_atom()? == "message" {
            l.get(1)?.as_text()
        } else {
            None
        }
    }) else {
        return fail("broker-one missing embedded message".into());
    };
    let embedded = match Message::parse(embedded_text) {
        Ok(m) => m,
        Err(e) => return fail(format!("embedded message: {e}")),
    };
    // Find one provider (collaboratively, per the until-match default).
    let request = codec::SearchRequest {
        query: query.clone(),
        policy: SearchPolicy::default_for(Some(1)),
        visited: Vec::new(),
    };
    let matches = collaborative_search(shared, ctx, &request);
    let Some(target) = matches.first() else {
        let reply = env.message.reply_skeleton(Performative::Sorry);
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    // Forward and relay.
    match ctx.request(&target.name, embedded, shared.config.peer_timeout) {
        Ok(answer) => {
            let mut relay = env.message.reply_skeleton(answer.performative.clone());
            if let Some(content) = answer.content() {
                relay.set("content", content.clone());
            }
            relay.set("language", SExpr::atom("KQML"));
            reply_as_broker(ctx, &env.from, relay);
        }
        Err(e) => fail(format!("provider '{}' failed: {e}", target.name)),
    }
}

/// Builds the `broker-one` content payload that the broker agent expects.
pub fn broker_one_content(query: &ServiceQuery, embedded: &Message) -> SExpr {
    SExpr::list([
        SExpr::atom("broker-one"),
        codec::service_query_to_sexpr(query),
        SExpr::list([SExpr::atom("message"), SExpr::string(embedded.to_string())]),
    ])
}

// ---------------------------------------------------------------------
// Client-side helpers: what non-broker agents do to talk to a broker.
// ---------------------------------------------------------------------

/// Advertises an agent to a broker; `Ok(true)` = accepted, `Ok(false)` =
/// declined (specialization mismatch or validation failure).
pub fn advertise_to<R: Requester>(
    ep: &mut R,
    broker: &str,
    ad: &Advertisement,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Advertise)
        .with_ontology("infosleuth-service")
        .with_content(codec::advertisement_to_sexpr(ad));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Withdraws an agent's advertisement from a broker.
pub fn unadvertise_from<R: Requester>(
    ep: &mut R,
    broker: &str,
    agent: &str,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Unadvertise).with_content(SExpr::atom(agent));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Registers a standing subscription with a broker. Delta notifications go
/// to the agent named `reply_to`; the returned key identifies the
/// subscription (`:in-reply-to` on every notification, and the handle for
/// [`unsubscribe_from`]). `Ok(None)` means the broker declined the query
/// (e.g. it failed subscription admission analysis).
pub fn subscribe_to<R: Requester>(
    ep: &mut R,
    broker: &str,
    query: &ServiceQuery,
    reply_to: &str,
    timeout: Duration,
) -> Result<Option<String>, BusError> {
    let msg = Message::new(Performative::Subscribe)
        .with_ontology("infosleuth-service")
        .with("reply-to", SExpr::atom(reply_to))
        .with_content(codec::service_query_to_sexpr(query));
    let reply = ep.request(broker, msg, timeout)?;
    if reply.performative != Performative::Tell {
        return Ok(None);
    }
    Ok(reply.content().and_then(SExpr::as_text).map(str::to_string))
}

/// Cancels a standing subscription previously opened with [`subscribe_to`]
/// (same `reply_to`; only the registered subscriber may cancel).
pub fn unsubscribe_from<R: Requester>(
    ep: &mut R,
    broker: &str,
    sub_key: &str,
    reply_to: &str,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Other("unsubscribe".into()))
        .with("reply-to", SExpr::atom(reply_to))
        .with_content(SExpr::atom(sub_key));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Queries a broker for matching agents, optionally overriding the search
/// policy ("the requesting agent can then specify the policies under which
/// it wishes for the broker to initiate an inter-broker search").
pub fn query_broker<R: Requester>(
    ep: &mut R,
    broker: &str,
    query: &ServiceQuery,
    policy: Option<SearchPolicy>,
    timeout: Duration,
) -> Result<Vec<MatchResult>, BusError> {
    let content = match policy {
        Some(policy) => codec::search_request_to_sexpr(&codec::SearchRequest {
            query: query.clone(),
            policy,
            visited: Vec::new(),
        }),
        None => codec::service_query_to_sexpr(query),
    };
    let msg = Message::new(Performative::AskAll)
        .with_ontology("infosleuth-service")
        .with_content(content);
    let reply = ep.request(broker, msg, timeout)?;
    match reply.content() {
        Some(content) => Ok(codec::matches_from_sexpr(content).unwrap_or_default()),
        None => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::{
        paper_class_ontology, Capability, ConversationType, OntologyContent, SemanticInfo,
        SyntacticInfo,
    };

    const T: Duration = Duration::from_secs(5);

    fn resource_ad(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    fn seeded_repo() -> Repository {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        r
    }

    fn spawn_broker(bus: &Bus, name: &str) -> BrokerHandle {
        BrokerAgent::spawn(
            bus,
            BrokerConfig::new(name, format!("tcp://{name}.mcc.com:5500")),
            seeded_repo(),
        )
        .unwrap()
    }

    #[test]
    fn advertise_query_unadvertise_conversation() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        assert!(advertise_to(&mut agent, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let matches = query_broker(&mut agent, "broker1", &q, None, T).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].name, "ra1");
        assert!(unadvertise_from(&mut agent, "broker1", "ra1", T).unwrap());
        assert!(query_broker(&mut agent, "broker1", &q, None, T).unwrap().is_empty());
        broker.stop();
    }

    #[test]
    fn invalid_advertisement_is_declined() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        let mut bad = resource_ad("ra1", &["C1"]);
        bad.location.address = "not-an-address".into();
        assert!(!advertise_to(&mut agent, "broker1", &bad, T).unwrap());
        broker.stop();
    }

    #[test]
    fn analysis_rejection_sorry_carries_diagnostics() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        // 'C9' is not a class of the registered paper ontology: the static
        // analyzer rejects with IS021 and the sorry carries the report.
        let bad = resource_ad("ra1", &["C9"]);
        let msg =
            Message::new(Performative::Advertise).with_content(codec::advertisement_to_sexpr(&bad));
        let reply = agent.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let text = reply.content().and_then(|c| c.as_text()).unwrap_or_default();
        assert!(text.contains("IS021"), "sorry lacks diagnostic: {text}");
        broker.stop();
    }

    #[test]
    fn ping_semantics() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("ra1").unwrap();
        advertise_to(&mut agent, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        assert_eq!(infosleuth_agent::ping(&mut agent, "broker1", Some("ra1"), T), Ok(true));
        assert_eq!(infosleuth_agent::ping(&mut agent, "broker1", Some("ghost"), T), Ok(false));
        broker.stop();
        // Dead broker: transport error.
        assert!(infosleuth_agent::ping(
            &mut agent,
            "broker1",
            Some("ra1"),
            Duration::from_millis(100)
        )
        .is_err());
    }

    #[test]
    fn interbroker_search_unions_results() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra1 = bus.register("ra1").unwrap();
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra1, "broker1", &resource_ad("ra1", &["C2"]), T).unwrap();
        advertise_to(&mut ra2, "broker2", &resource_ad("ra2", &["C2"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C2"]);
        // Local-only sees one agent.
        let local = query_broker(&mut ra1, "broker1", &q, Some(SearchPolicy::local()), T).unwrap();
        assert_eq!(local.len(), 1);
        // Default policy (hop 1, all repositories) sees both.
        let all = query_broker(&mut ra1, "broker1", &q, None, T).unwrap();
        let names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["ra1", "ra2"]);
        b1.stop();
        b2.stop();
    }

    #[test]
    fn hop_count_limits_search_depth() {
        // Chain: broker1 knows broker2 knows broker3; agent only on broker3.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        b1.connect_peer("broker2").unwrap();
        b2.connect_peer("broker3").unwrap();
        // Remove reverse edges so the chain is strictly forward.
        b2.with_repository(|r| r.unadvertise_broker("broker1"));
        b3.with_repository(|r| r.unadvertise_broker("broker2"));
        let mut ra = bus.register("ra9").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra9", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let hop1 = SearchPolicy { hop_count: 1, follow: crate::FollowOption::AllRepositories };
        assert!(query_broker(&mut ra, "broker1", &q, Some(hop1), T).unwrap().is_empty());
        let hop2 = SearchPolicy { hop_count: 2, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(hop2), T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "ra9");
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn visited_list_prevents_cycles() {
        // Fully-connected triangle; query must terminate and not duplicate.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        interconnect(&[&b1, &b2, &b3]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker2", &resource_ad("ra1", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let deep = SearchPolicy { hop_count: 10, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(deep), T).unwrap();
        assert_eq!(found.len(), 1);
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn until_match_stops_early() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra2, "broker2", &resource_ad("ra2", &["C1"]), T).unwrap();
        // ask-one style: local match suffices, no expansion.
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"])
            .one();
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "ra1");
        b1.stop();
        b2.stop();
    }

    #[test]
    fn dead_peer_is_dropped_and_search_continues() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        interconnect(&[&b1, &b2, &b3]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra1", &["C1"]), T).unwrap();
        b2.stop(); // broker2 dies without unadvertising
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        assert_eq!(found.len(), 1);
        // broker2 was dropped from broker1's peer table.
        b1.with_repository(|r| {
            assert!(!r.peer_brokers().contains(&"broker2".to_string()));
        });
        b1.stop();
        b3.stop();
    }

    #[test]
    fn specialized_broker_forwards_mismatched_advertisements() {
        let bus = Bus::new();
        let health = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("health-broker", "tcp://h1:1")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        let general = spawn_broker(&bus, "general-broker");
        health.connect_peer("general-broker").unwrap();
        let mut agent = bus.register("food-ra").unwrap();
        let mut food_ad = resource_ad("food-ra", &[]);
        food_ad.semantic.content = vec![OntologyContent::new("food").with_classes(["supplier"])];
        // The specialized broker declines and suggests the general one.
        let msg = Message::new(Performative::Advertise)
            .with_content(codec::advertisement_to_sexpr(&food_ad));
        let reply = agent.request("health-broker", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let suggestions = reply.content().unwrap().as_list().unwrap();
        assert_eq!(suggestions[0], SExpr::atom("forward-to"));
        assert!(suggestions[1..].contains(&SExpr::atom("general-broker")));
        // The general broker accepts it.
        assert!(advertise_to(&mut agent, "general-broker", &food_ad, T).unwrap());
        health.stop();
        general.stop();
    }

    #[test]
    fn agents_discover_brokers_through_a_broker() {
        // §4.1: query a broker for the brokers available for a domain.
        let bus = Bus::new();
        let general = spawn_broker(&bus, "general-broker");
        let specialist = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("health-broker", "tcp://hb.mcc.com:5502")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        interconnect(&[&general, &specialist]).unwrap();
        let mut agent = bus.register("newcomer").unwrap();
        // All brokers, any domain.
        let q = ServiceQuery::for_agent_type(AgentType::Broker);
        let all = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        let mut names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["general-broker", "health-broker"]);
        // Healthcare domain: the specialist ranks first.
        let q = ServiceQuery::for_agent_type(AgentType::Broker).with_ontology("healthcare");
        let hc = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        assert_eq!(hc[0].name, "health-broker");
        assert_eq!(hc.len(), 2); // generalist still serves any domain
                                 // Food domain: the healthcare specialist is excluded.
        let q = ServiceQuery::for_agent_type(AgentType::Broker).with_ontology("food");
        let food = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        let names: Vec<&str> = food.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["general-broker"]);
        general.stop();
        specialist.stop();
    }

    #[test]
    fn peer_rule_out_skips_mismatched_specialists() {
        // broker1 (generalist) knows broker2 (healthcare specialist) and
        // broker3 (generalist). A paper-classes query is never forwarded
        // to broker2 — even though broker2's repository secretly contains
        // a matching agent, proving the rule-out happened client-side.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("broker2", "tcp://b2.mcc.com:5501")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        let b3 = spawn_broker(&bus, "broker3");
        interconnect(&[&b1, &b2, &b3]).unwrap();
        // Plant a matching advertisement directly inside broker2.
        b2.with_repository(|r| {
            r.advertise(resource_ad("hidden-ra", &["C1"])).unwrap();
        });
        let mut ra = bus.register("ra3").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra3", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        let names: Vec<&str> = found.iter().map(|m| m.name.as_str()).collect();
        // Only the agent reachable through the non-ruled-out peer appears.
        assert_eq!(names, vec!["ra3"], "broker2 must be ruled out in advance");
        // A query with no ontology still consults everyone.
        let q_any = ServiceQuery::for_agent_type(AgentType::Resource);
        let found = query_broker(&mut ra, "broker1", &q_any, None, T).unwrap();
        let names: Vec<&str> = found.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"hidden-ra"), "no-ontology query reaches specialists");
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn liveness_sweep_prunes_dead_agents() {
        let bus = Bus::new();
        let mut repo = seeded_repo();
        repo.register_ontology(paper_class_ontology());
        let broker = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("broker1", "tcp://b1.mcc.com:5500")
                .with_ping_interval(Some(Duration::from_millis(50))),
            Repository::new(),
        )
        .unwrap();
        // A live agent that answers pings.
        let mut live = bus.register("live-ra").unwrap();
        let live_thread = std::thread::spawn({
            let bus = bus.clone();
            move || {
                let mut ep = bus.register("live-ra-loop").unwrap();
                drop(ep.try_recv()); // silence unused warnings
            }
        });
        live_thread.join().unwrap();
        advertise_to(&mut live, "broker1", &resource_ad("live-ra", &[]), T).unwrap();
        // A doomed agent that advertises then dies.
        let mut doomed = bus.register("doomed-ra").unwrap();
        advertise_to(&mut doomed, "broker1", &resource_ad("doomed-ra", &[]), T).unwrap();
        broker.with_repository(|r| {
            assert!(r.contains_agent("live-ra"));
            assert!(r.contains_agent("doomed-ra"));
        });
        doomed.unregister(); // the agent "fails" without unregistering
                             // Keep the live agent answering pings while the sweep runs.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(env) = live.recv_timeout(Duration::from_millis(20)) {
                if env.message.performative == Performative::Ping {
                    let _ = live.send(&env.from, env.message.reply_skeleton(Performative::Reply));
                }
            }
            let pruned = broker.with_repository(|r| !r.contains_agent("doomed-ra"));
            if pruned {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sweep never pruned the dead agent");
        }
        broker.with_repository(|r| {
            assert!(r.contains_agent("live-ra"), "live agent must survive the sweep");
            assert!(!r.contains_agent("doomed-ra"));
        });
        broker.stop();
    }

    #[test]
    fn failed_liveness_probes_are_counted_and_reported() {
        // A dead advertised agent makes the sweep's ping fail at the
        // transport: that failure must show up in the broker's
        // delivery-failure stat AND reach the monitor agent as a log tell
        // (instead of being silently swallowed as in the seed).
        let bus = Bus::new();
        let runtime = AgentRuntime::new(
            bus.as_transport(),
            RuntimeConfig::default().with_monitor("monitor-agent"),
        );
        let mut monitor = bus.register("monitor-agent").unwrap();
        let broker = BrokerAgent::spawn_on(
            &runtime,
            BrokerConfig::new("broker1", "tcp://b1.mcc.com:5500")
                .with_ping_interval(Some(Duration::from_millis(50))),
            Repository::new(),
        )
        .unwrap();
        let mut doomed = bus.register("doomed-ra").unwrap();
        advertise_to(&mut doomed, "broker1", &resource_ad("doomed-ra", &[]), T).unwrap();
        assert_eq!(broker.delivery_failures(), 0);
        doomed.unregister();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while broker.delivery_failures() == 0 {
            assert!(std::time::Instant::now() < deadline, "sweep never failed a probe");
            std::thread::sleep(Duration::from_millis(10));
        }
        let env = monitor
            .recv_timeout(Duration::from_secs(2))
            .expect("monitor receives the delivery-failure log");
        assert_eq!(env.message.get_text("ontology"), Some(infosleuth_agent::LOG_ONTOLOGY));
        let items = env.message.content().and_then(SExpr::as_list).unwrap().to_vec();
        assert_eq!(items[0], SExpr::atom("delivery-failure"));
        assert_eq!(items[1], SExpr::atom("broker1"));
        assert_eq!(items[2], SExpr::atom("doomed-ra"));
        broker.stop();
        runtime.shutdown();
    }

    #[test]
    fn broker_one_forwards_to_the_best_match() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        // A provider that answers ask-one with a canned reply. Register
        // its endpoint before spawning so the broker can reach it as soon
        // as it is advertised.
        let mut ep = bus.register("provider-ra").unwrap();
        let provider = std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                if let Some(env) = ep.recv_timeout(Duration::from_millis(20)) {
                    if env.message.performative == Performative::AskOne {
                        let reply = env
                            .message
                            .reply_skeleton(Performative::Reply)
                            .with_content(SExpr::string("42 rows"));
                        let _ = ep.send(&env.from, reply);
                        break;
                    }
                }
            }
            ep.unregister();
        });
        let mut client = bus.register("client").unwrap();
        advertise_to(&mut client, "broker1", &resource_ad("provider-ra", &["C1"]), T).unwrap();
        // Delegate: "broker-one, forward my ask-one to whoever has C1".
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let embedded = Message::new(Performative::AskOne)
            .with_language("SQL 2.0")
            .with_content(SExpr::string("select * from C1"));
        let msg = Message::new(Performative::BrokerOne)
            .with_content(super::broker_one_content(&q, &embedded));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Reply, "unexpected reply: {reply}");
        assert_eq!(reply.content(), Some(&SExpr::string("42 rows")));
        provider.join().unwrap();
        // No provider for an unknown class → sorry.
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C9"]);
        let msg2 = Message::new(Performative::BrokerOne)
            .with_content(super::broker_one_content(&q2, &embedded));
        let reply2 = client.request("broker1", msg2, T).unwrap();
        assert_eq!(reply2.performative, Performative::Sorry);
        broker.stop();
    }

    #[test]
    fn broker_one_rejects_malformed_content() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut client = bus.register("client").unwrap();
        let msg = Message::new(Performative::BrokerOne).with_content(SExpr::atom("nonsense"));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Error);
        broker.stop();
    }

    #[test]
    fn unsupported_performative_gets_error() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        let msg = Message::new(Performative::Other("achieve".into()));
        let reply = agent.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Error);
        broker.stop();
    }

    #[test]
    fn subscribe_notifies_on_churn_and_unsubscribe_stops_it() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut inbox = bus.register("watcher").unwrap();
        let mut client = bus.register("client").unwrap();

        let query = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let key = subscribe_to(&mut client, "broker1", &query, "watcher", T).unwrap().unwrap();

        // Initial snapshot: empty repository, empty delta.
        let snap = inbox.recv_timeout(T).unwrap().message;
        assert_eq!(snap.performative, Performative::Tell);
        assert_eq!(snap.in_reply_to(), Some(key.as_str()));
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(snap.content().unwrap()).unwrap();
        assert!(matched.is_empty() && unmatched.is_empty());

        // A matching advertisement arrives: one `matched` entry.
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());
        let note = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, "ra1");
        assert!(unmatched.is_empty());

        // A non-matching advertisement: no notification at all.
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra2", &["C3"]), T).unwrap());
        // Its unadvertise produces the next notification we receive below.
        assert!(unadvertise_from(&mut client, "broker1", "ra1", T).unwrap());
        let note = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert!(matched.is_empty());
        assert_eq!(unmatched, vec!["ra1".to_string()]);

        assert_eq!(broker.subscription_count(), 1);
        assert!(unsubscribe_from(&mut client, "broker1", &key, "watcher", T).unwrap());
        assert_eq!(broker.subscription_count(), 0);
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra3", &["C1"]), T).unwrap());
        assert!(inbox.recv_timeout(Duration::from_millis(200)).is_none());
        broker.stop();
    }

    #[test]
    fn subscription_admission_rejects_vacuous_queries() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut client = bus.register("client").unwrap();
        let msg = Message::new(Performative::Subscribe)
            .with_content(codec::service_query_to_sexpr(&ServiceQuery::any()));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let text = reply.content().and_then(SExpr::as_text).unwrap().to_string();
        assert!(text.contains("IS027"), "diagnostics not rendered: {text}");
        assert_eq!(broker.subscription_count(), 0);
        broker.stop();
    }

    #[test]
    fn resync_after_out_of_band_rule_delta_notifies() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut inbox = bus.register("watcher").unwrap();
        let mut client = bus.register("client").unwrap();
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());

        let query = ServiceQuery::any().with_capability(Capability::subscription());
        let key = subscribe_to(&mut client, "broker1", &query, "watcher", T).unwrap().unwrap();
        let snap = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, _) = codec::sub_delta_from_sexpr(snap.content().unwrap()).unwrap();
        assert!(matched.is_empty());

        // Out-of-band derived rule: every resource agent now also counts
        // as a subscription agent. The repository mutation happens outside
        // any performative, so the test drives the resync.
        broker.with_repository(|r| {
            r.register_derived_rules("cap(A, subscription) :- agent(A, resource).").unwrap()
        });
        broker.resync_subscriptions();
        let note = inbox.recv_timeout(T).unwrap().message;
        assert_eq!(note.in_reply_to(), Some(key.as_str()));
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, "ra1");
        assert!(unmatched.is_empty());
        broker.stop();
    }
}
