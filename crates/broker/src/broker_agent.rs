//! The live broker agent, hosted on the shared [`AgentRuntime`].
//!
//! Handles the conversations of Figures 3–4 (advertise / query) plus the
//! multibroker machinery of §4: broker-to-broker advertising, inter-broker
//! search with hop counts, follow options and visited-list loop prevention,
//! liveness pings, and specialization-based admission.
//!
//! Incoming messages are handled concurrently on the runtime's bounded
//! worker pool (up to the per-agent in-flight cap) so that a broker
//! blocked waiting on a peer's reply never stops serving its own
//! repository — forwarded searches between mutually-querying brokers would
//! otherwise deadlock. The liveness sweep runs as the behavior's periodic
//! tick, which the runtime guarantees never overlaps itself.

use crate::codec;
use crate::digest::{CapabilityDigest, DigestBuilder};
use crate::match_cache::{MatchCache, MatchCacheStats, DEFAULT_MATCH_CACHE_CAPACITY};
use crate::matchmaker::{MatchResult, Matchmaker};
use crate::objective::{AdmissionDecision, BrokerObjective};
use crate::policy::SearchPolicy;
use crate::repository::Repository;
use crate::sub_index::{result_delta, SubId, SubscriptionRegistry};
use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Bus, BusError, Requester,
    RuntimeConfig, Transport,
};
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_obs::{Counter, Histogram, Obs, TraceContext};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, BrokerAdvertisement, BrokerSpecialization,
    ServiceQuery,
};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static configuration for one broker.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    pub name: String,
    /// Advertised contact directions, e.g. `tcp://b1.mcc.com:4356`.
    pub address: String,
    pub objective: BrokerObjective,
    /// Policy used when a requester does not specify one ("if the
    /// requesting agent did not specify any policy, the default policy set
    /// by a broker will be used").
    pub default_policy: SearchPolicy,
    /// How long to wait for each peer broker during an inter-broker search.
    pub peer_timeout: Duration,
    /// Consortium memberships (Fig. 13).
    pub consortia: BTreeSet<String>,
    pub matchmaker: Matchmaker,
    /// Liveness sweep interval: "the broker periodically pings each of the
    /// agents that have advertised to it, to discover any agents that have
    /// failed. The broker removes from its repository all information about
    /// agents that have failed". `None` disables the sweep.
    pub ping_interval: Option<Duration>,
    /// Whether standing subscriptions use the inverted
    /// [`SubscriptionIndex`](crate::SubscriptionIndex) to prune which
    /// subscriptions a repository mutation re-scores. `false` falls back to
    /// re-evaluating every subscription on every mutation (the naive
    /// baseline; notification sequences are identical either way).
    pub subscription_index: bool,
    /// Whether inter-broker searches consult peer capability digests to
    /// prune forwards (DESIGN.md §17). A peer is skipped only when its
    /// digest — a sound over-approximation of its repository — proves it
    /// cannot match, and only for terminal forwards (the forwarded hop
    /// cannot expand further, so the peer answers from its own repository
    /// alone). `false` restores broad fan-out — the parity tests and the
    /// bench baseline use it.
    pub routing_digests: bool,
    /// Maximum envelopes the hosting runtime may drain into one broker
    /// dispatch. At 1 (the default) every message takes the classic
    /// per-message path. Above 1, queued repository mutations
    /// (advertise / update / unadvertise) are applied under a single
    /// repository lock and their sub-deltas and acks leave in one
    /// coalesced transport batch — mutations are still processed
    /// strictly in arrival order, one at a time, so the emitted
    /// sequences are byte-identical to the unbatched path.
    pub batch_limit: usize,
    /// Test-only seeded bug (compiled only under the `seeded-reorder`
    /// cargo feature, and inert unless switched on at runtime): the
    /// batched dispatcher applies each queued mutation run in *reverse*
    /// arrival order. The interleaving explorer in `infosleuth-check`
    /// must catch the resulting divergence — it is the oracle proving
    /// the explorer can detect real ordering bugs.
    #[cfg(feature = "seeded-reorder")]
    pub seeded_reorder: bool,
}

impl BrokerConfig {
    pub fn new(name: impl Into<String>, address: impl Into<String>) -> Self {
        BrokerConfig {
            name: name.into(),
            address: address.into(),
            objective: BrokerObjective::GeneralPurpose,
            default_policy: SearchPolicy::default(),
            peer_timeout: Duration::from_secs(2),
            consortia: BTreeSet::new(),
            matchmaker: Matchmaker::default(),
            ping_interval: Some(Duration::from_secs(30)),
            subscription_index: true,
            routing_digests: true,
            batch_limit: 1,
            #[cfg(feature = "seeded-reorder")]
            seeded_reorder: false,
        }
    }

    /// Arms the seeded dispatcher-reordering bug (see the field doc).
    #[cfg(feature = "seeded-reorder")]
    pub fn with_seeded_reorder(mut self, on: bool) -> Self {
        self.seeded_reorder = on;
        self
    }

    /// Opts the broker into batched dispatch: up to `n` queued envelopes
    /// per job (clamped to at least 1).
    pub fn with_batch_limit(mut self, n: usize) -> Self {
        self.batch_limit = n.max(1);
        self
    }

    pub fn with_ping_interval(mut self, interval: Option<Duration>) -> Self {
        self.ping_interval = interval;
        self
    }

    /// Enables or disables the inverted subscription index (on by default).
    pub fn with_subscription_index(mut self, on: bool) -> Self {
        self.subscription_index = on;
        self
    }

    /// Enables or disables digest-based peer pruning (on by default).
    pub fn with_routing_digests(mut self, on: bool) -> Self {
        self.routing_digests = on;
        self
    }

    pub fn with_objective(mut self, o: BrokerObjective) -> Self {
        self.objective = o;
        self
    }

    pub fn with_consortia<I, S>(mut self, consortia: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.consortia.extend(consortia.into_iter().map(Into::into));
        self
    }

    /// This broker's own advertisement to peers.
    pub fn broker_advertisement(&self) -> BrokerAdvertisement {
        let base = Advertisement::new(AgentLocation::new(
            self.name.clone(),
            self.address.clone(),
            AgentType::Broker,
        ));
        BrokerAdvertisement::new(base)
            .with_consortia(self.consortia.iter().cloned())
            .with_specialization(BrokerSpecialization {
                agent_types: BTreeSet::new(),
                ontologies: self.objective.ontologies(),
                restrictions: Vec::new(),
            })
    }
}

struct Shared {
    config: BrokerConfig,
    repo: Mutex<Repository>,
    /// Epoch-tagged LRU over local match results; consulted (and filled)
    /// by every ask/recommend before any scoring happens.
    cache: MatchCache,
    /// Standing subscriptions plus their inverted index. Lock order: `repo`
    /// before `subs`; never take `repo` while holding `subs`.
    subs: Mutex<SubscriptionRegistry>,
    /// Routing-digest state. Lock order: `repo` before `digests`; never
    /// take `repo` (or `subs`) while holding `digests`.
    digests: Mutex<DigestState>,
    /// Peers that failed a forward, in retry backoff. Taken last, never
    /// held across a send.
    suspects: Mutex<HashMap<String, SuspectEntry>>,
    obs: BrokerObs,
}

/// The digest half of the routing layer: this broker's own incrementally
/// maintained [`DigestBuilder`], plus the latest digest received from
/// each peer broker (DESIGN.md §17).
struct DigestState {
    builder: DigestBuilder,
    /// Repository epoch the builder was last synced at. A mismatch means
    /// the repository mutated out-of-band (test pre-seeding, rule or
    /// ontology loads) and the builder is rebuilt from scratch on next use.
    built_epoch: u64,
    /// Epoch of the last digest broadcast to peers — re-advertisements are
    /// delta-driven: nothing is sent while this matches the repository.
    advertised_epoch: Option<u64>,
    /// Latest digest each peer broker advertised to us.
    peers: HashMap<String, CapabilityDigest>,
}

impl DigestState {
    fn seeded(repo: &Repository) -> DigestState {
        DigestState {
            builder: DigestBuilder::from_repo(repo),
            built_epoch: repo.epoch(),
            advertised_epoch: None,
            peers: HashMap::new(),
        }
    }
}

/// A peer that failed a forward: retried with exponential backoff instead
/// of being unadvertised outright. Only [`SUSPECT_DROP_AFTER`] consecutive
/// failures remove it from the repository; a digest or advertisement from
/// the peer clears the suspicion immediately.
struct SuspectEntry {
    failures: u32,
    retry_at: Instant,
}

const SUSPECT_BASE_BACKOFF: Duration = Duration::from_millis(500);
const SUSPECT_MAX_BACKOFF: Duration = Duration::from_secs(30);
/// Consecutive forward failures after which the peer is unadvertised.
const SUSPECT_DROP_AFTER: u32 = 5;

/// The broker's slice of the hosting runtime's metrics registry:
/// request counters plus the query-side pipeline stages (`parse`,
/// `scoring`). The repository-side stages (`analysis`, `repository`,
/// `saturation`) are hooked in via [`Repository::set_obs`].
struct BrokerObs {
    obs: Arc<Obs>,
    match_requests: Counter,
    advertises: Counter,
    unadvertises: Counter,
    /// `subscribe` performatives accepted into the registry.
    subscribes: Counter,
    /// Repository mutations intersected against the subscription index.
    sub_events: Counter,
    /// Subscriptions selected for re-scoring by those intersections
    /// (includes index false positives, which yield empty deltas).
    sub_affected: Counter,
    /// Non-empty delta notifications actually delivered.
    sub_notifications: Counter,
    /// Inter-broker forwards actually sent.
    forwards: Counter,
    /// Peer forwards skipped because the peer's digest cannot match.
    digest_pruned: Counter,
    /// Contacted peers whose digest admitted the query but who returned
    /// zero matches (digest false positives).
    digest_fp: Counter,
    /// Forward failures that demoted a peer to the suspect list.
    peer_suspect: Counter,
    /// Digest (re-)advertisements ingested from peers.
    digest_updates: Counter,
    /// Forwarded requests that arrived carrying a stale digest epoch.
    digest_stale: Counter,
    parse: Histogram,
    scoring: Histogram,
    /// End-to-end cost of one mutation's notification fan-out: intersect +
    /// re-score affected + diff + send.
    sub_notify: Histogram,
}

impl BrokerObs {
    fn new(obs: &Arc<Obs>, broker: &str) -> BrokerObs {
        let reg = obs.registry();
        let lat = |stage: &str| {
            reg.latency("broker_stage_seconds", &[("broker", broker), ("stage", stage)])
        };
        BrokerObs {
            obs: Arc::clone(obs),
            match_requests: reg.counter("broker_match_requests_total", &[("broker", broker)]),
            advertises: reg.counter("broker_advertise_total", &[("broker", broker)]),
            unadvertises: reg.counter("broker_unadvertise_total", &[("broker", broker)]),
            subscribes: reg.counter("broker_subscribe_total", &[("broker", broker)]),
            sub_events: reg.counter("broker_sub_events_total", &[("broker", broker)]),
            sub_affected: reg.counter("broker_sub_affected_total", &[("broker", broker)]),
            sub_notifications: reg.counter("broker_sub_notifications_total", &[("broker", broker)]),
            forwards: reg.counter("broker_forwards_total", &[("broker", broker)]),
            digest_pruned: reg.counter("broker_digest_pruned_total", &[("broker", broker)]),
            digest_fp: reg.counter("broker_digest_fp_total", &[("broker", broker)]),
            peer_suspect: reg.counter("broker_peer_suspect_total", &[("broker", broker)]),
            digest_updates: reg.counter("broker_digest_updates_total", &[("broker", broker)]),
            digest_stale: reg.counter("broker_digest_stale_total", &[("broker", broker)]),
            parse: lat("parse"),
            scoring: lat("scoring"),
            // Fan-out latencies sit in the single-digit-µs range on the
            // indexed path; the coarse default buckets (first bound
            // 100µs) would lump every sample into one bucket, so this
            // histogram registers with the fine µs-scale bounds.
            sub_notify: reg.histogram(
                "broker_sub_notify_seconds",
                &[("broker", broker)],
                infosleuth_obs::default_fine_latency_buckets(),
            ),
        }
    }
}

/// The broker's [`AgentBehavior`]: message dispatch plus the liveness
/// sweep as its periodic tick.
struct BrokerBehavior {
    shared: Arc<Shared>,
}

impl AgentBehavior for BrokerBehavior {
    fn on_message(&self, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
        handle_envelope(&self.shared, ctx, env);
    }

    fn batch_limit(&self) -> usize {
        self.shared.config.batch_limit
    }

    fn on_batch(&self, ctx: &AgentContext, batch: Vec<infosleuth_agent::Envelope>) {
        handle_batch(&self.shared, ctx, batch);
    }

    fn tick_interval(&self) -> Option<Duration> {
        self.shared.config.ping_interval
    }

    fn on_tick(&self, ctx: &AgentContext) {
        liveness_sweep(&self.shared, ctx);
    }
}

/// The broker agent. Construct with [`BrokerAgent::spawn`] (in-proc bus),
/// [`BrokerAgent::spawn_over`] (any transport, private runtime), or
/// [`BrokerAgent::spawn_on`] (an existing shared runtime).
pub struct BrokerAgent;

/// A handle to a running broker: stop it, connect it to peers, inspect its
/// repository and delivery-failure count.
pub struct BrokerHandle {
    shared: Arc<Shared>,
    agent: AgentHandle,
    /// Present when this broker owns a private runtime (the `spawn` /
    /// `spawn_over` paths); dropped last so in-flight handlers wind down
    /// after the agent is unregistered.
    _runtime: Option<AgentRuntime>,
}

impl BrokerAgent {
    /// Registers the broker on the in-process bus with a private runtime.
    pub fn spawn(
        bus: &Bus,
        config: BrokerConfig,
        repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        BrokerAgent::spawn_over(bus.as_transport(), config, repo)
    }

    /// Registers the broker on any transport with a private runtime.
    pub fn spawn_over(
        transport: Arc<dyn Transport>,
        config: BrokerConfig,
        repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        // A broker needs concurrent handlers (mutually-querying peers) but
        // not a big pool when it runs alone.
        let runtime = AgentRuntime::new(transport, RuntimeConfig::default().with_workers(4));
        let mut handle = BrokerAgent::spawn_on(&runtime, config, repo)?;
        handle._runtime = Some(runtime);
        Ok(handle)
    }

    /// Hosts the broker on an existing runtime (the shared-community and
    /// multi-agent-per-node deployments).
    pub fn spawn_on(
        runtime: &AgentRuntime,
        config: BrokerConfig,
        mut repo: Repository,
    ) -> Result<BrokerHandle, BusError> {
        repo.set_obs(runtime.obs(), &config.name);
        let obs = BrokerObs::new(runtime.obs(), &config.name);
        let cache = MatchCache::new(DEFAULT_MATCH_CACHE_CAPACITY)
            .with_obs(runtime.obs().registry(), &config.name);
        let subs = Mutex::new(SubscriptionRegistry::new(config.subscription_index));
        let digests = Mutex::new(DigestState::seeded(&repo));
        let shared = Arc::new(Shared {
            config,
            repo: Mutex::new(repo),
            cache,
            subs,
            digests,
            suspects: Mutex::new(HashMap::new()),
            obs,
        });
        let behavior = Arc::new(BrokerBehavior { shared: Arc::clone(&shared) });
        let agent = runtime.spawn(shared.config.name.clone(), behavior)?;
        Ok(BrokerHandle { shared, agent, _runtime: None })
    }

    /// Builds the broker's dispatch core without spawning it on a
    /// runtime. The interleaving explorer in `infosleuth-check` drives
    /// the returned [`BrokerCore`]'s behavior directly with a detached
    /// [`AgentContext`], so that *it* — not a worker pool — decides the
    /// order in which envelopes are dispatched.
    pub fn core(obs: &Arc<Obs>, config: BrokerConfig, mut repo: Repository) -> BrokerCore {
        repo.set_obs(obs, &config.name);
        let broker_obs = BrokerObs::new(obs, &config.name);
        let cache =
            MatchCache::new(DEFAULT_MATCH_CACHE_CAPACITY).with_obs(obs.registry(), &config.name);
        let subs = Mutex::new(SubscriptionRegistry::new(config.subscription_index));
        let digests = Mutex::new(DigestState::seeded(&repo));
        let shared = Arc::new(Shared {
            config,
            repo: Mutex::new(repo),
            cache,
            subs,
            digests,
            suspects: Mutex::new(HashMap::new()),
            obs: broker_obs,
        });
        let behavior = Arc::new(BrokerBehavior { shared: Arc::clone(&shared) });
        BrokerCore { shared, behavior }
    }
}

/// The broker's dispatch core detached from any hosting runtime: the
/// same [`AgentBehavior`] a runtime would drive, plus read-only probes
/// over the shared state that the explorer's invariants compare across
/// schedules.
pub struct BrokerCore {
    shared: Arc<Shared>,
    behavior: Arc<BrokerBehavior>,
}

impl BrokerCore {
    /// The behavior to dispatch envelopes into (`on_message` /
    /// `on_batch`, exactly as the runtime's event loop would).
    pub fn behavior(&self) -> Arc<dyn AgentBehavior> {
        Arc::clone(&self.behavior) as Arc<dyn AgentBehavior>
    }

    pub fn name(&self) -> &str {
        &self.shared.config.name
    }

    /// Effective batch limit of the wrapped behavior.
    pub fn batch_limit(&self) -> usize {
        self.shared.config.batch_limit
    }

    /// Repository mutation epoch (bumps once per applied mutation).
    pub fn repo_epoch(&self) -> u64 {
        self.shared.repo.lock().epoch()
    }

    /// Canonical byte-stable digest of the repository: every resource and
    /// broker advertisement rendered to KQML text, sorted. Every schedule
    /// of one scenario must converge to an identical fingerprint.
    pub fn repo_fingerprint(&self) -> String {
        let repo = self.shared.repo.lock();
        let mut lines: Vec<String> =
            repo.agents().map(|ad| codec::advertisement_to_sexpr(ad).to_string()).collect();
        lines.extend(
            repo.broker_advertisements()
                .map(|ad| codec::broker_advertisement_to_sexpr(ad).to_string()),
        );
        lines.sort();
        lines.join("\n")
    }

    /// Number of standing subscriptions currently registered.
    pub fn subscription_count(&self) -> usize {
        self.shared.subs.lock().len()
    }
}

/// Snapshot of one broker's inter-broker routing counters (the same
/// values the Prometheus scrape exports as `broker_*_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Forwards actually sent to peers.
    pub forwards: u64,
    /// Forwards skipped because the peer's digest cannot match.
    pub digest_pruned: u64,
    /// Contacted peers whose digest admitted the query but who returned
    /// zero matches (digest false positives).
    pub digest_fp: u64,
    /// Forward failures that demoted a peer to the suspect list.
    pub peer_suspects: u64,
    /// Digest (re-)advertisements ingested from peers.
    pub digest_updates: u64,
    /// Forwarded requests received carrying a stale digest epoch.
    pub digest_stale: u64,
}

impl BrokerHandle {
    pub fn name(&self) -> &str {
        &self.shared.config.name
    }

    /// Runs a closure against the broker's repository (tests, metrics, and
    /// pre-seeding). An out-of-band mutation that bumps the epoch also
    /// triggers a digest re-advertisement to peers, exactly as a mutation
    /// arriving as a performative would.
    pub fn with_repository<T>(&self, f: impl FnOnce(&mut Repository) -> T) -> T {
        let (result, out) = {
            let mut repo = self.shared.repo.lock();
            let result = f(&mut repo);
            let mut out = Vec::new();
            broadcast_digest(&self.shared, &repo, &mut out);
            (result, out)
        };
        for (to, msg) in out {
            let _ = self.agent.ctx().send(&to, msg);
        }
        result
    }

    /// Inter-broker routing counters (digest pruning, suspects, staleness).
    pub fn routing_stats(&self) -> RoutingStats {
        let o = &self.shared.obs;
        RoutingStats {
            forwards: o.forwards.get(),
            digest_pruned: o.digest_pruned.get(),
            digest_fp: o.digest_fp.get(),
            peer_suspects: o.peer_suspect.get(),
            digest_updates: o.digest_updates.get(),
            digest_stale: o.digest_stale.get(),
        }
    }

    /// A fresh snapshot of this broker's own capability digest.
    pub fn digest(&self) -> CapabilityDigest {
        let repo = self.shared.repo.lock();
        own_digest(&self.shared, &repo)
    }

    /// Epoch of the digest this broker currently stores for `peer`
    /// (`None` until the peer's first digest arrives). Tests and benches
    /// use it to wait for digest propagation to quiesce.
    pub fn peer_digest_epoch(&self, peer: &str) -> Option<u64> {
        self.shared.digests.lock().peers.get(peer).map(|d| d.epoch)
    }

    /// Hit/miss/eviction/stale counters of this broker's match cache.
    pub fn match_cache_stats(&self) -> MatchCacheStats {
        self.shared.cache.stats()
    }

    /// Number of standing subscriptions currently registered.
    pub fn subscription_count(&self) -> usize {
        self.shared.subs.lock().len()
    }

    /// Re-evaluates every standing subscription and delivers deltas to the
    /// ones whose result set changed. Call after mutating the repository
    /// out-of-band (via [`with_repository`](Self::with_repository), e.g. a
    /// derived-rule registration or ontology load) — mutations arriving as
    /// performatives notify automatically.
    pub fn resync_subscriptions(&self) {
        let all = self.shared.subs.lock().ids();
        notify_subscriptions(&self.shared, self.agent.ctx(), all);
    }

    /// Sends by this broker that the transport refused (each one was also
    /// reported to the runtime's monitor agent, when configured).
    pub fn delivery_failures(&self) -> u64 {
        self.agent.delivery_failures()
    }

    /// Advertises this broker to a peer broker and stores the peer's
    /// reciprocal advertisement, so both ends know each other (the
    /// bidirectional arrows of Figure 11).
    pub fn connect_peer(&self, peer: &str) -> Result<(), BusError> {
        let ctx = self.agent.ctx();
        let my_ad = self.shared.config.broker_advertisement();
        // The hello carries our current digest so the peer can prune
        // forwards to us from the first exchange on.
        let digest = if self.shared.config.routing_digests {
            let repo = self.shared.repo.lock();
            Some(own_digest(&self.shared, &repo))
        } else {
            None
        };
        let msg = Message::new(Performative::Advertise)
            .with_ontology("infosleuth-service")
            .with_content(codec::broker_hello_to_sexpr(&my_ad, digest.as_ref()));
        let reply = ctx.request(peer, msg, self.shared.config.peer_timeout)?;
        if let Some(content) = reply.content() {
            if let Ok(peer_ad) = codec::broker_advertisement_from_sexpr(content) {
                let name = peer_ad.base.location.name.clone();
                let _ = self.shared.repo.lock().advertise_broker(peer_ad);
                if let Some(d) = codec::embedded_digest(content) {
                    shared_ingest_digest(&self.shared, d);
                }
                self.shared.suspects.lock().remove(&name);
            }
        }
        Ok(())
    }

    /// Stops the broker cleanly: the broker's mailbox is removed from the
    /// transport (subsequent sends fail like sends to a dead process) and
    /// no further messages are dispatched to it.
    pub fn stop(self) {
        self.agent.stop();
        // Drop order then shuts down the private runtime, if any.
    }
}

/// Fully interconnects a set of brokers into a consortium ("a set of
/// brokers that are fully interconnected").
pub fn interconnect(brokers: &[&BrokerHandle]) -> Result<(), BusError> {
    for a in brokers {
        for b in brokers {
            if a.name() != b.name() {
                a.connect_peer(b.name())?;
            }
        }
    }
    Ok(())
}

/// Sends `reply` as the broker (not as a worker's ephemeral endpoint).
/// A refused delivery is no longer silently swallowed: the context counts
/// it in the broker's delivery-failure stat and reports it to the
/// runtime's monitor agent.
fn reply_as_broker(ctx: &AgentContext, to: &str, reply: Message) {
    let _ = ctx.send(to, reply);
}

/// True when the configured matchmaker applies the full default
/// semantics. Ablated matchmakers (semantic or constraint layers off) can
/// match agents the digest would rule out, so their digests are marked
/// unprunable.
fn semantics_default(shared: &Shared) -> bool {
    shared.config.matchmaker == Matchmaker::default()
}

/// Rebuilds the digest builder from the repository when an out-of-band
/// mutation (anything that bumped the epoch without flowing through
/// [`apply_advertise`] / [`apply_unadvertise`]) left it behind.
fn sync_builder(digests: &mut DigestState, repo: &Repository) {
    if digests.built_epoch != repo.epoch() {
        digests.builder = DigestBuilder::from_repo(repo);
        digests.built_epoch = repo.epoch();
    }
}

/// This broker's current digest, synced to the repository. Caller holds
/// the `repo` lock; takes `digests` (repo → digests).
fn own_digest(shared: &Shared, repo: &Repository) -> CapabilityDigest {
    let mut digests = shared.digests.lock();
    sync_builder(&mut digests, repo);
    digests.builder.snapshot(&shared.config.name, repo, semantics_default(shared))
}

/// Stores a digest a peer advertised and clears any suspicion of that
/// peer — a broker that speaks is alive.
fn shared_ingest_digest(shared: &Shared, digest: CapabilityDigest) {
    let peer = digest.broker.clone();
    shared.obs.digest_updates.inc();
    shared.digests.lock().peers.insert(peer.clone(), digest);
    shared.suspects.lock().remove(&peer);
}

/// Appends a digest re-advertisement to every known peer broker when the
/// repository changed since the last broadcast. Delta-driven, never
/// polled: nothing is sent while the digest epoch is unchanged.
fn broadcast_digest(shared: &Shared, repo: &Repository, out: &mut Vec<(String, Message)>) {
    if !shared.config.routing_digests {
        return;
    }
    let epoch = repo.epoch();
    if shared.digests.lock().advertised_epoch == Some(epoch) {
        return;
    }
    let digest = own_digest(shared, repo);
    shared.digests.lock().advertised_epoch = Some(epoch);
    let peers = repo.peer_brokers();
    if peers.is_empty() {
        return;
    }
    let fact = codec::digest_to_sexpr(&digest);
    for peer in peers {
        let msg = Message::new(Performative::Update)
            .with_ontology("infosleuth-service")
            .with_content(fact.clone());
        push_out(out, &peer, msg);
    }
}

/// Pings every advertised agent and removes the ones that no longer
/// respond — the repository-maintenance half of §2.2's lifecycle.
fn liveness_sweep(shared: &Shared, ctx: &AgentContext) {
    let agents: Vec<String> = {
        let repo = shared.repo.lock();
        repo.agent_names().map(str::to_string).collect()
    };
    if agents.is_empty() {
        return;
    }
    let mut dead = Vec::new();
    for agent in agents {
        let probe = Message::new(Performative::Ping);
        // A probe the transport refuses counts as a delivery failure (and
        // is reported to the monitor) in addition to marking the agent
        // dead — the sweep no longer swallows send errors.
        if ctx.request(&agent, probe, shared.config.peer_timeout).is_err() {
            dead.push(agent);
        }
    }
    if !dead.is_empty() {
        let (affected, mut out) = {
            let mut repo = shared.repo.lock();
            let mut affected = BTreeSet::new();
            for agent in dead {
                let old = repo.advertisement_arc(&agent).cloned();
                let pre_epoch = repo.epoch();
                if repo.unadvertise(&agent) {
                    digest_unadvertised(shared, &repo, pre_epoch, &agent);
                    if let Some(old) = &old {
                        affected.append(&mut subs_affected(shared, &repo, Some(old), None));
                    }
                }
            }
            let mut out = Vec::new();
            broadcast_digest(shared, &repo, &mut out);
            (affected, out)
        };
        notify_subscriptions(shared, ctx, affected);
        for (to, msg) in out.drain(..) {
            let _ = ctx.send(&to, msg);
        }
    }
}

/// Incrementally applies one successful `repo.advertise` to the digest
/// builder. `pre_epoch` is the epoch before the mutation: if the builder
/// wasn't synced to it, the increment is skipped and the next
/// [`own_digest`] rebuilds from scratch instead.
fn digest_advertised(shared: &Shared, repo: &Repository, pre_epoch: u64, ad: &Advertisement) {
    let mut digests = shared.digests.lock();
    if digests.built_epoch == pre_epoch {
        digests.builder.advertise(ad, repo);
        digests.built_epoch = repo.epoch();
    }
}

/// Incrementally applies one successful `repo.unadvertise` to the digest
/// builder (same contract as [`digest_advertised`]).
fn digest_unadvertised(shared: &Shared, repo: &Repository, pre_epoch: u64, name: &str) {
    let mut digests = shared.digests.lock();
    if digests.built_epoch == pre_epoch {
        digests.builder.unadvertise(name);
        digests.built_epoch = repo.epoch();
    }
}

fn handle_envelope(shared: &Shared, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
    let msg = &env.message;
    match msg.performative {
        Performative::Advertise | Performative::Update => handle_advertise(shared, ctx, &env),
        Performative::Unadvertise => handle_unadvertise(shared, ctx, &env),
        Performative::Ping => handle_ping(shared, ctx, &env),
        Performative::AskAll | Performative::RecruitAll => handle_query(shared, ctx, &env, None),
        Performative::AskOne | Performative::RecruitOne => handle_query(shared, ctx, &env, Some(1)),
        Performative::BrokerOne => handle_broker_one(shared, ctx, &env),
        Performative::Subscribe => handle_subscribe(shared, ctx, &env),
        Performative::Other(ref other) if other == "unsubscribe" => {
            handle_unsubscribe(shared, ctx, &env)
        }
        _ => {
            let reply = msg.reply_skeleton(Performative::Error).with_content(SExpr::string(
                format!("unsupported performative '{}'", msg.performative),
            ));
            reply_as_broker(ctx, &env.from, reply);
        }
    }
}

/// True for the performatives the batched path applies under a shared
/// repository lock.
fn is_repo_mutation(p: &Performative) -> bool {
    matches!(p, Performative::Advertise | Performative::Update | Performative::Unadvertise)
}

/// Batched dispatch (`batch_limit > 1`): consecutive runs of repository
/// mutations are applied under one repo lock and their outgoing traffic
/// (sub-deltas then acks, in mutation order) leaves as one coalesced
/// [`AgentContext::send_batch`]; everything else dispatches through the
/// classic per-message path in place, so arrival order is preserved
/// across the whole batch.
fn handle_batch(shared: &Shared, ctx: &AgentContext, batch: Vec<infosleuth_agent::Envelope>) {
    let mut run: Vec<infosleuth_agent::Envelope> = Vec::new();
    for env in batch {
        if is_repo_mutation(&env.message.performative) {
            run.push(env);
        } else {
            flush_mutation_run(shared, ctx, &mut run);
            dispatch_with_span(shared, ctx, env);
        }
    }
    flush_mutation_run(shared, ctx, &mut run);
}

/// Applies a run of queued mutations strictly in order under a single
/// repository lock — each one still bumps the epoch, probes the
/// subscription index, and emits its own deltas, exactly as if it had
/// arrived alone; only the lock round-trips and the transport sends are
/// amortized.
fn flush_mutation_run(
    shared: &Shared,
    ctx: &AgentContext,
    run: &mut Vec<infosleuth_agent::Envelope>,
) {
    if run.is_empty() {
        return;
    }
    #[cfg(feature = "seeded-reorder")]
    if shared.config.seeded_reorder {
        run.reverse();
    }
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        for env in run.drain(..) {
            let parent = env.message.trace().and_then(TraceContext::parse);
            let _span = shared.obs.obs.tracer().agent_span(
                format!("recv:{}", env.message.performative),
                ctx.name(),
                parent,
            );
            if env.message.performative == Performative::Unadvertise {
                apply_unadvertise(shared, &mut repo, &env, &mut out);
            } else {
                apply_advertise(shared, &mut repo, &env, &mut out);
            }
        }
    }
    let _ = ctx.send_batch(out);
}

/// Runs one non-mutation envelope through the per-message handler,
/// wrapped in the dispatch span the runtime would have opened had the
/// envelope not ridden in a batch.
fn dispatch_with_span(shared: &Shared, ctx: &AgentContext, env: infosleuth_agent::Envelope) {
    let parent = env.message.trace().and_then(TraceContext::parse);
    let span = shared.obs.obs.tracer().agent_span(
        format!("recv:{}", env.message.performative),
        ctx.name(),
        parent,
    );
    handle_envelope(shared, ctx, env);
    drop(span);
}

/// Queues an outgoing message, stamping the active span's trace context
/// the way [`AgentContext::send`] would have at this point — buffered
/// sends otherwise leave the handler span before they hit the wire.
fn push_out(out: &mut Vec<(String, Message)>, to: &str, mut msg: Message) {
    if msg.trace().is_none() {
        if let Some(c) = infosleuth_obs::current_context() {
            msg = msg.with_trace(c.encode());
        }
    }
    out.push((to.to_string(), msg));
}

fn handle_advertise(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        apply_advertise(shared, &mut repo, env, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The advertise / update core, against an already-locked repository.
/// Outgoing traffic (sub-deltas first, the ack last) is pushed onto
/// `out` in the exact order the unbatched path would have sent it.
fn apply_advertise(
    shared: &Shared,
    repo: &mut Repository,
    env: &infosleuth_agent::Envelope,
    out: &mut Vec<(String, Message)>,
) {
    shared.obs.advertises.inc();
    let Some(content) = env.message.content() else {
        let reply = env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("advertise without content"));
        push_out(out, &env.from, reply);
        return;
    };
    // A peer's digest re-advertisement (delta-driven, one-way): refresh
    // the routing entry; no reply is owed.
    if let Ok(digest) = codec::digest_from_sexpr(content) {
        shared_ingest_digest(shared, digest);
        return;
    }
    // Peer broker advertising itself?
    if let Ok(broker_ad) = codec::broker_advertisement_from_sexpr(content) {
        let peer = broker_ad.base.location.name.clone();
        let accepted = repo.advertise_broker(broker_ad);
        let reply = match accepted {
            Ok(()) => {
                // The hello may carry the peer's digest; either way a peer
                // that advertises stops being suspect.
                if let Some(d) = codec::embedded_digest(content) {
                    shared_ingest_digest(shared, d);
                }
                shared.suspects.lock().remove(&peer);
                // Reciprocate with our own advertisement (and digest) so
                // the sender can store both — one round trip establishes
                // mutual knowledge.
                let mine = shared.config.broker_advertisement();
                let digest = shared.config.routing_digests.then(|| own_digest(shared, repo));
                env.message
                    .reply_skeleton(Performative::Tell)
                    .with_content(codec::broker_hello_to_sexpr(&mine, digest.as_ref()))
            }
            Err(e) => env
                .message
                .reply_skeleton(Performative::Sorry)
                .with_content(SExpr::string(e.to_string())),
        };
        push_out(out, &env.from, reply);
        return;
    }
    match codec::advertisement_from_sexpr(content) {
        Ok(ad) => {
            let decision = {
                // Fit of each known peer, from their advertised specialties.
                let peer_fits: Vec<(String, f64)> = repo
                    .broker_advertisements()
                    .map(|b| {
                        let objective = if b.specialization.ontologies.is_empty() {
                            BrokerObjective::GeneralPurpose
                        } else {
                            BrokerObjective::Specialized {
                                ontologies: b.specialization.ontologies.clone(),
                            }
                        };
                        (b.base.location.name.clone(), objective.fit(&ad))
                    })
                    .collect();
                shared.config.objective.admit(&ad, &peer_fits)
            };
            let reply = match decision {
                AdmissionDecision::Accept => {
                    let name = ad.location.name.clone();
                    let old = repo.advertisement_arc(&name).cloned();
                    let pre_epoch = repo.epoch();
                    let result = repo.advertise(ad);
                    let affected = if result.is_ok() {
                        let new = repo.advertisement_arc(&name).cloned();
                        if let Some(new) = &new {
                            digest_advertised(shared, repo, pre_epoch, new);
                        }
                        subs_affected(shared, repo, old.as_deref(), new.as_deref())
                    } else {
                        BTreeSet::new()
                    };
                    // Deltas go out before the ack so a subscriber that is
                    // also the advertiser sees a deterministic sequence.
                    notify_subscriptions_locked(shared, repo, affected, out);
                    // Digest re-advertisements to peers also precede the
                    // ack: an advertiser that queries right after its ack
                    // already has the updates ahead of it in peer inboxes.
                    broadcast_digest(shared, repo, out);
                    match result {
                        Ok(()) => env.message.reply_skeleton(Performative::Tell),
                        Err(e) => env
                            .message
                            .reply_skeleton(Performative::Sorry)
                            .with_content(SExpr::string(e.to_string())),
                    }
                }
                AdmissionDecision::Forward { candidates } => {
                    // "If no brokers accept the advertisement, the broker …
                    // will reply with a sorry message", listing better fits
                    // when it has suggestions.
                    let mut items = vec![SExpr::atom("forward-to")];
                    items.extend(candidates.iter().map(|c| SExpr::atom(c.as_str())));
                    env.message.reply_skeleton(Performative::Sorry).with_content(SExpr::List(items))
                }
            };
            push_out(out, &env.from, reply);
        }
        Err(e) => {
            let reply = env
                .message
                .reply_skeleton(Performative::Error)
                .with_content(SExpr::string(e.to_string()));
            push_out(out, &env.from, reply);
        }
    }
}

fn handle_unadvertise(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        apply_unadvertise(shared, &mut repo, env, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The unadvertise core, against an already-locked repository (deltas
/// first, ack last — same contract as [`apply_advertise`]).
fn apply_unadvertise(
    shared: &Shared,
    repo: &mut Repository,
    env: &infosleuth_agent::Envelope,
    out: &mut Vec<(String, Message)>,
) {
    shared.obs.unadvertises.inc();
    // Content is the agent name (atom) or absent (sender unadvertises
    // itself).
    let name = env
        .message
        .content()
        .and_then(SExpr::as_text)
        .map(str::to_string)
        .unwrap_or_else(|| env.from.clone());
    let old = repo.advertisement_arc(&name).cloned();
    let pre_epoch = repo.epoch();
    let was_agent = repo.unadvertise(&name);
    let removed = was_agent || repo.unadvertise_broker(&name);
    if was_agent {
        digest_unadvertised(shared, repo, pre_epoch, &name);
    } else if removed {
        // A departed peer broker takes its digest and suspicion with it.
        shared.digests.lock().peers.remove(&name);
        shared.suspects.lock().remove(&name);
    }
    let affected = match &old {
        Some(old) if removed => subs_affected(shared, repo, Some(old), None),
        _ => BTreeSet::new(),
    };
    notify_subscriptions_locked(shared, repo, affected, out);
    broadcast_digest(shared, repo, out);
    let perf = if removed { Performative::Tell } else { Performative::Sorry };
    push_out(out, &env.from, env.message.reply_skeleton(perf));
}

/// Registers a standing service query (§2.2's "subscribe to changes in the
/// set of matching agents"). Notifications are `tell`s carrying a
/// `sub-delta` (only agents that entered or left the match set) to the
/// `:reply-to` endpoint, tagged with the subscription key as
/// `:in-reply-to` and the subscribe message's `:x-trace`.
fn handle_subscribe(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let msg = &env.message;
    let Some(content) = msg.content() else {
        let reply = msg
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("subscribe without content"));
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    let query = match codec::service_query_from_sexpr(content) {
        Ok(q) => q,
        Err(e) => {
            let reply =
                msg.reply_skeleton(Performative::Error).with_content(SExpr::string(e.to_string()));
            reply_as_broker(ctx, &env.from, reply);
            return;
        }
    };
    let subscriber = msg.get_text("reply-to").unwrap_or(&env.from).to_string();
    // Admission: an unsatisfiable or vacuous standing query would be paid
    // for on every repository mutation — reject it with the rendered
    // diagnostics instead.
    let report = shared.repo.lock().analyze_subscription(&subscriber, &query);
    if report.has_errors() {
        let reply = msg
            .reply_skeleton(Performative::Sorry)
            .with_content(SExpr::string(report.render_human(None)));
        reply_as_broker(ctx, &env.from, reply);
        return;
    }
    let trace = msg.trace().map(str::to_string);
    let (sub_key, initial, epoch) = {
        let mut repo = shared.repo.lock();
        let initial = shared.config.matchmaker.match_query_cached(&mut repo, &shared.cache, &query);
        let epoch = repo.epoch();
        let mut subs = shared.subs.lock();
        let sub_key = msg
            .reply_with()
            .map(str::to_string)
            .unwrap_or_else(|| format!("sub-{}", subs.next_key()));
        subs.register(
            sub_key.clone(),
            subscriber.clone(),
            trace.clone(),
            query,
            Arc::clone(&initial),
            &repo,
        );
        (sub_key, initial, epoch)
    };
    shared.obs.subscribes.inc();
    // Initial snapshot: the delta against the empty set, so the subscriber
    // learns the baseline the following deltas build on.
    let mut snapshot = Message::new(Performative::Tell)
        .with_in_reply_to(sub_key.clone())
        .with_ontology("infosleuth-service")
        .with_content(codec::sub_delta_to_sexpr(epoch, &initial, &[]));
    if let Some(t) = &trace {
        snapshot = snapshot.with_trace(t.clone());
    }
    let _ = ctx.send(&subscriber, snapshot);
    // Ack after the snapshot so a subscriber that is also the requester
    // observes a deterministic sequence.
    let reply = msg.reply_skeleton(Performative::Tell).with_content(SExpr::atom(sub_key));
    reply_as_broker(ctx, &env.from, reply);
}

/// Cancels a standing subscription: content (or `:in-reply-to`) names the
/// subscription key; only the registered subscriber may cancel it.
fn handle_unsubscribe(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let msg = &env.message;
    let key =
        msg.content().and_then(SExpr::as_text).or_else(|| msg.in_reply_to()).map(str::to_string);
    let subscriber = msg.get_text("reply-to").unwrap_or(&env.from);
    let removed = key
        .and_then(|k| {
            let mut subs = shared.subs.lock();
            subs.find(&k, subscriber).and_then(|id| subs.remove(id))
        })
        .is_some();
    let perf = if removed { Performative::Tell } else { Performative::Sorry };
    reply_as_broker(ctx, &env.from, msg.reply_skeleton(perf));
}

/// The subscriptions a repository mutation must re-score: the inverted
/// index's candidate set (or everything, in naive mode / under derived
/// rules). Caller holds the repo lock; takes the subs lock (repo → subs).
fn subs_affected(
    shared: &Shared,
    repo: &Repository,
    old: Option<&Advertisement>,
    new: Option<&Advertisement>,
) -> BTreeSet<SubId> {
    let mut subs = shared.subs.lock();
    if subs.is_empty() {
        return BTreeSet::new();
    }
    shared.obs.sub_events.inc();
    subs.affected(old, new, repo)
}

/// Re-scores each affected subscription (through the epoch-tagged match
/// cache) and delivers a `sub-delta` notification to every one whose
/// result set actually changed. Index false positives die here as empty
/// deltas. Iteration is in ascending id order, so notification sequences
/// are deterministic and identical between indexed and naive modes.
fn notify_subscriptions(shared: &Shared, ctx: &AgentContext, affected: BTreeSet<SubId>) {
    if affected.is_empty() {
        return;
    }
    let mut out = Vec::new();
    {
        let mut repo = shared.repo.lock();
        notify_subscriptions_locked(shared, &mut repo, affected, &mut out);
    }
    for (to, msg) in out {
        let _ = ctx.send(&to, msg);
    }
}

/// The fan-out core, against an already-locked repository: notifications
/// are pushed onto `out` (in ascending id order) rather than sent, so the
/// batched path can coalesce them with the mutation acks that follow.
fn notify_subscriptions_locked(
    shared: &Shared,
    repo: &mut Repository,
    affected: BTreeSet<SubId>,
    out: &mut Vec<(String, Message)>,
) {
    if affected.is_empty() {
        return;
    }
    shared.obs.sub_affected.add(affected.len() as u64);
    let timer = shared.obs.obs.stage(&shared.obs.sub_notify, "sub-notify");
    for id in affected {
        let snapshot = {
            let subs = shared.subs.lock();
            subs.entry(id).map(|s| {
                (
                    s.query.clone(),
                    Arc::clone(&s.last),
                    s.subscriber.clone(),
                    s.sub_key.clone(),
                    s.trace.clone(),
                )
            })
        };
        let Some((query, last, subscriber, sub_key, trace)) = snapshot else {
            continue;
        };
        let new = shared.config.matchmaker.match_query_cached(repo, &shared.cache, &query);
        let epoch = repo.epoch();
        let (matched, unmatched) = result_delta(&last, &new);
        if matched.is_empty() && unmatched.is_empty() {
            continue;
        }
        shared.subs.lock().update_last(id, new);
        let mut note = Message::new(Performative::Tell)
            .with_in_reply_to(sub_key)
            .with_ontology("infosleuth-service")
            .with_content(codec::sub_delta_to_sexpr(epoch, &matched, &unmatched));
        if let Some(t) = trace {
            note = note.with_trace(t);
        }
        shared.obs.sub_notifications.inc();
        push_out(out, &subscriber, note);
    }
    drop(timer);
}

fn handle_ping(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    // "In the event that a broker is alive but does not have information
    // about the agent that is doing the querying, [it] will receive a reply
    // containing no matches" — modelled as `sorry`.
    let perf = match env.message.content().and_then(SExpr::as_text) {
        Some(about) => {
            let repo = shared.repo.lock();
            if repo.contains_agent(about) || repo.peer_brokers().iter().any(|b| b == about) {
                Performative::Reply
            } else {
                Performative::Sorry
            }
        }
        None => Performative::Reply,
    };
    reply_as_broker(ctx, &env.from, env.message.reply_skeleton(perf));
}

fn handle_query(
    shared: &Shared,
    ctx: &AgentContext,
    env: &infosleuth_agent::Envelope,
    force_max: Option<usize>,
) {
    shared.obs.match_requests.inc();
    let Some(content) = env.message.content() else {
        let reply = env
            .message
            .reply_skeleton(Performative::Error)
            .with_content(SExpr::string("query without content"));
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    // Accept either a full broker-search or a bare service-query.
    let parse_timer = shared.obs.obs.stage(&shared.obs.parse, "parse");
    let request = match codec::search_request_from_sexpr(content) {
        Ok(r) => r,
        Err(_) => match codec::service_query_from_sexpr(content) {
            Ok(mut query) => {
                if let Some(n) = force_max {
                    query.max_matches = Some(query.max_matches.map_or(n, |m| m.min(n)));
                }
                let policy = if query.max_matches.is_some() {
                    SearchPolicy::default_for(query.max_matches)
                } else {
                    shared.config.default_policy
                };
                codec::SearchRequest { query, policy, visited: Vec::new(), digest_epoch: None }
            }
            Err(e) => {
                let reply = env
                    .message
                    .reply_skeleton(Performative::Error)
                    .with_content(SExpr::string(e.to_string()));
                reply_as_broker(ctx, &env.from, reply);
                return;
            }
        },
    };
    drop(parse_timer);
    // §4.1 "Agents Discovering Brokers": a query for agents of type
    // `broker` is answered from the peer-broker table (plus this broker
    // itself), filtered by advertised specialization when the requester
    // names a data domain.
    if request.query.agent_type == Some(AgentType::Broker) {
        let matches = broker_discovery(shared, &request.query);
        let perf = if matches.is_empty() { Performative::Sorry } else { Performative::Reply };
        let reply =
            env.message.reply_skeleton(perf).with_content(codec::matches_to_sexpr(&matches));
        reply_as_broker(ctx, &env.from, reply);
        return;
    }
    let matches = collaborative_search(shared, ctx, &request);
    let perf = if matches.is_empty() { Performative::Sorry } else { Performative::Reply };
    // A forwarding broker stamps the epoch of our digest it consulted;
    // when that is stale, piggyback a fresh digest on the reply so the
    // sender repairs its routing table without an extra round trip.
    let refresh = request.digest_epoch.and_then(|seen| {
        if !shared.config.routing_digests {
            return None;
        }
        let repo = shared.repo.lock();
        if repo.epoch() != seen {
            shared.obs.digest_stale.inc();
            Some(own_digest(shared, &repo))
        } else {
            None
        }
    });
    let reply = env
        .message
        .reply_skeleton(perf)
        .with_content(codec::matches_reply_to_sexpr(&matches, refresh.as_ref()));
    reply_as_broker(ctx, &env.from, reply);
}

/// Answers "which brokers are available (for this domain)?" from the local
/// broker-advertisement table, so an operational agent can "query the
/// preferred broker for one or all of the brokers that are available in
/// the system with the capabilities and data domain that it is interested
/// in" and reconfigure its preferred-broker list.
fn broker_discovery(shared: &Shared, query: &ServiceQuery) -> Vec<MatchResult> {
    let fits = |ontologies: &std::collections::BTreeSet<String>| match &query.ontology {
        None => true,
        // A specialist fits if it covers the domain; a general-purpose
        // broker (empty specialization) fits anything.
        Some(o) => ontologies.is_empty() || ontologies.contains(o),
    };
    let mut out = Vec::new();
    {
        let repo = shared.repo.lock();
        for b in repo.broker_advertisements() {
            if fits(&b.specialization.ontologies) {
                out.push(MatchResult {
                    name: b.base.location.name.clone(),
                    address: b.base.location.address.clone(),
                    score: if b.specialization.ontologies.is_empty() { 1 } else { 2 },
                    ontology: query.ontology.clone(),
                    ..MatchResult::default()
                });
            }
        }
    }
    // This broker itself is also a candidate.
    if fits(&shared.config.objective.ontologies()) {
        out.push(MatchResult {
            name: shared.config.name.clone(),
            address: shared.config.address.clone(),
            score: if shared.config.objective.is_general_purpose() { 1 } else { 2 },
            ontology: query.ontology.clone(),
            ..MatchResult::default()
        });
    }
    out.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
    if let Some(n) = query.max_matches {
        out.truncate(n);
    }
    out
}

/// Local matchmaking plus the §3.3 collaborative expansion: "Each broker
/// request is forwarded to relevant other brokers … The response to the
/// broker query contains the union of all agents which have advertised to
/// some broker that the broker query reached, and which match the request."
fn collaborative_search(
    shared: &Shared,
    ctx: &AgentContext,
    request: &codec::SearchRequest,
) -> Vec<MatchResult> {
    // Local matches first. For the expansion decision we must consider
    // matches *without* the max_matches truncation, so run untruncated and
    // truncate at the very end.
    let mut untruncated = request.query.clone();
    untruncated.max_matches = None;
    let mut matches = {
        let mut repo = shared.repo.lock();
        // The cache keys the untruncated query, so every policy variant of
        // the same request shares one entry; peer expansion below always
        // runs against the request's own policy.
        let key = MatchCache::query_key(&untruncated);
        match shared.cache.lookup_keyed(repo.epoch(), &key) {
            // Peer expansion / truncation below mutate the list, so the
            // shared rows are copied out here; the copy is proportional
            // to the answer, not to the scoring work a hit skipped.
            Some(hit) => (*hit).clone(),
            None => {
                // Obtaining the model records the "saturation" stage via the
                // repository's hooks; candidate narrowing + scoring is its
                // own stage so one ask-all trace shows the full pipeline.
                let model = repo.saturated();
                let _t = shared.obs.obs.stage(&shared.obs.scoring, "scoring");
                let computed =
                    Arc::new(shared.config.matchmaker.match_query(&repo, &model, &untruncated));
                shared.cache.insert_keyed(repo.epoch(), key, Arc::clone(&computed));
                (*computed).clone()
            }
        }
    };

    if request.policy.should_expand(matches.len()) {
        let peers = peer_candidates(shared, request, &untruncated);
        if !peers.is_empty() {
            // The forwarded visited list contains everywhere the request
            // has been or is being sent, preventing loops and duplicate
            // work even across consortium overlaps.
            let mut visited = request.visited.clone();
            visited.push(shared.config.name.clone());
            visited.extend(peers.iter().map(|p| p.name.clone()));
            let forwarded = codec::SearchRequest {
                query: untruncated.clone(),
                policy: request.policy.next_hop(),
                visited,
                digest_epoch: None,
            };
            if matches!(request.policy.follow, crate::policy::FollowOption::UntilMatch) {
                // Until-match stays serial: the point is to stop asking as
                // soon as anyone answers.
                for peer in &peers {
                    match forward_to_peer(shared, ctx, peer, &forwarded) {
                        Ok(peer_matches) => {
                            note_forward_success(shared, peer, &peer_matches);
                            matches.extend(peer_matches);
                            if !matches.is_empty() {
                                break;
                            }
                        }
                        Err(_) => note_forward_failure(shared, &peer.name),
                    }
                }
            } else {
                for (peer, result) in forward_to_peers(shared, ctx, &peers, &forwarded) {
                    match result {
                        Ok(peer_matches) => {
                            note_forward_success(shared, &peer, &peer_matches);
                            matches.extend(peer_matches);
                        }
                        Err(_) => note_forward_failure(shared, &peer.name),
                    }
                }
            }
        }
    }

    // "…combines them with its own (possibly empty) list of providing
    // agents, eliminating duplicated entries."
    let mut deduped: Vec<MatchResult> = Vec::new();
    for m in matches {
        match deduped.iter_mut().find(|d| d.name == m.name) {
            Some(existing) => {
                if m.score > existing.score {
                    *existing = m;
                }
            }
            None => deduped.push(m),
        }
    }
    deduped.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
    if let Some(n) = request.query.max_matches {
        deduped.truncate(n);
    }
    deduped
}

/// A peer eligible for one forwarded search, with the epoch of the digest
/// that admitted it (`None`: no digest on file, or digests disabled —
/// forwarded anyway, since absence of evidence must not lose recall).
#[derive(Clone)]
struct PeerTarget {
    name: String,
    digest_epoch: Option<u64>,
}

/// The peers one forwarded search should contact, three filters deep:
/// the §5.2.2 specialization rule-out, the suspect backoff window, and —
/// for terminal forwards only — the peer's capability digest. A digest
/// covers the peer's *local* repository, so pruning on it is sound only
/// when the forwarded hop cannot expand further; a relay hop (remaining
/// hop budget) is always contacted.
fn peer_candidates(
    shared: &Shared,
    request: &codec::SearchRequest,
    untruncated: &ServiceQuery,
) -> Vec<PeerTarget> {
    let names: Vec<String> = {
        let repo = shared.repo.lock();
        // §5.2.2: "brokers can advertise their capabilities to other
        // brokers which means that a broker can know in advance which
        // brokers it can immediately rule out from a query" — a peer
        // specialized in other ontologies cannot hold a match for this
        // query's ontology, so we skip it without a network round trip.
        let wanted_ontology = request.query.ontology.clone();
        repo.broker_advertisements()
            .filter(|b| {
                let name = &b.base.location.name;
                if request.visited.contains(name) || name == &shared.config.name {
                    return false;
                }
                match (&wanted_ontology, b.specialization.ontologies.is_empty()) {
                    // General-purpose peers, or no ontology requested:
                    // always worth asking.
                    (_, true) | (None, _) => true,
                    (Some(o), false) => b.specialization.ontologies.contains(o),
                }
            })
            .map(|b| b.base.location.name.clone())
            .collect()
    };
    let now = Instant::now();
    let names: Vec<String> = {
        let suspects = shared.suspects.lock();
        names.into_iter().filter(|n| !suspects.get(n).is_some_and(|s| now < s.retry_at)).collect()
    };
    let terminal = request.policy.next_hop().hop_count == 0;
    let prune = shared.config.routing_digests && terminal;
    let digests = shared.digests.lock();
    let mut out = Vec::new();
    for name in names {
        let digest = if prune { digests.peers.get(&name) } else { None };
        if let Some(d) = digest {
            if !d.can_match(untruncated) {
                shared.obs.digest_pruned.inc();
                continue;
            }
        }
        out.push(PeerTarget { name, digest_epoch: digest.map(|d| d.epoch) });
    }
    out
}

/// Forward success: clear suspicion, and count a digest false positive
/// when the digest admitted the peer but it had nothing.
fn note_forward_success(shared: &Shared, peer: &PeerTarget, matches: &[MatchResult]) {
    shared.suspects.lock().remove(&peer.name);
    if peer.digest_epoch.is_some() && matches.is_empty() {
        shared.obs.digest_fp.inc();
    }
}

/// Forward failure: demote the peer to suspect with exponential backoff
/// instead of unadvertising it outright. Only [`SUSPECT_DROP_AFTER`]
/// consecutive failures remove it from the repository; its next
/// advertisement or digest re-admits it.
fn note_forward_failure(shared: &Shared, peer: &str) {
    shared.obs.peer_suspect.inc();
    let drop_peer = {
        let mut suspects = shared.suspects.lock();
        let entry = suspects
            .entry(peer.to_string())
            .or_insert(SuspectEntry { failures: 0, retry_at: Instant::now() });
        entry.failures = entry.failures.saturating_add(1);
        let backoff = SUSPECT_BASE_BACKOFF
            .saturating_mul(1u32 << (entry.failures - 1).min(6))
            .min(SUSPECT_MAX_BACKOFF);
        entry.retry_at = Instant::now() + backoff;
        entry.failures >= SUSPECT_DROP_AFTER
    };
    if drop_peer {
        shared.repo.lock().unadvertise_broker(peer);
        shared.digests.lock().peers.remove(peer);
        shared.suspects.lock().remove(peer);
    }
}

/// Refreshes the stored digest of whichever broker piggybacked one on a
/// matches reply (the staleness-repair half of the epoch protocol).
fn ingest_reply_digest(shared: &Shared, content: &SExpr) {
    if let Some(d) = codec::embedded_digest(content) {
        shared_ingest_digest(shared, d);
    }
}

fn forward_to_peer(
    shared: &Shared,
    ctx: &AgentContext,
    peer: &PeerTarget,
    request: &codec::SearchRequest,
) -> Result<Vec<MatchResult>, BusError> {
    let mut stamped = request.clone();
    stamped.digest_epoch = peer.digest_epoch;
    let msg = Message::new(Performative::AskAll)
        .with_ontology("infosleuth-service")
        .with_content(codec::search_request_to_sexpr(&stamped));
    shared.obs.forwards.inc();
    let reply = ctx.request(&peer.name, msg, shared.config.peer_timeout)?;
    match reply.content() {
        Some(content) => {
            ingest_reply_digest(shared, content);
            Ok(codec::matches_from_sexpr(content).unwrap_or_default())
        }
        None => Ok(Vec::new()),
    }
}

/// Forwards one search to many peers through a single coalesced
/// [`Transport::send_batch`] (one registry pass on the bus, vectored
/// frames over TCP), then collects every reply on one ephemeral endpoint
/// under a shared deadline. Results are index-aligned with `peers`; a
/// peer that never answers times out without extending the total wait.
fn forward_to_peers(
    shared: &Shared,
    ctx: &AgentContext,
    peers: &[PeerTarget],
    request: &codec::SearchRequest,
) -> Vec<(PeerTarget, Result<Vec<MatchResult>, BusError>)> {
    if peers.len() == 1 {
        let peer = peers[0].clone();
        let result = forward_to_peer(shared, ctx, &peer, request);
        return vec![(peer, result)];
    }
    let Ok(mut ep) = ctx.ephemeral_endpoint() else {
        // No side endpoint available: fall back to serial round trips.
        return peers
            .iter()
            .map(|p| (p.clone(), forward_to_peer(shared, ctx, p, request)))
            .collect();
    };
    let mut ids = Vec::with_capacity(peers.len());
    let mut batch = Vec::with_capacity(peers.len());
    for peer in peers {
        let mut stamped = request.clone();
        stamped.digest_epoch = peer.digest_epoch;
        let id = ep.transport().next_conversation_id(ep.name());
        let mut msg = Message::new(Performative::AskAll)
            .with_ontology("infosleuth-service")
            .with_content(codec::search_request_to_sexpr(&stamped));
        msg.set("reply-with", SExpr::atom(&id));
        msg.set("sender", SExpr::atom(ep.name()));
        msg.set("receiver", SExpr::atom(&peer.name));
        shared.obs.forwards.inc();
        ids.push(id);
        batch.push((peer.name.clone(), msg));
    }
    let sends = ep.transport().send_batch(ep.name(), batch);
    let mut outcome: HashMap<String, Result<Vec<MatchResult>, BusError>> = HashMap::new();
    let mut pending: BTreeSet<String> = BTreeSet::new();
    for (i, send) in sends.into_iter().enumerate() {
        match send {
            Ok(()) => {
                pending.insert(ids[i].clone());
            }
            Err(e) => {
                outcome.insert(ids[i].clone(), Err(e));
            }
        }
    }
    let deadline = Instant::now() + shared.config.peer_timeout;
    while !pending.is_empty() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let Some(env) = ep.recv_timeout(remaining) else {
            continue;
        };
        let Some(id) = env.message.in_reply_to().map(str::to_string) else {
            continue;
        };
        if pending.remove(&id) {
            let parsed = match env.message.content() {
                Some(content) => {
                    ingest_reply_digest(shared, content);
                    codec::matches_from_sexpr(content).unwrap_or_default()
                }
                None => Vec::new(),
            };
            outcome.insert(id, Ok(parsed));
        }
    }
    ep.unregister();
    peers
        .iter()
        .zip(ids)
        .map(|(peer, id)| {
            let result = outcome
                .remove(&id)
                .unwrap_or(Err(BusError::Timeout { waiting_on: peer.name.clone() }));
            (peer.clone(), result)
        })
        .collect()
}

/// KQML `broker-one`: "allow an agent to … ask a broker about other
/// services", here in the *brokered* (delegation) form — the broker finds
/// one matching agent, forwards the embedded message to it, and relays the
/// answer back to the requester. Content shape:
/// `(broker-one (service-query ...) (message "<kqml text>"))`.
fn handle_broker_one(shared: &Shared, ctx: &AgentContext, env: &infosleuth_agent::Envelope) {
    let fail = |reason: String| {
        let reply =
            env.message.reply_skeleton(Performative::Error).with_content(SExpr::string(reason));
        reply_as_broker(ctx, &env.from, reply);
    };
    let Some(items) = env.message.content().and_then(SExpr::as_list) else {
        return fail("broker-one expects (broker-one (service-query ...) (message ...))".into());
    };
    if items.first().and_then(SExpr::as_atom) != Some("broker-one") {
        return fail("expected (broker-one ...) content".into());
    }
    let Some(query_expr) = items.iter().find(|e| {
        e.as_list()
            .and_then(|l| l.first())
            .and_then(SExpr::as_atom)
            .map(|h| h == "service-query")
            .unwrap_or(false)
    }) else {
        return fail("broker-one missing service-query".into());
    };
    let mut query = match codec::service_query_from_sexpr(query_expr) {
        Ok(q) => q,
        Err(e) => return fail(e.to_string()),
    };
    query.max_matches = Some(1);
    let Some(embedded_text) = items.iter().find_map(|e| {
        let l = e.as_list()?;
        if l.first()?.as_atom()? == "message" {
            l.get(1)?.as_text()
        } else {
            None
        }
    }) else {
        return fail("broker-one missing embedded message".into());
    };
    let embedded = match Message::parse(embedded_text) {
        Ok(m) => m,
        Err(e) => return fail(format!("embedded message: {e}")),
    };
    // Find one provider (collaboratively, per the until-match default).
    let request = codec::SearchRequest {
        query: query.clone(),
        policy: SearchPolicy::default_for(Some(1)),
        visited: Vec::new(),
        digest_epoch: None,
    };
    let matches = collaborative_search(shared, ctx, &request);
    let Some(target) = matches.first() else {
        let reply = env.message.reply_skeleton(Performative::Sorry);
        reply_as_broker(ctx, &env.from, reply);
        return;
    };
    // Forward and relay.
    match ctx.request(&target.name, embedded, shared.config.peer_timeout) {
        Ok(answer) => {
            let mut relay = env.message.reply_skeleton(answer.performative.clone());
            if let Some(content) = answer.content() {
                relay.set("content", content.clone());
            }
            relay.set("language", SExpr::atom("KQML"));
            reply_as_broker(ctx, &env.from, relay);
        }
        Err(e) => fail(format!("provider '{}' failed: {e}", target.name)),
    }
}

/// Builds the `broker-one` content payload that the broker agent expects.
pub fn broker_one_content(query: &ServiceQuery, embedded: &Message) -> SExpr {
    SExpr::list([
        SExpr::atom("broker-one"),
        codec::service_query_to_sexpr(query),
        SExpr::list([SExpr::atom("message"), SExpr::string(embedded.to_string())]),
    ])
}

// ---------------------------------------------------------------------
// Client-side helpers: what non-broker agents do to talk to a broker.
// ---------------------------------------------------------------------

/// Advertises an agent to a broker; `Ok(true)` = accepted, `Ok(false)` =
/// declined (specialization mismatch or validation failure).
pub fn advertise_to<R: Requester>(
    ep: &mut R,
    broker: &str,
    ad: &Advertisement,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Advertise)
        .with_ontology("infosleuth-service")
        .with_content(codec::advertisement_to_sexpr(ad));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Withdraws an agent's advertisement from a broker.
pub fn unadvertise_from<R: Requester>(
    ep: &mut R,
    broker: &str,
    agent: &str,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Unadvertise).with_content(SExpr::atom(agent));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Registers a standing subscription with a broker. Delta notifications go
/// to the agent named `reply_to`; the returned key identifies the
/// subscription (`:in-reply-to` on every notification, and the handle for
/// [`unsubscribe_from`]). `Ok(None)` means the broker declined the query
/// (e.g. it failed subscription admission analysis).
pub fn subscribe_to<R: Requester>(
    ep: &mut R,
    broker: &str,
    query: &ServiceQuery,
    reply_to: &str,
    timeout: Duration,
) -> Result<Option<String>, BusError> {
    let msg = Message::new(Performative::Subscribe)
        .with_ontology("infosleuth-service")
        .with("reply-to", SExpr::atom(reply_to))
        .with_content(codec::service_query_to_sexpr(query));
    let reply = ep.request(broker, msg, timeout)?;
    if reply.performative != Performative::Tell {
        return Ok(None);
    }
    Ok(reply.content().and_then(SExpr::as_text).map(str::to_string))
}

/// Cancels a standing subscription previously opened with [`subscribe_to`]
/// (same `reply_to`; only the registered subscriber may cancel).
pub fn unsubscribe_from<R: Requester>(
    ep: &mut R,
    broker: &str,
    sub_key: &str,
    reply_to: &str,
    timeout: Duration,
) -> Result<bool, BusError> {
    let msg = Message::new(Performative::Other("unsubscribe".into()))
        .with("reply-to", SExpr::atom(reply_to))
        .with_content(SExpr::atom(sub_key));
    let reply = ep.request(broker, msg, timeout)?;
    Ok(reply.performative == Performative::Tell)
}

/// Queries a broker for matching agents, optionally overriding the search
/// policy ("the requesting agent can then specify the policies under which
/// it wishes for the broker to initiate an inter-broker search").
pub fn query_broker<R: Requester>(
    ep: &mut R,
    broker: &str,
    query: &ServiceQuery,
    policy: Option<SearchPolicy>,
    timeout: Duration,
) -> Result<Vec<MatchResult>, BusError> {
    let content = match policy {
        Some(policy) => codec::search_request_to_sexpr(&codec::SearchRequest {
            query: query.clone(),
            policy,
            visited: Vec::new(),
            digest_epoch: None,
        }),
        None => codec::service_query_to_sexpr(query),
    };
    let msg = Message::new(Performative::AskAll)
        .with_ontology("infosleuth-service")
        .with_content(content);
    let reply = ep.request(broker, msg, timeout)?;
    match reply.content() {
        Some(content) => Ok(codec::matches_from_sexpr(content).unwrap_or_default()),
        None => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_ontology::{
        paper_class_ontology, Capability, ConversationType, OntologyContent, SemanticInfo,
        SyntacticInfo,
    };

    const T: Duration = Duration::from_secs(5);

    fn resource_ad(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    fn seeded_repo() -> Repository {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        r
    }

    fn spawn_broker(bus: &Bus, name: &str) -> BrokerHandle {
        BrokerAgent::spawn(
            bus,
            BrokerConfig::new(name, format!("tcp://{name}.mcc.com:5500")),
            seeded_repo(),
        )
        .unwrap()
    }

    /// Waits until `from` holds `peer`'s digest at the peer's current repo
    /// epoch — digest updates ride one-way performatives, so tests that
    /// mutate a peer out-of-band must quiesce before asserting on routing.
    fn await_digest(from: &BrokerHandle, peer: &BrokerHandle) {
        let want = peer.with_repository(|r| r.epoch());
        let deadline = Instant::now() + T;
        while from.peer_digest_epoch(peer.name()) != Some(want) {
            assert!(
                Instant::now() < deadline,
                "digest from {} never reached {}",
                peer.name(),
                from.name()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn advertise_query_unadvertise_conversation() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        assert!(advertise_to(&mut agent, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let matches = query_broker(&mut agent, "broker1", &q, None, T).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].name, "ra1");
        assert!(unadvertise_from(&mut agent, "broker1", "ra1", T).unwrap());
        assert!(query_broker(&mut agent, "broker1", &q, None, T).unwrap().is_empty());
        broker.stop();
    }

    #[test]
    fn invalid_advertisement_is_declined() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        let mut bad = resource_ad("ra1", &["C1"]);
        bad.location.address = "not-an-address".into();
        assert!(!advertise_to(&mut agent, "broker1", &bad, T).unwrap());
        broker.stop();
    }

    #[test]
    fn analysis_rejection_sorry_carries_diagnostics() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        // 'C9' is not a class of the registered paper ontology: the static
        // analyzer rejects with IS021 and the sorry carries the report.
        let bad = resource_ad("ra1", &["C9"]);
        let msg =
            Message::new(Performative::Advertise).with_content(codec::advertisement_to_sexpr(&bad));
        let reply = agent.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let text = reply.content().and_then(|c| c.as_text()).unwrap_or_default();
        assert!(text.contains("IS021"), "sorry lacks diagnostic: {text}");
        broker.stop();
    }

    #[test]
    fn ping_semantics() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("ra1").unwrap();
        advertise_to(&mut agent, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        assert_eq!(infosleuth_agent::ping(&mut agent, "broker1", Some("ra1"), T), Ok(true));
        assert_eq!(infosleuth_agent::ping(&mut agent, "broker1", Some("ghost"), T), Ok(false));
        broker.stop();
        // Dead broker: transport error.
        assert!(infosleuth_agent::ping(
            &mut agent,
            "broker1",
            Some("ra1"),
            Duration::from_millis(100)
        )
        .is_err());
    }

    #[test]
    fn interbroker_search_unions_results() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra1 = bus.register("ra1").unwrap();
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra1, "broker1", &resource_ad("ra1", &["C2"]), T).unwrap();
        advertise_to(&mut ra2, "broker2", &resource_ad("ra2", &["C2"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C2"]);
        // Local-only sees one agent.
        let local = query_broker(&mut ra1, "broker1", &q, Some(SearchPolicy::local()), T).unwrap();
        assert_eq!(local.len(), 1);
        // Default policy (hop 1, all repositories) sees both.
        let all = query_broker(&mut ra1, "broker1", &q, None, T).unwrap();
        let names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["ra1", "ra2"]);
        b1.stop();
        b2.stop();
    }

    #[test]
    fn hop_count_limits_search_depth() {
        // Chain: broker1 knows broker2 knows broker3; agent only on broker3.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        // Advertise before wiring the chain: stripping the reverse edges
        // below also severs the digest-update channel, so broker3's hello
        // digest must already cover ra9.
        let mut ra = bus.register("ra9").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra9", &["C1"]), T).unwrap();
        b1.connect_peer("broker2").unwrap();
        b2.connect_peer("broker3").unwrap();
        // Remove reverse edges so the chain is strictly forward.
        b2.with_repository(|r| r.unadvertise_broker("broker1"));
        b3.with_repository(|r| r.unadvertise_broker("broker2"));
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let hop1 = SearchPolicy { hop_count: 1, follow: crate::FollowOption::AllRepositories };
        assert!(query_broker(&mut ra, "broker1", &q, Some(hop1), T).unwrap().is_empty());
        let hop2 = SearchPolicy { hop_count: 2, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(hop2), T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "ra9");
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn visited_list_prevents_cycles() {
        // Fully-connected triangle; query must terminate and not duplicate.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        interconnect(&[&b1, &b2, &b3]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker2", &resource_ad("ra1", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let deep = SearchPolicy { hop_count: 10, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(deep), T).unwrap();
        assert_eq!(found.len(), 1);
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn until_match_stops_early() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra2, "broker2", &resource_ad("ra2", &["C1"]), T).unwrap();
        // ask-one style: local match suffices, no expansion.
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"])
            .one();
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "ra1");
        b1.stop();
        b2.stop();
    }

    #[test]
    fn digest_prunes_empty_peer_without_contact() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let all = SearchPolicy { hop_count: 1, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(all), T).unwrap();
        assert_eq!(found.len(), 1);
        // broker2 advertised an empty repository at the interconnect hello,
        // so its digest rules it out before any round trip is spent.
        let stats = b1.routing_stats();
        assert_eq!(stats.forwards, 0, "empty peer must be digest-pruned, not contacted");
        assert!(stats.digest_pruned >= 1);
        b1.stop();
        b2.stop();
    }

    #[test]
    fn disabled_digests_restore_broad_fan_out() {
        let bus = Bus::new();
        let spawn_plain = |name: &str| {
            BrokerAgent::spawn(
                &bus,
                BrokerConfig::new(name, format!("tcp://{name}.mcc.com:5500"))
                    .with_routing_digests(false),
                seeded_repo(),
            )
            .unwrap()
        };
        let b1 = spawn_plain("broker1");
        let b2 = spawn_plain("broker2");
        interconnect(&[&b1, &b2]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let all = SearchPolicy { hop_count: 1, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ra, "broker1", &q, Some(all), T).unwrap();
        assert_eq!(found.len(), 1);
        let stats = b1.routing_stats();
        assert_eq!(stats.forwards, 1, "broad fan-out contacts the empty peer");
        assert_eq!(stats.digest_pruned, 0);
        b1.stop();
        b2.stop();
    }

    #[test]
    fn stale_digest_epoch_triggers_piggybacked_refresh() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap();
        // A forwarded request claiming it consulted epoch 0 is stale (the
        // seeded ontology + the advertisement both bumped the epoch), so
        // the matches reply must piggyback a refreshed digest.
        let request = codec::SearchRequest {
            query: ServiceQuery::for_agent_type(AgentType::Resource)
                .with_ontology("paper-classes")
                .with_classes(["C1"]),
            policy: SearchPolicy::local(),
            visited: Vec::new(),
            digest_epoch: Some(0),
        };
        let msg = Message::new(Performative::AskAll)
            .with_ontology("infosleuth-service")
            .with_content(codec::search_request_to_sexpr(&request));
        let reply = ra.request("broker1", msg, T).unwrap();
        let content = reply.content().unwrap();
        assert_eq!(codec::matches_from_sexpr(content).unwrap().len(), 1);
        let refreshed = codec::embedded_digest(content).expect("stale epoch piggybacks a digest");
        assert_eq!(refreshed.epoch, b1.with_repository(|r| r.epoch()));
        assert!(b1.routing_stats().digest_stale >= 1);
        b1.stop();
    }

    #[test]
    fn digest_false_positive_is_counted_not_fatal() {
        use infosleuth_constraint::{Conjunction, Predicate};
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        // broker2 holds two C1 agents covering disjoint slot ranges. The
        // digest only keeps the per-slot hull [0, 30], so a query window in
        // the gap is admitted, round-trips, and comes back empty.
        let constrained = |name: &str, lo: i64, hi: i64| {
            let mut ad = resource_ad(name, &["C1"]);
            ad.semantic.content =
                vec![OntologyContent::new("paper-classes").with_classes(["C1"]).with_constraints(
                    Conjunction::from_predicates(vec![Predicate::between("C1.a", lo, hi)]),
                )];
            ad
        };
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra2, "broker2", &constrained("ra2", 0, 10), T).unwrap();
        advertise_to(&mut ra2, "broker2", &constrained("rb2", 20, 30), T).unwrap();
        interconnect(&[&b1, &b2]).unwrap();
        let mut ua = bus.register("ua1").unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "C1.a", 12, 18,
            )]));
        let all = SearchPolicy { hop_count: 1, follow: crate::FollowOption::AllRepositories };
        let found = query_broker(&mut ua, "broker1", &q, Some(all), T).unwrap();
        assert!(found.is_empty());
        let stats = b1.routing_stats();
        assert_eq!(stats.forwards, 1, "hull admits the gap window (sound over-approximation)");
        assert!(stats.digest_fp >= 1, "the empty answer is recorded as a false positive");
        b1.stop();
        b2.stop();
    }

    #[test]
    fn dead_peer_is_demoted_to_suspect_and_search_continues() {
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = spawn_broker(&bus, "broker2");
        let b3 = spawn_broker(&bus, "broker3");
        // broker2 holds a matching advertisement before the interconnect, so
        // broker1's stored digest admits it and the forward is attempted.
        let mut ra2 = bus.register("ra2").unwrap();
        advertise_to(&mut ra2, "broker2", &resource_ad("ra2", &["C1"]), T).unwrap();
        interconnect(&[&b1, &b2, &b3]).unwrap();
        let mut ra = bus.register("ra1").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra1", &["C1"]), T).unwrap();
        b2.stop(); // broker2 dies without unadvertising
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "ra1");
        // The failed forward demotes broker2 to suspect — it stays in the
        // peer table so its next hello (or a backoff retry) re-admits it.
        assert!(b1.routing_stats().peer_suspects >= 1);
        b1.with_repository(|r| {
            assert!(r.peer_brokers().contains(&"broker2".to_string()));
        });
        // While suspected, further searches skip broker2 without another
        // round trip and still return the live match.
        let suspects_before = b1.routing_stats().peer_suspects;
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(b1.routing_stats().peer_suspects, suspects_before);
        b1.stop();
        b3.stop();
    }

    #[test]
    fn specialized_broker_forwards_mismatched_advertisements() {
        let bus = Bus::new();
        let health = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("health-broker", "tcp://h1:1")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        let general = spawn_broker(&bus, "general-broker");
        health.connect_peer("general-broker").unwrap();
        let mut agent = bus.register("food-ra").unwrap();
        let mut food_ad = resource_ad("food-ra", &[]);
        food_ad.semantic.content = vec![OntologyContent::new("food").with_classes(["supplier"])];
        // The specialized broker declines and suggests the general one.
        let msg = Message::new(Performative::Advertise)
            .with_content(codec::advertisement_to_sexpr(&food_ad));
        let reply = agent.request("health-broker", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let suggestions = reply.content().unwrap().as_list().unwrap();
        assert_eq!(suggestions[0], SExpr::atom("forward-to"));
        assert!(suggestions[1..].contains(&SExpr::atom("general-broker")));
        // The general broker accepts it.
        assert!(advertise_to(&mut agent, "general-broker", &food_ad, T).unwrap());
        health.stop();
        general.stop();
    }

    #[test]
    fn agents_discover_brokers_through_a_broker() {
        // §4.1: query a broker for the brokers available for a domain.
        let bus = Bus::new();
        let general = spawn_broker(&bus, "general-broker");
        let specialist = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("health-broker", "tcp://hb.mcc.com:5502")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        interconnect(&[&general, &specialist]).unwrap();
        let mut agent = bus.register("newcomer").unwrap();
        // All brokers, any domain.
        let q = ServiceQuery::for_agent_type(AgentType::Broker);
        let all = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        let mut names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["general-broker", "health-broker"]);
        // Healthcare domain: the specialist ranks first.
        let q = ServiceQuery::for_agent_type(AgentType::Broker).with_ontology("healthcare");
        let hc = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        assert_eq!(hc[0].name, "health-broker");
        assert_eq!(hc.len(), 2); // generalist still serves any domain
                                 // Food domain: the healthcare specialist is excluded.
        let q = ServiceQuery::for_agent_type(AgentType::Broker).with_ontology("food");
        let food = query_broker(&mut agent, "general-broker", &q, None, T).unwrap();
        let names: Vec<&str> = food.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["general-broker"]);
        general.stop();
        specialist.stop();
    }

    #[test]
    fn peer_rule_out_skips_mismatched_specialists() {
        // broker1 (generalist) knows broker2 (healthcare specialist) and
        // broker3 (generalist). A paper-classes query is never forwarded
        // to broker2 — even though broker2's repository secretly contains
        // a matching agent, proving the rule-out happened client-side.
        let bus = Bus::new();
        let b1 = spawn_broker(&bus, "broker1");
        let b2 = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("broker2", "tcp://b2.mcc.com:5501")
                .with_objective(BrokerObjective::specialized(["healthcare"])),
            seeded_repo(),
        )
        .unwrap();
        let b3 = spawn_broker(&bus, "broker3");
        interconnect(&[&b1, &b2, &b3]).unwrap();
        // Plant a matching advertisement directly inside broker2.
        b2.with_repository(|r| {
            r.advertise(resource_ad("hidden-ra", &["C1"])).unwrap();
        });
        let mut ra = bus.register("ra3").unwrap();
        advertise_to(&mut ra, "broker3", &resource_ad("ra3", &["C1"]), T).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let found = query_broker(&mut ra, "broker1", &q, None, T).unwrap();
        let names: Vec<&str> = found.iter().map(|m| m.name.as_str()).collect();
        // Only the agent reachable through the non-ruled-out peer appears.
        assert_eq!(names, vec!["ra3"], "broker2 must be ruled out in advance");
        // A query with no ontology still consults everyone. Quiesce first:
        // hidden-ra was planted out-of-band, and broker1 must hold broker2's
        // refreshed digest before it can admit the forward.
        await_digest(&b1, &b2);
        let q_any = ServiceQuery::for_agent_type(AgentType::Resource);
        let found = query_broker(&mut ra, "broker1", &q_any, None, T).unwrap();
        let names: Vec<&str> = found.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"hidden-ra"), "no-ontology query reaches specialists");
        b1.stop();
        b2.stop();
        b3.stop();
    }

    #[test]
    fn liveness_sweep_prunes_dead_agents() {
        let bus = Bus::new();
        let mut repo = seeded_repo();
        repo.register_ontology(paper_class_ontology());
        let broker = BrokerAgent::spawn(
            &bus,
            BrokerConfig::new("broker1", "tcp://b1.mcc.com:5500")
                .with_ping_interval(Some(Duration::from_millis(50))),
            Repository::new(),
        )
        .unwrap();
        // A live agent that answers pings.
        let mut live = bus.register("live-ra").unwrap();
        let live_thread = std::thread::spawn({
            let bus = bus.clone();
            move || {
                let mut ep = bus.register("live-ra-loop").unwrap();
                drop(ep.try_recv()); // silence unused warnings
            }
        });
        live_thread.join().unwrap();
        advertise_to(&mut live, "broker1", &resource_ad("live-ra", &[]), T).unwrap();
        // A doomed agent that advertises then dies.
        let mut doomed = bus.register("doomed-ra").unwrap();
        advertise_to(&mut doomed, "broker1", &resource_ad("doomed-ra", &[]), T).unwrap();
        broker.with_repository(|r| {
            assert!(r.contains_agent("live-ra"));
            assert!(r.contains_agent("doomed-ra"));
        });
        doomed.unregister(); // the agent "fails" without unregistering
                             // Keep the live agent answering pings while the sweep runs.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(env) = live.recv_timeout(Duration::from_millis(20)) {
                if env.message.performative == Performative::Ping {
                    let _ = live.send(&env.from, env.message.reply_skeleton(Performative::Reply));
                }
            }
            let pruned = broker.with_repository(|r| !r.contains_agent("doomed-ra"));
            if pruned {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "sweep never pruned the dead agent");
        }
        broker.with_repository(|r| {
            assert!(r.contains_agent("live-ra"), "live agent must survive the sweep");
            assert!(!r.contains_agent("doomed-ra"));
        });
        broker.stop();
    }

    #[test]
    fn failed_liveness_probes_are_counted_and_reported() {
        // A dead advertised agent makes the sweep's ping fail at the
        // transport: that failure must show up in the broker's
        // delivery-failure stat AND reach the monitor agent as a log tell
        // (instead of being silently swallowed as in the seed).
        let bus = Bus::new();
        let runtime = AgentRuntime::new(
            bus.as_transport(),
            RuntimeConfig::default().with_monitor("monitor-agent"),
        );
        let mut monitor = bus.register("monitor-agent").unwrap();
        let broker = BrokerAgent::spawn_on(
            &runtime,
            BrokerConfig::new("broker1", "tcp://b1.mcc.com:5500")
                .with_ping_interval(Some(Duration::from_millis(50))),
            Repository::new(),
        )
        .unwrap();
        let mut doomed = bus.register("doomed-ra").unwrap();
        advertise_to(&mut doomed, "broker1", &resource_ad("doomed-ra", &[]), T).unwrap();
        assert_eq!(broker.delivery_failures(), 0);
        doomed.unregister();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while broker.delivery_failures() == 0 {
            assert!(std::time::Instant::now() < deadline, "sweep never failed a probe");
            std::thread::sleep(Duration::from_millis(10));
        }
        let env = monitor
            .recv_timeout(Duration::from_secs(2))
            .expect("monitor receives the delivery-failure log");
        assert_eq!(env.message.get_text("ontology"), Some(infosleuth_agent::LOG_ONTOLOGY));
        let items = env.message.content().and_then(SExpr::as_list).unwrap().to_vec();
        assert_eq!(items[0], SExpr::atom("delivery-failure"));
        assert_eq!(items[1], SExpr::atom("broker1"));
        assert_eq!(items[2], SExpr::atom("doomed-ra"));
        broker.stop();
        runtime.shutdown();
    }

    #[test]
    fn broker_one_forwards_to_the_best_match() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        // A provider that answers ask-one with a canned reply. Register
        // its endpoint before spawning so the broker can reach it as soon
        // as it is advertised.
        let mut ep = bus.register("provider-ra").unwrap();
        let provider = std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                if let Some(env) = ep.recv_timeout(Duration::from_millis(20)) {
                    if env.message.performative == Performative::AskOne {
                        let reply = env
                            .message
                            .reply_skeleton(Performative::Reply)
                            .with_content(SExpr::string("42 rows"));
                        let _ = ep.send(&env.from, reply);
                        break;
                    }
                }
            }
            ep.unregister();
        });
        let mut client = bus.register("client").unwrap();
        advertise_to(&mut client, "broker1", &resource_ad("provider-ra", &["C1"]), T).unwrap();
        // Delegate: "broker-one, forward my ask-one to whoever has C1".
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let embedded = Message::new(Performative::AskOne)
            .with_language("SQL 2.0")
            .with_content(SExpr::string("select * from C1"));
        let msg = Message::new(Performative::BrokerOne)
            .with_content(super::broker_one_content(&q, &embedded));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Reply, "unexpected reply: {reply}");
        assert_eq!(reply.content(), Some(&SExpr::string("42 rows")));
        provider.join().unwrap();
        // No provider for an unknown class → sorry.
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C9"]);
        let msg2 = Message::new(Performative::BrokerOne)
            .with_content(super::broker_one_content(&q2, &embedded));
        let reply2 = client.request("broker1", msg2, T).unwrap();
        assert_eq!(reply2.performative, Performative::Sorry);
        broker.stop();
    }

    #[test]
    fn broker_one_rejects_malformed_content() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut client = bus.register("client").unwrap();
        let msg = Message::new(Performative::BrokerOne).with_content(SExpr::atom("nonsense"));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Error);
        broker.stop();
    }

    #[test]
    fn unsupported_performative_gets_error() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut agent = bus.register("client").unwrap();
        let msg = Message::new(Performative::Other("achieve".into()));
        let reply = agent.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Error);
        broker.stop();
    }

    #[test]
    fn subscribe_notifies_on_churn_and_unsubscribe_stops_it() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut inbox = bus.register("watcher").unwrap();
        let mut client = bus.register("client").unwrap();

        let query = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"]);
        let key = subscribe_to(&mut client, "broker1", &query, "watcher", T).unwrap().unwrap();

        // Initial snapshot: empty repository, empty delta.
        let snap = inbox.recv_timeout(T).unwrap().message;
        assert_eq!(snap.performative, Performative::Tell);
        assert_eq!(snap.in_reply_to(), Some(key.as_str()));
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(snap.content().unwrap()).unwrap();
        assert!(matched.is_empty() && unmatched.is_empty());

        // A matching advertisement arrives: one `matched` entry.
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());
        let note = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, "ra1");
        assert!(unmatched.is_empty());

        // A non-matching advertisement: no notification at all.
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra2", &["C3"]), T).unwrap());
        // Its unadvertise produces the next notification we receive below.
        assert!(unadvertise_from(&mut client, "broker1", "ra1", T).unwrap());
        let note = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert!(matched.is_empty());
        assert_eq!(unmatched, vec!["ra1".to_string()]);

        assert_eq!(broker.subscription_count(), 1);
        assert!(unsubscribe_from(&mut client, "broker1", &key, "watcher", T).unwrap());
        assert_eq!(broker.subscription_count(), 0);
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra3", &["C1"]), T).unwrap());
        assert!(inbox.recv_timeout(Duration::from_millis(200)).is_none());
        broker.stop();
    }

    #[test]
    fn subscription_admission_rejects_vacuous_queries() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut client = bus.register("client").unwrap();
        let msg = Message::new(Performative::Subscribe)
            .with_content(codec::service_query_to_sexpr(&ServiceQuery::any()));
        let reply = client.request("broker1", msg, T).unwrap();
        assert_eq!(reply.performative, Performative::Sorry);
        let text = reply.content().and_then(SExpr::as_text).unwrap().to_string();
        assert!(text.contains("IS027"), "diagnostics not rendered: {text}");
        assert_eq!(broker.subscription_count(), 0);
        broker.stop();
    }

    #[test]
    fn resync_after_out_of_band_rule_delta_notifies() {
        let bus = Bus::new();
        let broker = spawn_broker(&bus, "broker1");
        let mut inbox = bus.register("watcher").unwrap();
        let mut client = bus.register("client").unwrap();
        assert!(advertise_to(&mut client, "broker1", &resource_ad("ra1", &["C1"]), T).unwrap());

        let query = ServiceQuery::any().with_capability(Capability::subscription());
        let key = subscribe_to(&mut client, "broker1", &query, "watcher", T).unwrap().unwrap();
        let snap = inbox.recv_timeout(T).unwrap().message;
        let (_, matched, _) = codec::sub_delta_from_sexpr(snap.content().unwrap()).unwrap();
        assert!(matched.is_empty());

        // Out-of-band derived rule: every resource agent now also counts
        // as a subscription agent. The repository mutation happens outside
        // any performative, so the test drives the resync.
        broker.with_repository(|r| {
            r.register_derived_rules("cap(A, subscription) :- agent(A, resource).").unwrap()
        });
        broker.resync_subscriptions();
        let note = inbox.recv_timeout(T).unwrap().message;
        assert_eq!(note.in_reply_to(), Some(key.as_str()));
        let (_, matched, unmatched) = codec::sub_delta_from_sexpr(note.content().unwrap()).unwrap();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, "ra1");
        assert!(unmatched.is_empty());
        broker.stop();
    }
}
