//! Broker health published through the broker itself.
//!
//! A [`HealthPublisher`] is an ordinary hosted agent that dogfoods the
//! observability plane through the brokering machinery (DESIGN.md §16):
//! on every sample tick it snapshots its runtime's metrics registry
//! into a ring-buffer [`TimeSeriesStore`], evaluates the watermark
//! [`HealthEngine`], and then
//!
//! 1. **advertises** the readings as a `broker_health` fact in the
//!    `infosleuth-obs` ontology into its own broker's repository (an
//!    `advertise` KQML message, re-sent each tick with fresh point
//!    constraints), so standing subscriptions with threshold queries —
//!    "queue_depth > 100 on any broker" — get `sub-delta` tells from
//!    the indexed notification path like any domain subscription;
//! 2. **advertises/unadvertises** a `health_alert` fact per watermark
//!    rule as it fires/clears, so severity-filtered subscriptions see
//!    alert deltas exactly at the hysteresis transitions;
//! 3. **tells** the monitor agent the rolled-up state and transitions
//!    (`(health-state …)` over the log ontology) for the fleet view;
//! 4. mirrors the state into `broker_health_level{broker}` /
//!    `broker_health_alerts_total{broker,severity}` so the merged
//!    Prometheus scrape carries per-broker health labels.
//!
//! Every tick opens a `health:tick` root span before sending, so the
//! advertise carries `:x-trace` and the broker's `recv:advertise` span
//! — and the alert `tell`s its notification fan-out stamps — parent on
//! the sampler tick: the trace connects sampler tick → alert delivery.
//!
//! The target broker's repository must have
//! [`infosleuth_ontology::obs_ontology`] registered, or the
//! advertisements are rejected at admission (IS021 unknown class).

use crate::codec;
use infosleuth_agent::{
    AgentBehavior, AgentContext, AgentHandle, AgentRuntime, Envelope, TransportError, LOG_ONTOLOGY,
};
use infosleuth_constraint::{Conjunction, Predicate};
use infosleuth_kqml::{Message, Performative, SExpr};
use infosleuth_obs::{
    sample_interval_from_env, sample_once, Gauge, HealthEngine, HealthEvent, HealthState, Obs,
    Severity, TimeSeriesStore,
};
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentType, Capability, ConversationType, OntologyContent,
    SemanticInfo, SyntacticInfo,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the observability ontology ([`infosleuth_ontology::obs_ontology`]).
pub const OBS_ONTOLOGY_NAME: &str = "infosleuth-obs";

/// Head atom of the health-state tell the publisher sends its monitor:
/// `(health-state <broker> <state> <tick> (event <rule> <severity>
/// <firing 0|1> <value> <threshold>)…)`.
pub const HEALTH_STATE_HEAD: &str = "health-state";

/// Configuration for [`spawn_health_publisher`].
#[derive(Clone, Debug)]
pub struct HealthPublisherConfig {
    /// The broker agent whose repository receives the obs facts (and
    /// whose name labels them).
    pub broker: String,
    /// Monitor agent for `(health-state …)` tells; `None` skips them.
    pub monitor: Option<String>,
    /// Programmed sampling cadence; `INFOSLEUTH_OBS_SAMPLE_MS`
    /// overrides it at spawn (clamped ≥ 10 ms).
    pub interval: Duration,
    /// Points retained per metric series.
    pub store_capacity: usize,
}

impl HealthPublisherConfig {
    pub fn new(broker: impl Into<String>) -> Self {
        HealthPublisherConfig {
            broker: broker.into(),
            monitor: None,
            interval: Duration::from_millis(250),
            store_capacity: 256,
        }
    }

    pub fn with_monitor(mut self, monitor: impl Into<String>) -> Self {
        self.monitor = Some(monitor.into());
        self
    }

    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }
}

/// The agent behavior publishing one broker's health (see module docs).
pub struct HealthPublisher {
    /// This publisher's agent name (`health.<broker>`).
    name: String,
    config: HealthPublisherConfig,
    interval: Duration,
    obs: Arc<Obs>,
    store: Arc<TimeSeriesStore>,
    engine: Mutex<HealthEngine>,
    started: Instant,
    level: Gauge,
}

impl HealthPublisher {
    /// One full sample-and-publish tick. Public via the handle so tests
    /// and examples drive deterministic ticks instead of waiting out
    /// the interval.
    fn publish(&self, ctx: &AgentContext) {
        // Root span: the advertise (and everything the broker's
        // notification fan-out stamps downstream) parents on this tick.
        let span = self.obs.tracer().agent_span("health:tick", &self.name, None);
        let at_millis = self.started.elapsed().as_millis() as u64;
        let (tick, events, state) = {
            let mut engine = self.engine.lock();
            sample_once(self.obs.registry(), &self.store, &mut engine, at_millis)
        };
        self.level.set(state.as_level());
        for event in &events {
            self.obs
                .registry()
                .counter(
                    "broker_health_alerts_total",
                    &[("broker", &self.config.broker), ("severity", event.severity.as_str())],
                )
                .inc();
        }

        // The broker_health fact, re-advertised with fresh readings.
        let ad = self.health_fact(tick, state);
        let msg = Message::new(Performative::Advertise)
            .with_ontology("infosleuth-service")
            .with_content(codec::advertisement_to_sexpr(&ad));
        let _ = ctx.send(&self.config.broker, msg);

        // One health_alert fact per transition: advertised on fire,
        // withdrawn on clear — subscriptions see a delta either way.
        for event in &events {
            if event.firing {
                let alert = self.alert_fact(event);
                let msg = Message::new(Performative::Advertise)
                    .with_ontology("infosleuth-service")
                    .with_content(codec::advertisement_to_sexpr(&alert));
                let _ = ctx.send(&self.config.broker, msg);
            } else {
                let msg = Message::new(Performative::Unadvertise)
                    .with_ontology("infosleuth-service")
                    .with_content(SExpr::atom(self.alert_name(&event.rule)));
                let _ = ctx.send(&self.config.broker, msg);
            }
        }

        if let Some(monitor) = &self.config.monitor {
            let msg = Message::new(Performative::Tell)
                .with_ontology(LOG_ONTOLOGY)
                .with_content(health_state_to_sexpr(&self.config.broker, state, tick, &events));
            let _ = ctx.send(monitor, msg);
        }
        drop(span);
    }

    /// Latest reading of a stock rule, scaled and defaulted for the
    /// integer slots of the obs ontology.
    fn reading(&self, rule: &str, scale: f64, default: i64) -> i64 {
        self.engine.lock().last_value(rule).map(|v| (v * scale).round() as i64).unwrap_or(default)
    }

    fn health_fact(&self, tick: u64, state: HealthState) -> Advertisement {
        let broker = &self.config.broker;
        let queue_depth = self.reading("queue-depth", 1.0, 0);
        let inflight = self.reading("inflight", 1.0, 0);
        let failures = self.reading("delivery-failures", 1.0, 0);
        let notify_ms = self.reading("sub-notify-p99", 1e3, 0);
        // An idle cache reports a perfect hit rate rather than zero.
        let hit_pct = self.reading("cache-hit-rate", 100.0, 100);
        let slot = |s: &str| format!("broker_health.{s}");
        Advertisement::new(AgentLocation::new(
            self.name.clone(),
            format!("tcp://{broker}.obs.internal:1"),
            AgentType::Monitor,
        ))
        .with_syntactic(SyntacticInfo::new(["KQML"], ["KQML"]))
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe, ConversationType::Update])
                .with_capabilities([Capability::new("monitoring")])
                .with_content(
                    OntologyContent::new(OBS_ONTOLOGY_NAME)
                        .with_classes(["broker_health"])
                        .with_constraints(Conjunction::from_predicates(vec![
                            Predicate::eq(slot("broker"), broker.as_str()),
                            Predicate::eq(slot("state"), state.as_str()),
                            Predicate::eq(slot("state_level"), state.as_level()),
                            Predicate::eq(slot("tick"), tick as i64),
                            Predicate::eq(slot("queue_depth"), queue_depth),
                            Predicate::eq(slot("inflight"), inflight),
                            Predicate::eq(slot("delivery_failures"), failures),
                            Predicate::eq(slot("sub_notify_p99_ms"), notify_ms),
                            Predicate::eq(slot("cache_hit_pct"), hit_pct),
                        ])),
                ),
        )
    }

    fn alert_name(&self, rule: &str) -> String {
        format!("alert.{}.{rule}", self.config.broker)
    }

    fn alert_fact(&self, event: &HealthEvent) -> Advertisement {
        let broker = &self.config.broker;
        let slot = |s: &str| format!("health_alert.{s}");
        Advertisement::new(AgentLocation::new(
            self.alert_name(&event.rule),
            format!("tcp://{broker}.obs.internal:1"),
            AgentType::Monitor,
        ))
        .with_syntactic(SyntacticInfo::new(["KQML"], ["KQML"]))
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe])
                .with_capabilities([Capability::new("notification")])
                .with_content(
                    OntologyContent::new(OBS_ONTOLOGY_NAME)
                        .with_classes(["health_alert"])
                        .with_constraints(Conjunction::from_predicates(vec![
                            Predicate::eq(slot("broker"), broker.as_str()),
                            Predicate::eq(slot("rule"), event.rule.as_str()),
                            Predicate::eq(slot("severity"), event.severity.as_str()),
                            Predicate::eq(slot("firing"), 1i64),
                            Predicate::eq(slot("tick"), event.tick as i64),
                        ])),
                ),
        )
    }
}

impl AgentBehavior for HealthPublisher {
    fn on_message(&self, _ctx: &AgentContext, _env: Envelope) {
        // Acks from the broker (tell/sorry) need no handling.
    }

    fn tick_interval(&self) -> Option<Duration> {
        Some(self.interval)
    }

    fn on_tick(&self, ctx: &AgentContext) {
        self.publish(ctx);
    }
}

/// Handle to a spawned [`HealthPublisher`].
pub struct HealthPublisherHandle {
    handle: AgentHandle,
    publisher: Arc<HealthPublisher>,
}

impl HealthPublisherHandle {
    /// Runs one sample-and-publish tick right now (in addition to the
    /// periodic ones) — deterministic cadence for tests and examples.
    pub fn publish(&self) {
        self.publisher.publish(self.handle.ctx());
    }

    /// The rolled-up health state after the last tick.
    pub fn state(&self) -> HealthState {
        self.publisher.engine.lock().state()
    }

    /// The ring-buffer history the publisher samples into.
    pub fn store(&self) -> &Arc<TimeSeriesStore> {
        &self.publisher.store
    }

    /// This publisher's agent name (`health.<broker>`).
    pub fn name(&self) -> &str {
        &self.publisher.name
    }

    pub fn stop(&self) {
        self.handle.stop();
    }

    pub fn handle(&self) -> &AgentHandle {
        &self.handle
    }
}

/// Spawns a [`HealthPublisher`] named `health.<broker>` on `runtime`,
/// sampling with the stock broker watermark rules
/// ([`infosleuth_obs::default_broker_rules`]). The effective interval
/// honours `INFOSLEUTH_OBS_SAMPLE_MS`.
pub fn spawn_health_publisher(
    runtime: &AgentRuntime,
    config: HealthPublisherConfig,
) -> Result<HealthPublisherHandle, TransportError> {
    let engine = HealthEngine::new(infosleuth_obs::default_broker_rules(&config.broker));
    spawn_health_publisher_with(runtime, config, engine)
}

/// [`spawn_health_publisher`] with a caller-built rule engine.
pub fn spawn_health_publisher_with(
    runtime: &AgentRuntime,
    config: HealthPublisherConfig,
    engine: HealthEngine,
) -> Result<HealthPublisherHandle, TransportError> {
    let name = format!("health.{}", config.broker);
    let obs = Arc::clone(runtime.obs());
    let level = obs.registry().gauge("broker_health_level", &[("broker", &config.broker)]);
    let interval = sample_interval_from_env(config.interval);
    let publisher = Arc::new(HealthPublisher {
        name: name.clone(),
        store: Arc::new(TimeSeriesStore::new(config.store_capacity)),
        engine: Mutex::new(engine),
        started: Instant::now(),
        level,
        interval,
        config,
        obs,
    });
    let handle = runtime.spawn(name, Arc::clone(&publisher) as Arc<dyn AgentBehavior>)?;
    Ok(HealthPublisherHandle { handle, publisher })
}

/// Encodes one tick's health report for the monitor.
pub fn health_state_to_sexpr(
    broker: &str,
    state: HealthState,
    tick: u64,
    events: &[HealthEvent],
) -> SExpr {
    let mut items = vec![
        SExpr::atom(HEALTH_STATE_HEAD),
        SExpr::atom(broker),
        SExpr::atom(state.as_str()),
        SExpr::atom(tick.to_string()),
    ];
    for e in events {
        items.push(SExpr::list(vec![
            SExpr::atom("event"),
            SExpr::atom(&e.rule),
            SExpr::atom(e.severity.as_str()),
            SExpr::atom(if e.firing { "1" } else { "0" }),
            SExpr::atom(format!("{}", e.value)),
            SExpr::atom(format!("{}", e.threshold)),
        ]));
    }
    SExpr::list(items)
}

/// Decodes `(health-state …)`; the inverse of [`health_state_to_sexpr`].
/// Returns `(broker, state, tick, events)`.
pub fn health_state_from_sexpr(
    sexpr: &SExpr,
) -> Option<(String, HealthState, u64, Vec<HealthEvent>)> {
    let items = sexpr.as_list()?;
    if items.first()?.as_atom()? != HEALTH_STATE_HEAD || items.len() < 4 {
        return None;
    }
    let broker = items[1].as_atom()?.to_string();
    let state = HealthState::parse(items[2].as_atom()?)?;
    let tick: u64 = items[3].as_atom()?.parse().ok()?;
    let mut events = Vec::new();
    for item in &items[4..] {
        let parts = item.as_list()?;
        if parts.len() != 6 || parts[0].as_atom()? != "event" {
            return None;
        }
        let severity = match parts[2].as_atom()? {
            "info" => Severity::Info,
            "warning" => Severity::Warning,
            "critical" => Severity::Critical,
            _ => return None,
        };
        events.push(HealthEvent {
            rule: parts[1].as_atom()?.to_string(),
            metric: String::new(),
            severity,
            firing: parts[3].as_atom()? == "1",
            value: parts[4].as_atom()?.parse().ok()?,
            threshold: parts[5].as_atom()?.parse().ok()?,
            tick,
        });
    }
    Some((broker, state, tick, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker_agent::{subscribe_to, BrokerAgent, BrokerConfig};
    use crate::repository::Repository;
    use infosleuth_agent::{Bus, RuntimeConfig};
    use infosleuth_obs::{HealthRule, Watermark};
    use infosleuth_ontology::{obs_ontology, ServiceQuery};

    fn obs_repo() -> Repository {
        let mut repo = Repository::new();
        repo.register_ontology(obs_ontology());
        repo
    }

    #[test]
    fn health_state_sexpr_round_trips() {
        let events = vec![HealthEvent {
            rule: "queue-depth".into(),
            metric: String::new(),
            severity: Severity::Warning,
            value: 512.0,
            threshold: 100.0,
            firing: true,
            tick: 7,
        }];
        let enc = health_state_to_sexpr("broker-1", HealthState::Degraded, 7, &events);
        let (broker, state, tick, dec) = health_state_from_sexpr(&enc).expect("decodes");
        assert_eq!(broker, "broker-1");
        assert_eq!(state, HealthState::Degraded);
        assert_eq!(tick, 7);
        assert_eq!(dec, events);
        assert_eq!(health_state_from_sexpr(&SExpr::atom("nope")), None);
    }

    #[test]
    fn publisher_facts_reach_subscribers_through_the_broker() {
        let bus = Bus::new();
        let rt = infosleuth_agent::AgentRuntime::new(
            bus.as_transport(),
            RuntimeConfig::default().with_workers(4),
        );
        let broker = BrokerAgent::spawn_on(
            &rt,
            BrokerConfig::new("broker-1", "tcp://localhost:6000"),
            obs_repo(),
        )
        .expect("broker spawns");
        // Distinct requester and subscriber endpoints: the ack goes to
        // the requester, the snapshot + deltas to the subscriber.
        let mut client = bus.register("client").expect("fresh name");
        let mut watcher = bus.register("watcher").expect("fresh name");
        let mut monitor = bus.register("monitor-sink").expect("fresh name");

        // A standing threshold subscription: queue_depth > 100 anywhere.
        let q = ServiceQuery::for_agent_type(AgentType::Monitor)
            .with_ontology(OBS_ONTOLOGY_NAME)
            .with_classes(["broker_health"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::gt(
                "broker_health.queue_depth",
                100,
            )]));
        let sub_key = subscribe_to(&mut client, "broker-1", &q, "watcher", TIMEOUT)
            .expect("subscribe round-trips")
            .expect("subscription admitted");

        // The publisher, driven manually: a rule over a gauge we control.
        let depth = rt.obs().registry().gauge("runtime_queue_depth", &[]);
        let engine = HealthEngine::new(vec![HealthRule::new(
            "queue-depth",
            "runtime_queue_depth",
            1,
            Watermark::GaugeAbove(100.0),
            infosleuth_obs::Severity::Warning,
        )])
        .with_hysteresis(1, 1);
        let publisher = spawn_health_publisher_with(
            &rt,
            HealthPublisherConfig::new("broker-1")
                .with_monitor("monitor-sink")
                .with_interval(Duration::from_secs(3600)),
            engine,
        )
        .expect("publisher spawns");

        // Healthy tick: queue_depth 3 does not overlap `> 100` — the
        // subscription sees no delta beyond its initial empty snapshot.
        depth.set(3);
        publisher.publish();
        assert_eq!(publisher.state(), HealthState::Healthy);

        // Breaching tick: the re-advertised fact now overlaps the
        // threshold query; the indexed path delivers a sub-delta.
        depth.set(500);
        publisher.publish();
        assert_eq!(publisher.state(), HealthState::Degraded);
        let delta = wait_for_delta(&mut watcher, &sub_key, true);
        assert!(
            delta.iter().any(|m| m.contains("health.broker-1")),
            "delta names the health fact: {delta:?}"
        );

        // Recovery tick: the fact drops below the threshold and the
        // subscription sees the removal.
        depth.set(3);
        publisher.publish();
        assert_eq!(publisher.state(), HealthState::Healthy);
        let delta = wait_for_delta(&mut watcher, &sub_key, false);
        assert!(delta.iter().any(|m| m.contains("health.broker-1")), "{delta:?}");

        // The monitor sink got a health-state tell for each transition.
        let mut states = Vec::new();
        while let Some(env) = monitor.recv_timeout(Duration::from_millis(300)) {
            if let Some((b, s, _, ev)) = env.message.content().and_then(health_state_from_sexpr) {
                assert_eq!(b, "broker-1");
                states.push((s, ev.len()));
            }
            if states.len() >= 3 {
                break;
            }
        }
        assert!(
            states.contains(&(HealthState::Degraded, 1)),
            "monitor saw the degraded transition: {states:?}"
        );

        publisher.stop();
        broker.stop();
        rt.shutdown();
    }

    const TIMEOUT: Duration = Duration::from_secs(5);

    /// Drains the watcher until a sub-delta for `sub_key` arrives whose
    /// added (or removed, for `expect_added = false`) list is non-empty;
    /// returns that list as display strings.
    fn wait_for_delta(
        watcher: &mut infosleuth_agent::Endpoint,
        sub_key: &str,
        expect_added: bool,
    ) -> Vec<String> {
        let deadline = Instant::now() + TIMEOUT;
        while Instant::now() < deadline {
            let Some(env) = watcher.recv_timeout(Duration::from_millis(100)) else { continue };
            if env.message.in_reply_to() != Some(sub_key) {
                continue;
            }
            let Some(content) = env.message.content() else { continue };
            let Ok((_epoch, added, removed)) = codec::sub_delta_from_sexpr(content) else {
                continue;
            };
            if expect_added && !added.is_empty() {
                return added.iter().map(|m| m.name.clone()).collect();
            }
            if !expect_added && !removed.is_empty() {
                return removed;
            }
        }
        panic!("no matching sub-delta for {sub_key} (added={expect_added})");
    }
}
