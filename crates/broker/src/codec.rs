//! SExpr encodings for the payloads that cross the agent bus: everything a
//! broker sends or receives is a real KQML message whose `:content` is one
//! of these forms.

use crate::digest::CapabilityDigest;
use crate::matchmaker::MatchResult;
use crate::policy::{FollowOption, SearchPolicy};
use infosleuth_constraint::{parse_conjunction, Conjunction};
use infosleuth_kqml::SExpr;
use infosleuth_ontology::{
    Advertisement, AgentLocation, AgentProperties, AgentType, BrokerAdvertisement,
    BrokerSpecialization, Capability, ConversationType, Fragment, OntologyContent, SemanticInfo,
    ServiceQuery, SyntacticInfo,
};
use std::collections::BTreeSet;
use std::fmt;

/// Error decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err(m: impl Into<String>) -> CodecError {
    CodecError(m.into())
}

// ---------------------------------------------------------------------
// Small helpers over the section-list format `(head item item ...)`.
// ---------------------------------------------------------------------

fn section(head: &str, items: Vec<SExpr>) -> SExpr {
    let mut v = vec![SExpr::atom(head)];
    v.extend(items);
    SExpr::List(v)
}

fn texts(head: &str, it: impl IntoIterator<Item = String>) -> SExpr {
    section(head, it.into_iter().map(SExpr::Str).collect())
}

fn atoms(head: &str, it: impl IntoIterator<Item = String>) -> SExpr {
    section(head, it.into_iter().map(SExpr::Atom).collect())
}

/// Finds the first sub-list starting with `head`.
fn find<'a>(items: &'a [SExpr], head: &str) -> Option<&'a [SExpr]> {
    items.iter().find_map(|e| {
        let list = e.as_list()?;
        if list.first()?.as_atom()? == head {
            Some(&list[1..])
        } else {
            None
        }
    })
}

/// All sub-lists starting with `head`.
fn find_all<'a>(items: &'a [SExpr], head: &'a str) -> impl Iterator<Item = &'a [SExpr]> + 'a {
    items.iter().filter_map(move |e| {
        let list = e.as_list()?;
        if list.first()?.as_atom()? == head {
            Some(&list[1..])
        } else {
            None
        }
    })
}

fn text_items(items: &[SExpr]) -> Vec<String> {
    items.iter().filter_map(|e| e.as_text().map(str::to_string)).collect()
}

fn one_text(items: &[SExpr], head: &str) -> Option<String> {
    find(items, head).and_then(|s| s.first()).and_then(|e| e.as_text()).map(str::to_string)
}

fn one_f64(items: &[SExpr], head: &str) -> Option<f64> {
    one_text(items, head).and_then(|t| t.parse().ok())
}

fn one_bool(items: &[SExpr], head: &str) -> Option<bool> {
    one_text(items, head).and_then(|t| t.parse().ok())
}

fn constraints_to_sexpr(c: &Conjunction) -> SExpr {
    section("constraints", vec![SExpr::string(c.to_text())])
}

fn constraints_from(items: &[SExpr]) -> Result<Conjunction, CodecError> {
    match one_text(items, "constraints") {
        None => Ok(Conjunction::always()),
        Some(text) => parse_conjunction(&text).map_err(|e| err(format!("bad constraints: {e}"))),
    }
}

// ---------------------------------------------------------------------
// Advertisement
// ---------------------------------------------------------------------

fn fragment_to_sexpr(class: &str, frag: &Fragment) -> SExpr {
    match frag {
        Fragment::Vertical { slots } => {
            let mut v = vec![SExpr::atom("vertical"), SExpr::atom(class)];
            v.extend(slots.iter().map(|s| SExpr::atom(s.as_str())));
            SExpr::List(v)
        }
        Fragment::Horizontal { constraint } => SExpr::list([
            SExpr::atom("horizontal"),
            SExpr::atom(class),
            SExpr::string(constraint.to_text()),
        ]),
    }
}

fn content_to_sexpr(c: &OntologyContent) -> SExpr {
    let mut items = vec![
        section("ontology", vec![SExpr::atom(c.ontology.as_str())]),
        atoms("classes", c.classes.iter().cloned()),
        atoms("slots", c.slots.iter().cloned()),
        atoms("keys", c.keys.iter().cloned()),
        constraints_to_sexpr(&c.constraints),
    ];
    if !c.fragments.is_empty() {
        items.push(section(
            "fragments",
            c.fragments.iter().map(|(class, f)| fragment_to_sexpr(class, f)).collect(),
        ));
    }
    section("content", items)
}

fn content_from(items: &[SExpr]) -> Result<OntologyContent, CodecError> {
    let ontology = one_text(items, "ontology").ok_or_else(|| err("content missing ontology"))?;
    let mut c = OntologyContent::new(ontology);
    if let Some(classes) = find(items, "classes") {
        c.classes = text_items(classes).into_iter().collect();
    }
    if let Some(slots) = find(items, "slots") {
        c.slots = text_items(slots).into_iter().collect();
    }
    if let Some(keys) = find(items, "keys") {
        c.keys = text_items(keys).into_iter().collect();
    }
    c.constraints = constraints_from(items)?;
    if let Some(frags) = find(items, "fragments") {
        for f in frags {
            let list = f.as_list().ok_or_else(|| err("fragment must be a list"))?;
            let kind = list.first().and_then(SExpr::as_atom).ok_or_else(|| err("fragment kind"))?;
            let class = list
                .get(1)
                .and_then(SExpr::as_text)
                .ok_or_else(|| err("fragment class"))?
                .to_string();
            match kind {
                "vertical" => {
                    let slots = list[2..]
                        .iter()
                        .filter_map(|e| e.as_text().map(str::to_string))
                        .collect::<Vec<_>>();
                    c.fragments.push((class, Fragment::Vertical { slots }));
                }
                "horizontal" => {
                    let text = list
                        .get(2)
                        .and_then(SExpr::as_text)
                        .ok_or_else(|| err("horizontal fragment constraint"))?;
                    let constraint = parse_conjunction(text)
                        .map_err(|e| err(format!("bad fragment constraint: {e}")))?;
                    c.fragments.push((class, Fragment::Horizontal { constraint }));
                }
                other => return Err(err(format!("unknown fragment kind '{other}'"))),
            }
        }
    }
    Ok(c)
}

/// Encodes an advertisement as `(advertisement ...)`.
pub fn advertisement_to_sexpr(ad: &Advertisement) -> SExpr {
    let mut items = vec![
        section("name", vec![SExpr::atom(ad.location.name.as_str())]),
        section("address", vec![SExpr::string(ad.location.address.as_str())]),
        section("type", vec![SExpr::atom(ad.location.agent_type.to_string())]),
        texts("query-languages", ad.syntactic.query_languages.iter().cloned()),
        texts("comm-languages", ad.syntactic.communication_languages.iter().cloned()),
        atoms("conversations", ad.semantic.conversations.iter().map(|c| c.to_string())),
        atoms("capabilities", ad.semantic.capabilities.iter().map(|c| c.as_str().to_string())),
    ];
    if !ad.semantic.capability_restrictions.is_empty() {
        items.push(texts(
            "capability-restrictions",
            ad.semantic.capability_restrictions.iter().cloned(),
        ));
    }
    items.extend(ad.semantic.content.iter().map(content_to_sexpr));
    let mut props = vec![
        section("mobile", vec![SExpr::atom(ad.properties.mobile.to_string())]),
        section("cloneable", vec![SExpr::atom(ad.properties.cloneable.to_string())]),
    ];
    if let Some(t) = ad.properties.estimated_response_time {
        props.push(section("response-time", vec![SExpr::atom(t.to_string())]));
    }
    if let Some(t) = ad.properties.throughput {
        props.push(section("throughput", vec![SExpr::atom(t.to_string())]));
    }
    items.push(section("properties", props));
    section("advertisement", items)
}

/// Decodes an `(advertisement ...)` payload.
pub fn advertisement_from_sexpr(e: &SExpr) -> Result<Advertisement, CodecError> {
    let list = e.as_list().ok_or_else(|| err("advertisement must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("advertisement") {
        return Err(err("expected (advertisement ...)"));
    }
    let items = &list[1..];
    let name = one_text(items, "name").ok_or_else(|| err("advertisement missing name"))?;
    let address = one_text(items, "address").ok_or_else(|| err("advertisement missing address"))?;
    let agent_type: AgentType = one_text(items, "type")
        .ok_or_else(|| err("advertisement missing type"))?
        .parse()
        .expect("AgentType parsing is infallible"); // lint: allow-unwrap
    let mut ad = Advertisement::new(AgentLocation::new(name, address, agent_type));
    ad.syntactic = SyntacticInfo::new(
        find(items, "query-languages").map(text_items).unwrap_or_default(),
        find(items, "comm-languages").map(text_items).unwrap_or_default(),
    );
    let mut sem = SemanticInfo::default();
    if let Some(convs) = find(items, "conversations") {
        sem.conversations =
            text_items(convs).into_iter().map(|s| parse_conversation(&s)).collect::<BTreeSet<_>>();
    }
    if let Some(caps) = find(items, "capabilities") {
        sem.capabilities = text_items(caps).into_iter().map(Capability::new).collect();
    }
    if let Some(rs) = find(items, "capability-restrictions") {
        sem.capability_restrictions = text_items(rs);
    }
    for c in find_all(items, "content") {
        sem.content.push(content_from(c)?);
    }
    ad.semantic = sem;
    if let Some(props) = find(items, "properties") {
        ad.properties = AgentProperties {
            mobile: one_bool(props, "mobile").unwrap_or(false),
            cloneable: one_bool(props, "cloneable").unwrap_or(false),
            estimated_response_time: one_f64(props, "response-time"),
            throughput: one_f64(props, "throughput"),
        };
    }
    Ok(ad)
}

fn parse_conversation(s: &str) -> ConversationType {
    match s {
        "ask-all" => ConversationType::AskAll,
        "ask-one" => ConversationType::AskOne,
        "subscribe" => ConversationType::Subscribe,
        "update" => ConversationType::Update,
        "tell" => ConversationType::Tell,
        "delegation" => ConversationType::Delegation,
        "forwarding" => ConversationType::Forwarding,
        "emergent" => ConversationType::Emergent,
        other => ConversationType::Other(other.to_string()),
    }
}

// ---------------------------------------------------------------------
// Broker advertisement
// ---------------------------------------------------------------------

/// Encodes a broker advertisement as `(broker-advertisement ...)`.
pub fn broker_advertisement_to_sexpr(ad: &BrokerAdvertisement) -> SExpr {
    let mut items = vec![advertisement_to_sexpr(&ad.base)];
    items.push(atoms("consortia", ad.consortia.iter().cloned()));
    items.push(section(
        "specialization",
        vec![
            atoms("agent-types", ad.specialization.agent_types.iter().map(|t| t.to_string())),
            atoms("ontologies", ad.specialization.ontologies.iter().cloned()),
            texts("restrictions", ad.specialization.restrictions.iter().cloned()),
        ],
    ));
    section("broker-advertisement", items)
}

/// Decodes a `(broker-advertisement ...)` payload.
pub fn broker_advertisement_from_sexpr(e: &SExpr) -> Result<BrokerAdvertisement, CodecError> {
    let list = e.as_list().ok_or_else(|| err("broker-advertisement must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("broker-advertisement") {
        return Err(err("expected (broker-advertisement ...)"));
    }
    let items = &list[1..];
    let base_expr = items
        .iter()
        .find(|e| {
            e.as_list()
                .and_then(|l| l.first())
                .and_then(SExpr::as_atom)
                .map(|h| h == "advertisement")
                .unwrap_or(false)
        })
        .ok_or_else(|| err("broker-advertisement missing base advertisement"))?;
    let base = advertisement_from_sexpr(base_expr)?;
    let mut ad = BrokerAdvertisement::new(base);
    if let Some(cons) = find(items, "consortia") {
        ad.consortia = text_items(cons).into_iter().collect();
    }
    if let Some(spec) = find(items, "specialization") {
        let mut s = BrokerSpecialization::default();
        if let Some(tys) = find(spec, "agent-types") {
            s.agent_types = text_items(tys)
                .into_iter()
                .map(|t| t.parse().expect("AgentType parsing is infallible")) // lint: allow-unwrap
                .collect();
        }
        if let Some(os) = find(spec, "ontologies") {
            s.ontologies = text_items(os).into_iter().collect();
        }
        if let Some(rs) = find(spec, "restrictions") {
            s.restrictions = text_items(rs);
        }
        ad.specialization = s;
    }
    Ok(ad)
}

// ---------------------------------------------------------------------
// Routing digest
// ---------------------------------------------------------------------

fn bits_to_hex(bits: &[u64]) -> String {
    bits.iter().map(|w| format!("{w:016x}")).collect()
}

fn hex_to_bits(s: &str) -> Result<Vec<u64>, CodecError> {
    if !s.is_ascii() || s.len() % 16 != 0 {
        return Err(err("digest bits must be whole hex words"));
    }
    (0..s.len())
        .step_by(16)
        .map(|i| u64::from_str_radix(&s[i..i + 16], 16).map_err(|e| err(format!("bad bits: {e}"))))
        .collect()
}

/// Encodes a routing digest as a KQML fact:
/// `(digest (broker b) (epoch N) (ads N) (k K) (unprunable bool)
/// (bits "hex") (hulls (hull "slot" lo hi) ...))`.
pub fn digest_to_sexpr(d: &CapabilityDigest) -> SExpr {
    let mut items = vec![
        section("broker", vec![SExpr::atom(d.broker.as_str())]),
        section("epoch", vec![SExpr::atom(d.epoch.to_string())]),
        section("ads", vec![SExpr::atom(d.ads.to_string())]),
        section("k", vec![SExpr::atom(d.k.to_string())]),
        section("unprunable", vec![SExpr::atom(d.unprunable.to_string())]),
        section("bits", vec![SExpr::string(bits_to_hex(&d.bits))]),
    ];
    if !d.slot_hulls.is_empty() {
        items.push(section(
            "hulls",
            d.slot_hulls
                .iter()
                .map(|(slot, (lo, hi))| {
                    SExpr::list([
                        SExpr::atom("hull"),
                        SExpr::string(slot.as_str()),
                        SExpr::atom(lo.to_string()),
                        SExpr::atom(hi.to_string()),
                    ])
                })
                .collect(),
        ));
    }
    section("digest", items)
}

/// Decodes a `(digest ...)` payload.
pub fn digest_from_sexpr(e: &SExpr) -> Result<CapabilityDigest, CodecError> {
    let list = e.as_list().ok_or_else(|| err("digest must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("digest") {
        return Err(err("expected (digest ...)"));
    }
    let items = &list[1..];
    let mut d = CapabilityDigest::empty(
        one_text(items, "broker").ok_or_else(|| err("digest missing broker"))?,
    );
    d.epoch = one_text(items, "epoch")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("digest missing epoch"))?;
    d.ads = one_text(items, "ads").and_then(|t| t.parse().ok()).ok_or_else(|| err("digest ads"))?;
    d.k = one_text(items, "k").and_then(|t| t.parse().ok()).ok_or_else(|| err("digest k"))?;
    d.unprunable = one_bool(items, "unprunable").unwrap_or(false);
    d.bits = hex_to_bits(&one_text(items, "bits").unwrap_or_default())?;
    if let Some(hulls) = find(items, "hulls") {
        for h in find_all(hulls, "hull") {
            let slot = h.first().and_then(SExpr::as_text).ok_or_else(|| err("hull slot"))?;
            let lo: f64 = h
                .get(1)
                .and_then(SExpr::as_text)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("hull lo"))?;
            let hi: f64 = h
                .get(2)
                .and_then(SExpr::as_text)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("hull hi"))?;
            d.slot_hulls.insert(slot.to_string(), (lo, hi));
        }
    }
    Ok(d)
}

/// Extracts a digest embedded as an extra section of a larger payload —
/// a `(broker-advertisement ...)` hello or a `(matches ...)` reply. Both
/// decoders ignore the section, so old peers interoperate unchanged.
pub fn embedded_digest(e: &SExpr) -> Option<CapabilityDigest> {
    let list = e.as_list()?;
    let inner = find(&list[1..], "digest")?;
    let mut rebuilt = vec![SExpr::atom("digest")];
    rebuilt.extend(inner.iter().cloned());
    digest_from_sexpr(&SExpr::List(rebuilt)).ok()
}

/// Encodes a broker hello: the broker advertisement with the sender's
/// current routing digest piggybacked as an extra section.
pub fn broker_hello_to_sexpr(ad: &BrokerAdvertisement, digest: Option<&CapabilityDigest>) -> SExpr {
    let e = broker_advertisement_to_sexpr(ad);
    match (e, digest) {
        (SExpr::List(mut items), Some(d)) => {
            items.push(digest_to_sexpr(d));
            SExpr::List(items)
        }
        (e, _) => e,
    }
}

// ---------------------------------------------------------------------
// Service query + search request
// ---------------------------------------------------------------------

/// Encodes a service query as `(service-query ...)`.
pub fn service_query_to_sexpr(q: &ServiceQuery) -> SExpr {
    let mut items = Vec::new();
    if let Some(t) = &q.agent_type {
        items.push(section("type", vec![SExpr::atom(t.to_string())]));
    }
    if let Some(n) = &q.agent_name {
        items.push(section("name", vec![SExpr::atom(n.as_str())]));
    }
    if let Some(l) = &q.query_language {
        items.push(texts("query-language", [l.clone()]));
    }
    if let Some(l) = &q.communication_language {
        items.push(texts("comm-language", [l.clone()]));
    }
    if !q.conversations.is_empty() {
        items.push(atoms("conversations", q.conversations.iter().map(|c| c.to_string())));
    }
    if !q.capabilities.is_empty() {
        items.push(atoms("capabilities", q.capabilities.iter().map(|c| c.as_str().to_string())));
    }
    if let Some(o) = &q.ontology {
        items.push(section("ontology", vec![SExpr::atom(o.as_str())]));
    }
    if !q.classes.is_empty() {
        items.push(atoms("classes", q.classes.iter().cloned()));
    }
    if !q.slots.is_empty() {
        items.push(atoms("slots", q.slots.iter().cloned()));
    }
    if !q.constraints.is_trivial() {
        items.push(constraints_to_sexpr(&q.constraints));
    }
    if let Some(t) = q.max_response_time {
        items.push(section("max-response-time", vec![SExpr::atom(t.to_string())]));
    }
    if let Some(m) = q.require_mobile {
        items.push(section("require-mobile", vec![SExpr::atom(m.to_string())]));
    }
    if let Some(c) = q.require_cloneable {
        items.push(section("require-cloneable", vec![SExpr::atom(c.to_string())]));
    }
    if let Some(n) = q.max_matches {
        items.push(section("max-matches", vec![SExpr::atom(n.to_string())]));
    }
    section("service-query", items)
}

/// Decodes a `(service-query ...)` payload.
pub fn service_query_from_sexpr(e: &SExpr) -> Result<ServiceQuery, CodecError> {
    let list = e.as_list().ok_or_else(|| err("service-query must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("service-query") {
        return Err(err("expected (service-query ...)"));
    }
    let items = &list[1..];
    let mut q = ServiceQuery::any();
    if let Some(t) = one_text(items, "type") {
        // Infallible: unknown type strings become AgentType::Other.
        q.agent_type = t.parse().ok();
    }
    q.agent_name = one_text(items, "name");
    q.query_language = one_text(items, "query-language");
    q.communication_language = one_text(items, "comm-language");
    if let Some(convs) = find(items, "conversations") {
        q.conversations = text_items(convs).iter().map(|s| parse_conversation(s)).collect();
    }
    if let Some(caps) = find(items, "capabilities") {
        q.capabilities = text_items(caps).into_iter().map(Capability::new).collect();
    }
    q.ontology = one_text(items, "ontology");
    if let Some(cs) = find(items, "classes") {
        q.classes = text_items(cs).into_iter().collect();
    }
    if let Some(ss) = find(items, "slots") {
        q.slots = text_items(ss).into_iter().collect();
    }
    q.constraints = constraints_from(items)?;
    q.max_response_time = one_f64(items, "max-response-time");
    q.require_mobile = one_bool(items, "require-mobile");
    q.require_cloneable = one_bool(items, "require-cloneable");
    q.max_matches = one_text(items, "max-matches").and_then(|t| t.parse().ok());
    Ok(q)
}

/// A broker search request: the query, the §4.3 policy, and the visited
/// list ("we keep a list of brokers that a request has been forwarded to
/// and pass this list along with the message").
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    pub query: ServiceQuery,
    pub policy: SearchPolicy,
    pub visited: Vec<String>,
    /// The epoch of the *receiver's* digest the sender consulted before
    /// forwarding, for staleness detection. `None` when the sender holds
    /// no digest (or predates the digest protocol).
    pub digest_epoch: Option<u64>,
}

/// Encodes a search request as `(broker-search ...)`.
pub fn search_request_to_sexpr(r: &SearchRequest) -> SExpr {
    let mut items = vec![
        service_query_to_sexpr(&r.query),
        section(
            "policy",
            vec![
                section("hop-count", vec![SExpr::atom(r.policy.hop_count.to_string())]),
                section("follow", vec![SExpr::atom(r.policy.follow.as_str())]),
            ],
        ),
        atoms("visited", r.visited.iter().cloned()),
    ];
    if let Some(epoch) = r.digest_epoch {
        items.push(section("digest-epoch", vec![SExpr::atom(epoch.to_string())]));
    }
    section("broker-search", items)
}

/// Decodes a `(broker-search ...)` payload.
pub fn search_request_from_sexpr(e: &SExpr) -> Result<SearchRequest, CodecError> {
    let list = e.as_list().ok_or_else(|| err("broker-search must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("broker-search") {
        return Err(err("expected (broker-search ...)"));
    }
    let items = &list[1..];
    let query_expr = items
        .iter()
        .find(|e| {
            e.as_list()
                .and_then(|l| l.first())
                .and_then(SExpr::as_atom)
                .map(|h| h == "service-query")
                .unwrap_or(false)
        })
        .ok_or_else(|| err("broker-search missing service-query"))?;
    let query = service_query_from_sexpr(query_expr)?;
    let policy = match find(items, "policy") {
        None => SearchPolicy::default_for(query.max_matches),
        Some(p) => SearchPolicy {
            hop_count: one_text(p, "hop-count")
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("policy missing hop-count"))?,
            follow: one_text(p, "follow")
                .as_deref()
                .and_then(FollowOption::parse)
                .ok_or_else(|| err("policy missing follow option"))?,
        },
    };
    let visited = find(items, "visited").map(text_items).unwrap_or_default();
    let digest_epoch = one_text(items, "digest-epoch").and_then(|t| t.parse().ok());
    Ok(SearchRequest { query, policy, visited, digest_epoch })
}

// ---------------------------------------------------------------------
// Match results
// ---------------------------------------------------------------------

/// Encodes match results as `(matches (match ...) ...)`.
pub fn matches_to_sexpr(matches: &[MatchResult]) -> SExpr {
    section(
        "matches",
        matches
            .iter()
            .map(|m| {
                let mut items = vec![
                    section("name", vec![SExpr::atom(m.name.as_str())]),
                    section("address", vec![SExpr::string(m.address.as_str())]),
                    section("score", vec![SExpr::atom(m.score.to_string())]),
                ];
                if let Some(t) = m.estimated_response_time {
                    items.push(section("response-time", vec![SExpr::atom(t.to_string())]));
                }
                if let Some(o) = &m.ontology {
                    items.push(section("ontology", vec![SExpr::atom(o.as_str())]));
                }
                if !m.classes.is_empty() {
                    items.push(atoms("classes", m.classes.iter().cloned()));
                }
                if !m.slots.is_empty() {
                    items.push(atoms("slots", m.slots.iter().cloned()));
                }
                if !m.keys.is_empty() {
                    items.push(atoms("keys", m.keys.iter().cloned()));
                }
                section("match", items)
            })
            .collect(),
    )
}

/// Encodes a matches reply, optionally piggybacking the responder's
/// fresh digest (stale-digest repair: the querier forwarded with an old
/// epoch, so the responder ships its current summary along).
pub fn matches_reply_to_sexpr(matches: &[MatchResult], digest: Option<&CapabilityDigest>) -> SExpr {
    let e = matches_to_sexpr(matches);
    match (e, digest) {
        (SExpr::List(mut items), Some(d)) => {
            items.push(digest_to_sexpr(d));
            SExpr::List(items)
        }
        (e, _) => e,
    }
}

/// Decodes a `(matches ...)` payload.
pub fn matches_from_sexpr(e: &SExpr) -> Result<Vec<MatchResult>, CodecError> {
    let list = e.as_list().ok_or_else(|| err("matches must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("matches") {
        return Err(err("expected (matches ...)"));
    }
    let mut out = Vec::new();
    for m in find_all(&list[1..], "match") {
        out.push(MatchResult {
            name: one_text(m, "name").ok_or_else(|| err("match missing name"))?,
            address: one_text(m, "address").ok_or_else(|| err("match missing address"))?,
            score: one_text(m, "score")
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("match missing score"))?,
            estimated_response_time: one_f64(m, "response-time"),
            ontology: one_text(m, "ontology"),
            classes: find(m, "classes").map(text_items).unwrap_or_default(),
            slots: find(m, "slots").map(text_items).unwrap_or_default(),
            keys: find(m, "keys").map(text_items).unwrap_or_default(),
        });
    }
    Ok(out)
}

/// Encodes an incremental subscription notification:
/// `(sub-delta (epoch N) (matched (match ...) ...) (unmatched a b))`.
/// `matched` carries full match rows for agents entering the result set
/// (or re-ranked within it); `unmatched` lists the names that left.
pub fn sub_delta_to_sexpr(epoch: u64, matched: &[MatchResult], unmatched: &[String]) -> SExpr {
    let mut items = vec![section("epoch", vec![SExpr::atom(epoch.to_string())])];
    if let SExpr::List(mut rows) = matches_to_sexpr(matched) {
        rows[0] = SExpr::atom("matched");
        items.push(SExpr::List(rows));
    }
    items.push(atoms("unmatched", unmatched.iter().cloned()));
    section("sub-delta", items)
}

/// Decodes a `(sub-delta ...)` payload into `(epoch, matched, unmatched)`.
pub fn sub_delta_from_sexpr(e: &SExpr) -> Result<(u64, Vec<MatchResult>, Vec<String>), CodecError> {
    let list = e.as_list().ok_or_else(|| err("sub-delta must be a list"))?;
    if list.first().and_then(SExpr::as_atom) != Some("sub-delta") {
        return Err(err("expected (sub-delta ...)"));
    }
    let body = &list[1..];
    let epoch = one_text(body, "epoch")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("sub-delta missing epoch"))?;
    let matched = match find(body, "matched") {
        Some(items) => {
            let mut rows = vec![SExpr::atom("matches")];
            rows.extend(items.iter().cloned());
            matches_from_sexpr(&SExpr::List(rows))?
        }
        None => Vec::new(),
    };
    let unmatched = find(body, "unmatched").map(text_items).unwrap_or_default();
    Ok((epoch, matched, unmatched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::Predicate;

    fn sample_ad() -> Advertisement {
        Advertisement::new(AgentLocation::new(
            "ResourceAgent5",
            "tcp://b1.mcc.com:4356",
            AgentType::Resource,
        ))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::Subscribe, ConversationType::AskAll])
                .with_capabilities(["relational-query-processing", "subscription"])
                .with_capability_restriction("no statistical aggregation")
                .with_content(
                    OntologyContent::new("healthcare")
                        .with_classes(["diagnosis", "patient"])
                        .with_slots(["diagnosis.code", "patient.age"])
                        .with_keys(["patient.id"])
                        .with_fragment("patient", Fragment::vertical(["id", "age"]))
                        .with_fragment(
                            "diagnosis",
                            Fragment::horizontal(Conjunction::from_predicates(vec![
                                Predicate::eq("diagnosis.code", "40W"),
                            ])),
                        )
                        .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                            "patient.age",
                            43,
                            75,
                        )])),
                ),
        )
        .with_properties(AgentProperties {
            mobile: false,
            cloneable: true,
            estimated_response_time: Some(5.0),
            throughput: Some(2.5),
        })
    }

    #[test]
    fn advertisement_round_trips() {
        let ad = sample_ad();
        let e = advertisement_to_sexpr(&ad);
        // Through text, as it would cross a real wire.
        let text = e.to_string();
        let parsed = SExpr::parse(&text).unwrap();
        let back = advertisement_from_sexpr(&parsed).unwrap();
        assert_eq!(back, ad);
    }

    #[test]
    fn broker_advertisement_round_trips() {
        let mut ad = BrokerAdvertisement::new(
            Advertisement::new(AgentLocation::new("b1", "tcp://h:1", AgentType::Broker))
                .with_syntactic(SyntacticInfo::new(["LDL"], ["KQML"])),
        );
        ad.consortia = ["alpha".to_string(), "beta".to_string()].into_iter().collect();
        ad.specialization.ontologies.insert("healthcare".into());
        ad.specialization.agent_types.insert(AgentType::Resource);
        ad.specialization.restrictions.push("patients only".into());
        let text = broker_advertisement_to_sexpr(&ad).to_string();
        let back = broker_advertisement_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ad);
    }

    #[test]
    fn service_query_round_trips() {
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_communication_language("KQML")
            .with_conversation(ConversationType::AskAll)
            .with_capability("select")
            .with_ontology("healthcare")
            .with_classes(["patient"])
            .with_slots(["patient.age"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                25,
                65,
            )]))
            .with_max_response_time(10.0)
            .with_mobility(false)
            .with_cloneability(true)
            .one();
        let text = service_query_to_sexpr(&q).to_string();
        let back = service_query_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn empty_service_query_round_trips() {
        let q = ServiceQuery::any();
        let back = service_query_from_sexpr(&service_query_to_sexpr(&q)).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn search_request_round_trips() {
        let r = SearchRequest {
            query: ServiceQuery::for_agent_type(AgentType::Resource),
            policy: SearchPolicy { hop_count: 3, follow: FollowOption::UntilMatch },
            visited: vec!["b1".into(), "b2".into()],
            digest_epoch: None,
        };
        let text = search_request_to_sexpr(&r).to_string();
        let back = search_request_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // And with a digest epoch stamped on.
        let stamped = SearchRequest { digest_epoch: Some(17), ..r };
        let text = search_request_to_sexpr(&stamped).to_string();
        let back = search_request_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stamped);
    }

    fn sample_digest() -> CapabilityDigest {
        let mut d = CapabilityDigest::empty("b1");
        d.epoch = 12;
        d.ads = 3;
        d.unprunable = false;
        d.bits = vec![0x0123_4567_89ab_cdef, 0xffff_0000_dead_beef];
        d.slot_hulls.insert("patient.age".into(), (25.0, 65.0));
        d.slot_hulls.insert("open.low".into(), (f64::NEG_INFINITY, 10.5));
        d
    }

    #[test]
    fn digest_round_trips() {
        let d = sample_digest();
        let text = digest_to_sexpr(&d).to_string();
        let back = digest_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
        // The empty digest (no bits, no hulls) round-trips too.
        let empty = CapabilityDigest::empty("b2");
        let text = digest_to_sexpr(&empty).to_string();
        assert_eq!(digest_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap(), empty);
        assert!(digest_from_sexpr(&SExpr::parse("(nonsense)").unwrap()).is_err());
    }

    #[test]
    fn broker_hello_carries_the_digest_transparently() {
        let ad = BrokerAdvertisement::new(
            Advertisement::new(AgentLocation::new("b1", "tcp://h:1", AgentType::Broker))
                .with_syntactic(SyntacticInfo::new(["LDL"], ["KQML"])),
        );
        let d = sample_digest();
        let text = broker_hello_to_sexpr(&ad, Some(&d)).to_string();
        let parsed = SExpr::parse(&text).unwrap();
        // The broker-advertisement decoder ignores the extra section...
        let back = broker_advertisement_from_sexpr(&parsed).unwrap();
        assert_eq!(back, ad);
        // ...while the digest extractor finds it.
        assert_eq!(embedded_digest(&parsed), Some(d));
        // Without a digest the hello is a plain broker-advertisement.
        let plain = broker_hello_to_sexpr(&ad, None);
        assert_eq!(plain, broker_advertisement_to_sexpr(&ad));
        assert_eq!(embedded_digest(&plain), None);
    }

    #[test]
    fn matches_reply_carries_the_digest_transparently() {
        let ms = vec![MatchResult {
            name: "db1".into(),
            address: "tcp://h:1".into(),
            score: 7,
            ..MatchResult::default()
        }];
        let d = sample_digest();
        let text = matches_reply_to_sexpr(&ms, Some(&d)).to_string();
        let parsed = SExpr::parse(&text).unwrap();
        assert_eq!(matches_from_sexpr(&parsed).unwrap(), ms);
        assert_eq!(embedded_digest(&parsed), Some(d));
        assert_eq!(matches_reply_to_sexpr(&ms, None), matches_to_sexpr(&ms));
    }

    #[test]
    fn matches_round_trip() {
        let ms = vec![
            MatchResult {
                name: "db1".into(),
                address: "tcp://h:1".into(),
                score: 7,
                estimated_response_time: Some(5.0),
                ontology: Some("healthcare".into()),
                classes: vec!["patient".into(), "diagnosis".into()],
                slots: vec!["patient.age".into()],
                keys: vec!["patient.id".into()],
            },
            MatchResult {
                name: "db2".into(),
                address: "tcp://h:2".into(),
                score: 4,
                estimated_response_time: None,
                ..MatchResult::default()
            },
        ];
        let text = matches_to_sexpr(&ms).to_string();
        let back = matches_from_sexpr(&SExpr::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ms);
        // Empty list round-trips too.
        assert_eq!(matches_from_sexpr(&matches_to_sexpr(&[])).unwrap(), vec![]);
    }

    #[test]
    fn decoding_rejects_wrong_heads() {
        let e = SExpr::parse("(nonsense)").unwrap();
        assert!(advertisement_from_sexpr(&e).is_err());
        assert!(service_query_from_sexpr(&e).is_err());
        assert!(search_request_from_sexpr(&e).is_err());
        assert!(matches_from_sexpr(&e).is_err());
        assert!(broker_advertisement_from_sexpr(&e).is_err());
        assert!(advertisement_from_sexpr(&SExpr::atom("x")).is_err());
    }

    #[test]
    fn decoding_requires_mandatory_fields() {
        let e = SExpr::parse("(advertisement (name x))").unwrap();
        assert!(advertisement_from_sexpr(&e).is_err()); // missing address
        let e = SExpr::parse("(matches (match (name x)))").unwrap();
        assert!(matches_from_sexpr(&e).is_err()); // missing address/score
    }

    #[test]
    fn sub_delta_round_trips() {
        let matched = vec![MatchResult {
            name: "ra-1".into(),
            address: "tcp://ra-1.mcc.com:4000".into(),
            score: 5,
            ..MatchResult::default()
        }];
        let unmatched = vec!["ra-2".to_string()];
        let e = sub_delta_to_sexpr(42, &matched, &unmatched);
        let text = e.to_string();
        let back = SExpr::parse(&text).unwrap();
        let (epoch, m, u) = sub_delta_from_sexpr(&back).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(m, matched);
        assert_eq!(u, unmatched);
        // An empty delta round-trips too (snapshot of an empty repo).
        let e = sub_delta_to_sexpr(0, &[], &[]);
        let (epoch, m, u) = sub_delta_from_sexpr(&e).unwrap();
        assert_eq!((epoch, m.len(), u.len()), (0, 0, 0));
        assert!(sub_delta_from_sexpr(&SExpr::parse("(nonsense)").unwrap()).is_err());
    }
}
