//! The InfoSleuth broker: repository, combined syntactic + semantic
//! matchmaking, and peer-to-peer multibrokering.
//!
//! "The broker agent maintains a knowledge base of information that other
//! agents have advertised about themselves, and uses this knowledge to
//! match agents with requested services." (§2.1)
//!
//! The pieces, mapped to the paper:
//!
//! * [`Repository`] — the broker repository of Figures 3–4: validated
//!   advertisements, compiled into LDL facts for the reasoning engine.
//! * [`Matchmaker`] — combined brokering: a *syntactic* filter (languages,
//!   conversation types, agent type), then *semantic* reasoning over the
//!   capability taxonomy, domain ontologies (class hierarchies, fragments),
//!   and data constraints; finally ranking so that a better semantic match
//!   (the "MRQ2" example of §2.2) sorts first.
//! * [`SearchPolicy`] / [`FollowOption`] — the inter-broker search policy of
//!   §4.3, modelled on the CORBA trading service: a hop count and a follow
//!   option, plus a visited list for loop prevention.
//! * [`BrokerObjective`] — broker specialization (§3.2): general-purpose
//!   brokers accept everything; specialized brokers accept advertisements
//!   that fit their domains and forward or reject the rest.
//! * [`BrokerAgent`] — the live agent: a message loop speaking KQML over
//!   the agent bus, handling advertise / unadvertise / update / ping /
//!   ask-all / ask-one, and collaborating with peer brokers on searches.
//! * [`codec`] — SExpr encodings of advertisements, service queries, and
//!   match lists, so everything that crosses the bus is a real KQML message.

#![forbid(unsafe_code)]

pub mod codec;

mod broker_agent;
mod digest;
mod facts;
mod health_pub;
mod match_cache;
mod matchmaker;
mod objective;
mod policy;
mod protocol_tap;
mod repository;
mod scoring_index;
mod shard;
mod sub_index;

pub use broker_agent::{
    advertise_to, broker_one_content, interconnect, query_broker, subscribe_to, unadvertise_from,
    unsubscribe_from, BrokerAgent, BrokerConfig, BrokerCore, BrokerHandle, RoutingStats,
};
pub use digest::{CapabilityDigest, DigestBuilder};
pub use facts::{
    compile_agent_facts, compile_facts, compile_global_facts, derived_schema, edb_schema,
    matchmaking_env, matchmaking_program, matchmaking_program_with, matchmaking_rules_text,
};
pub use health_pub::{
    health_state_from_sexpr, health_state_to_sexpr, spawn_health_publisher,
    spawn_health_publisher_with, HealthPublisher, HealthPublisherConfig, HealthPublisherHandle,
    HEALTH_STATE_HEAD, OBS_ONTOLOGY_NAME,
};
pub use match_cache::{MatchCache, MatchCacheStats, QueryKey, DEFAULT_MATCH_CACHE_CAPACITY};
pub use matchmaker::{MatchResult, Matchmaker};
pub use objective::{AdmissionDecision, BrokerObjective};
pub use policy::{FollowOption, SearchPolicy};
pub use protocol_tap::ProtocolTap;
pub use repository::{MaintenanceStats, Repository, RepositoryError};
pub use scoring_index::ScoringIndex;
pub use shard::{connect_community, ShardPlan, ShardedRepository};
pub use sub_index::{
    result_delta, StandingSubscription, SubId, SubscriptionIndex, SubscriptionRegistry,
};
