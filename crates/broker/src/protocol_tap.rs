//! A transport tap feeding every send through the runtime conversation
//! conformance monitor (IS05x).
//!
//! Wrap any node's transport in
//! [`TappedTransport`](infosleuth_agent::TappedTransport) with a
//! [`ProtocolTap`] and every outgoing message — broker acks, sub-deltas,
//! client requests — is replayed through a
//! [`ConformanceMonitor`](infosleuth_analysis::ConformanceMonitor) in
//! global emission order. Violations accumulate in the
//! `protocol_violations_total` counter (scrapable next to the broker's
//! other metrics) and are kept as [`Diagnostic`]s for inspection.
//!
//! Distributed deployments should use the lenient monitor
//! ([`ProtocolTap::lenient`]): a tap on one node sees replies to
//! conversations whose opening request left from another node, and a
//! strict monitor would flag those as out-of-order. The strict variant
//! is for single-transport communities where the tap observes every
//! send.

use infosleuth_agent::{sync::lock_unpoisoned, MessageTap};
use infosleuth_analysis::{ConformanceMonitor, Diagnostic};
use infosleuth_kqml::Message;
use infosleuth_obs::{Counter, MetricsRegistry};
use std::sync::Mutex;

/// Shared conformance tap: owns the monitor behind a mutex (taps are
/// called from every sending thread) and mirrors the running violation
/// count into a metric.
pub struct ProtocolTap {
    monitor: Mutex<ConformanceMonitor>,
    drained: Mutex<Vec<Diagnostic>>,
    violations: Counter,
}

impl ProtocolTap {
    /// A lenient tap (unknown conversation keys ignored) over the
    /// standard protocol table — the right default for multi-node
    /// deployments where this tap sees only one node's sends.
    pub fn lenient(registry: &MetricsRegistry, node: &str) -> ProtocolTap {
        ProtocolTap::over(ConformanceMonitor::standard_lenient(), registry, node)
    }

    /// A strict tap (every reply must resolve to an observed opening) —
    /// for single-transport communities observed in full.
    pub fn strict(registry: &MetricsRegistry, node: &str) -> ProtocolTap {
        ProtocolTap::over(ConformanceMonitor::standard_strict(), registry, node)
    }

    /// A tap over an explicitly configured monitor.
    pub fn over(
        monitor: ConformanceMonitor,
        registry: &MetricsRegistry,
        node: &str,
    ) -> ProtocolTap {
        ProtocolTap {
            monitor: Mutex::new(monitor),
            drained: Mutex::new(Vec::new()),
            violations: registry.counter("protocol_violations_total", &[("node", node)]),
        }
    }

    /// Total violations observed so far (also the value of
    /// `protocol_violations_total`).
    pub fn total_violations(&self) -> u64 {
        lock_unpoisoned(&self.monitor).total_violations()
    }

    /// All violation diagnostics observed so far, in emission order.
    pub fn violations(&self) -> Vec<Diagnostic> {
        let mut drained = lock_unpoisoned(&self.drained);
        drained.extend(lock_unpoisoned(&self.monitor).take_violations());
        drained.clone()
    }

    /// Conversations currently open in the monitor.
    pub fn open_conversations(&self) -> usize {
        lock_unpoisoned(&self.monitor).open_conversations()
    }
}

impl MessageTap for ProtocolTap {
    fn on_send(&self, from: &str, to: &str, message: &Message) {
        let mut monitor = lock_unpoisoned(&self.monitor);
        let before = monitor.total_violations();
        monitor.observe(from, to, message);
        let delta = monitor.total_violations() - before;
        if delta > 0 {
            self.violations.add(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_agent::{Bus, TappedTransport};
    use infosleuth_kqml::{Message, Performative};
    use infosleuth_obs::Obs;
    use std::sync::Arc;

    fn scrape_total(obs: &Obs) -> Option<f64> {
        obs.registry().render().lines().find_map(|l| {
            l.strip_prefix("protocol_violations_total")
                .and_then(|rest| rest.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
        })
    }

    #[test]
    fn clean_conversation_leaves_counter_at_zero() {
        let obs = Obs::new();
        let tap = Arc::new(ProtocolTap::strict(obs.registry(), "node1"));
        tap.on_send("client", "broker", &Message::new(Performative::Ping).with_reply_with("p1"));
        tap.on_send("broker", "client", &Message::new(Performative::Reply).with_in_reply_to("p1"));
        assert_eq!(tap.total_violations(), 0);
        assert!(tap.violations().is_empty());
        assert_eq!(tap.open_conversations(), 0);
    }

    #[test]
    fn duplicate_ack_is_counted_and_kept() {
        let obs = Obs::new();
        let tap = Arc::new(ProtocolTap::strict(obs.registry(), "node1"));
        tap.on_send("client", "broker", &Message::new(Performative::Ping).with_reply_with("p1"));
        let ack = Message::new(Performative::Reply).with_in_reply_to("p1");
        tap.on_send("broker", "client", &ack);
        tap.on_send("broker", "client", &ack);
        assert_eq!(tap.total_violations(), 1);
        let kept = tap.violations();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].code, infosleuth_analysis::Code::DuplicateAck);
        // Draining is idempotent: diagnostics stay available.
        assert_eq!(tap.violations().len(), 1);
    }

    #[test]
    fn tapped_transport_feeds_the_monitor_and_metric() {
        let bus = Bus::new();
        let obs = Obs::new();
        let tap = Arc::new(ProtocolTap::strict(obs.registry(), "node1"));
        let tap_obj: Arc<dyn infosleuth_agent::MessageTap> = Arc::clone(&tap) as _;
        let tapped = TappedTransport::wrap(bus.as_transport(), tap_obj);
        let _broker = tapped.open_mailbox("broker").unwrap();
        let _client = tapped.open_mailbox("client").unwrap();
        tapped
            .send("client", "broker", Message::new(Performative::Ping).with_reply_with("p9"))
            .unwrap();
        let ack = Message::new(Performative::Reply).with_in_reply_to("p9");
        tapped.send("broker", "client", ack.clone()).unwrap();
        tapped.send("broker", "client", ack).unwrap();
        assert_eq!(tap.total_violations(), 1);
        assert_eq!(scrape_total(&obs), Some(1.0));
    }
}
