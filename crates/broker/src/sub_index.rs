//! The inverted subscription index: standing service queries bucketed so
//! that one repository mutation yields the (small) set of subscriptions it
//! can possibly affect, instead of re-evaluating every standing query.
//!
//! The shape follows S-ToPSS-style semantic pub/sub matching: each
//! subscription registers under its most selective *required* dimension
//! (agent name, then ontology classes, then capabilities, then the
//! ontology itself, then conversation types), expanded through the class
//! hierarchy / capability taxonomy exactly the way
//! [`Matchmaker`](crate::Matchmaker) expands query dimensions when
//! narrowing candidates. An advertise/unadvertise/update event probes the
//! buckets with the changed advertisement's own dimensions (old *and* new
//! versions), so the result is a sound over-approximation: every
//! subscription whose match set could have changed is in the candidate
//! set, and false positives only cost one cached re-score that produces an
//! empty delta.
//!
//! Numeric data constraints refine the candidate set through per-slot
//! interval trees: a subscription constraining `patient.age` to `[25, 65]`
//! is ruled out for an advertisement restricted to `[80, 90]` without ever
//! re-scoring it. The trees answer stabbing/overlap queries in
//! `O(log n + hits)` over the subscriptions that constrain the slot.
//!
//! Symbols (class, capability, ontology, conversation, slot names) are
//! interned into a `u32` space shared across all buckets, the same
//! technique [`ScoringIndex`](crate::ScoringIndex) uses for derived-fact
//! probes.
//!
//! Soundness limits, mirroring the matchmaker's own pruning rules: when
//! the repository has derived concept rules registered, class membership
//! and capability coverage can be invented by inference, so the index
//! refuses to prune and reports every subscription as affected
//! ([`SubscriptionRegistry::affected`] checks `has_derived_rules`). The
//! class expansion is computed against the hierarchy at registration time;
//! ontologies are expected to be registered before subscriptions open
//! (re-registering an ontology requires re-registering subscriptions).

use crate::{MatchResult, Repository};
use infosleuth_constraint::{Bound, Conjunction, Value};
use infosleuth_ontology::{Advertisement, ServiceQuery};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Internal subscription identifier.
pub type SubId = u64;

/// A registered standing subscription: the query, where notifications go,
/// and the last result set delivered (the base for delta computation).
#[derive(Debug, Clone)]
pub struct StandingSubscription {
    pub id: SubId,
    /// The external subscription id (from `:reply-with` or generated);
    /// notifications carry it as `:in-reply-to`.
    pub sub_key: String,
    /// The agent name notifications are delivered to (`:reply-to` of the
    /// subscribe message, falling back to the sender).
    pub subscriber: String,
    /// Encoded `:x-trace` context from the subscribe message, propagated
    /// onto every notification.
    pub trace: Option<String>,
    pub query: ServiceQuery,
    /// The result set as of the last notification.
    pub last: Arc<Vec<MatchResult>>,
}

/// The dimension a subscription was bucketed under, kept for removal.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BucketRef {
    AgentName(u32),
    Classes(Vec<u32>),
    Capabilities(Vec<u32>),
    Ontology(u32),
    Conversation(u32),
    CatchAll,
}

/// Per-slot interval set with an implicit augmented interval tree over the
/// intervals sorted by lower end. Mutations mark the tree dirty; the first
/// query after a mutation rebuilds in `O(n log n)`, so registration bursts
/// amortize to one rebuild.
#[derive(Debug, Default)]
struct SlotIntervals {
    ranges: HashMap<SubId, (f64, f64)>,
    sorted: Vec<(f64, f64, SubId)>,
    /// `max_hi[i]` = max upper end over the implicit subtree rooted at `i`
    /// (midpoint recursion over `sorted`).
    max_hi: Vec<f64>,
    dirty: bool,
}

impl SlotIntervals {
    fn insert(&mut self, id: SubId, lo: f64, hi: f64) {
        self.ranges.insert(id, (lo, hi));
        self.dirty = true;
    }

    fn remove(&mut self, id: SubId) -> bool {
        let hit = self.ranges.remove(&id).is_some();
        self.dirty |= hit;
        hit
    }

    fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    fn rebuild(&mut self) {
        self.sorted = self.ranges.iter().map(|(id, (lo, hi))| (*lo, *hi, *id)).collect();
        self.sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        self.max_hi = vec![f64::NEG_INFINITY; self.sorted.len()];
        if !self.sorted.is_empty() {
            self.fill_max(0, self.sorted.len());
        }
        self.dirty = false;
    }

    /// Computes subtree maxima for the implicit tree over `[lo, hi)`.
    fn fill_max(&mut self, lo: usize, hi: usize) -> f64 {
        if lo >= hi {
            return f64::NEG_INFINITY;
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.fill_max(lo, mid);
        let right = self.fill_max(mid + 1, hi);
        let m = self.sorted[mid].1.max(left).max(right);
        self.max_hi[mid] = m;
        m
    }

    /// Every subscription whose stored interval overlaps `[qlo, qhi]`
    /// (bounds treated as closed — a conservative relaxation of bound
    /// exclusivity). `O(log n + hits)`.
    fn overlapping(&mut self, qlo: f64, qhi: f64, out: &mut HashSet<SubId>) {
        if self.dirty {
            self.rebuild();
        }
        self.visit(0, self.sorted.len(), qlo, qhi, out);
    }

    fn visit(&self, lo: usize, hi: usize, qlo: f64, qhi: f64, out: &mut HashSet<SubId>) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        // Nothing in this subtree reaches up to the query's lower end.
        if self.max_hi[mid] < qlo {
            return;
        }
        self.visit(lo, mid, qlo, qhi, out);
        let (s_lo, s_hi, id) = self.sorted[mid];
        if s_lo <= qhi {
            if s_hi >= qlo {
                out.insert(id);
            }
            self.visit(mid + 1, hi, qlo, qhi, out);
        }
        // Else every interval to the right starts past the query: prune.
    }

    /// The subscriptions constraining this slot to an interval disjoint
    /// from `[qlo, qhi]` — provably unaffected by an advertisement whose
    /// domain on the slot is inside that window.
    fn disjoint(&mut self, qlo: f64, qhi: f64) -> HashSet<SubId> {
        let mut overlap = HashSet::new();
        self.overlapping(qlo, qhi, &mut overlap);
        self.ranges.keys().filter(|id| !overlap.contains(id)).copied().collect()
    }
}

/// The inverted index proper: interned dimension buckets plus per-slot
/// interval trees.
#[derive(Debug, Default)]
pub struct SubscriptionIndex {
    symbols: HashMap<String, u32>,
    buckets: HashMap<SubId, BucketRef>,
    by_agent_name: HashMap<u32, BTreeSet<SubId>>,
    /// Keyed by interned `(ontology, class)` pair symbol.
    by_class: HashMap<u32, BTreeSet<SubId>>,
    by_capability: HashMap<u32, BTreeSet<SubId>>,
    by_ontology: HashMap<u32, BTreeSet<SubId>>,
    by_conversation: HashMap<u32, BTreeSet<SubId>>,
    catch_all: BTreeSet<SubId>,
    /// Keyed by interned slot name; tracks which subscriptions constrain
    /// the slot numerically (for refinement, not primary candidacy).
    by_slot: HashMap<u32, SlotIntervals>,
    slots_of: HashMap<SubId, Vec<u32>>,
}

/// The numeric hull of one slot's domain under a conjunction, when one
/// exists. `None` means "not numerically constrained" — never used to
/// prune. Shared with the inter-broker routing digest
/// ([`crate::digest`]), which applies the same closed-bound relaxation.
pub(crate) fn numeric_hull(c: &Conjunction, slot: &str) -> Option<(f64, f64)> {
    let dom = c.domain(slot);
    let as_f64 = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    };
    // A finite allow-set hulls to [min, max] intersected with the range.
    let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
    match &dom.range.lo {
        Bound::Unbounded => {}
        Bound::Incl(v) | Bound::Excl(v) => lo = as_f64(v)?,
    }
    match &dom.range.hi {
        Bound::Unbounded => {}
        Bound::Incl(v) | Bound::Excl(v) => hi = as_f64(v)?,
    }
    if let Some(allowed) = &dom.allowed {
        let nums: Vec<f64> = allowed.iter().filter_map(as_f64).collect();
        if nums.len() == allowed.len() && !nums.is_empty() {
            lo = lo.max(nums.iter().cloned().fold(f64::INFINITY, f64::min));
            hi = hi.min(nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        }
    }
    if lo == f64::NEG_INFINITY && hi == f64::INFINITY {
        return None;
    }
    Some((lo, hi))
}

impl SubscriptionIndex {
    pub fn new() -> Self {
        SubscriptionIndex::default()
    }

    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.symbols.get(s) {
            return id;
        }
        let id = self.symbols.len() as u32;
        self.symbols.insert(s.to_string(), id);
        id
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.symbols.get(s).copied()
    }

    fn intern_pair(&mut self, a: &str, b: &str) -> u32 {
        self.intern(&format!("{a}\u{1}{b}"))
    }

    fn lookup_pair(&self, a: &str, b: &str) -> Option<u32> {
        self.symbols.get(&format!("{a}\u{1}{b}")).copied()
    }

    /// Registers a subscription under its most selective required
    /// dimension. `repo` supplies the class hierarchy and capability
    /// taxonomy for expansion (mirroring `Matchmaker::candidates`).
    pub fn insert(&mut self, id: SubId, query: &ServiceQuery, repo: &Repository) {
        self.remove(id);
        let bucket = self.choose_bucket(query, repo);
        match &bucket {
            BucketRef::AgentName(s) => {
                self.by_agent_name.entry(*s).or_default().insert(id);
            }
            BucketRef::Classes(syms) => {
                for s in syms {
                    self.by_class.entry(*s).or_default().insert(id);
                }
            }
            BucketRef::Capabilities(syms) => {
                for s in syms {
                    self.by_capability.entry(*s).or_default().insert(id);
                }
            }
            BucketRef::Ontology(s) => {
                self.by_ontology.entry(*s).or_default().insert(id);
            }
            BucketRef::Conversation(s) => {
                self.by_conversation.entry(*s).or_default().insert(id);
            }
            BucketRef::CatchAll => {
                self.catch_all.insert(id);
            }
        }
        self.buckets.insert(id, bucket);
        // Numeric constraint intervals, one tree per slot.
        let mut slots = Vec::new();
        for slot in query.constraints.constrained_slots() {
            if let Some((lo, hi)) = numeric_hull(&query.constraints, slot) {
                let sym = self.intern(slot);
                self.by_slot.entry(sym).or_default().insert(id, lo, hi);
                slots.push(sym);
            }
        }
        if !slots.is_empty() {
            self.slots_of.insert(id, slots);
        }
    }

    /// Picks the most selective dimension the query *requires*: agent
    /// name, then classes (hierarchy-expanded, requires an ontology),
    /// then capabilities (taxonomy-expanded), then the bare ontology,
    /// then a conversation type; with no required dimension the
    /// subscription can be affected by any mutation (catch-all).
    fn choose_bucket(&mut self, query: &ServiceQuery, repo: &Repository) -> BucketRef {
        if let Some(name) = &query.agent_name {
            let s = self.intern(name);
            return BucketRef::AgentName(s);
        }
        if let (Some(onto), Some(class)) = (&query.ontology, query.classes.iter().next()) {
            // One representative class suffices: a matching advertisement
            // must cover *every* requested class, so probing with any
            // single class's expansion finds it. Expand through ancestors
            // (full coverage) and descendants (partial contribution),
            // exactly like candidate narrowing.
            let mut names: BTreeSet<String> = BTreeSet::from([class.clone()]);
            if let Some(o) = repo.ontology(onto) {
                let h = o.hierarchy();
                names.extend(h.ancestors(class));
                names.extend(h.descendants(class));
            }
            let syms = names.iter().map(|c| self.intern_pair(onto, c)).collect();
            return BucketRef::Classes(syms);
        }
        if let Some(cap) = query.capabilities.iter().next() {
            // An advertisement covers a requested capability by advertising
            // it or an ancestor of it in the taxonomy.
            let mut names: BTreeSet<String> = BTreeSet::from([cap.as_str().to_string()]);
            names.extend(repo.capability_taxonomy().ancestors(cap.as_str()));
            let syms = names.iter().map(|c| self.intern(c)).collect();
            return BucketRef::Capabilities(syms);
        }
        if let Some(onto) = &query.ontology {
            let s = self.intern(onto);
            return BucketRef::Ontology(s);
        }
        if let Some(conv) = query.conversations.iter().next() {
            let s = self.intern(&conv.to_string());
            return BucketRef::Conversation(s);
        }
        BucketRef::CatchAll
    }

    pub fn remove(&mut self, id: SubId) {
        if let Some(bucket) = self.buckets.remove(&id) {
            match bucket {
                BucketRef::AgentName(s) => prune(&mut self.by_agent_name, s, id),
                BucketRef::Classes(syms) => {
                    for s in syms {
                        prune(&mut self.by_class, s, id);
                    }
                }
                BucketRef::Capabilities(syms) => {
                    for s in syms {
                        prune(&mut self.by_capability, s, id);
                    }
                }
                BucketRef::Ontology(s) => prune(&mut self.by_ontology, s, id),
                BucketRef::Conversation(s) => prune(&mut self.by_conversation, s, id),
                BucketRef::CatchAll => {
                    self.catch_all.remove(&id);
                }
            }
        }
        if let Some(slots) = self.slots_of.remove(&id) {
            for s in slots {
                if let Some(tree) = self.by_slot.get_mut(&s) {
                    tree.remove(id);
                    if tree.is_empty() {
                        self.by_slot.remove(&s);
                    }
                }
            }
        }
    }

    /// The candidate set for a changed advertisement: every subscription
    /// whose match set could have changed when `old` was replaced by
    /// `new` (either side `None` for pure advertise/unadvertise).
    ///
    /// Sound over-approximation; the caller re-scores candidates and
    /// drops empty deltas.
    pub fn affected_by_change(
        &mut self,
        old: Option<&Advertisement>,
        new: Option<&Advertisement>,
    ) -> BTreeSet<SubId> {
        let mut out: BTreeSet<SubId> = self.catch_all.iter().copied().collect();
        for ad in [old, new].into_iter().flatten() {
            self.collect_for_ad(ad, &mut out);
        }
        out
    }

    fn collect_for_ad(&mut self, ad: &Advertisement, out: &mut BTreeSet<SubId>) {
        let mut candidates: HashSet<SubId> = HashSet::new();
        if let Some(s) = self.lookup(&ad.location.name) {
            if let Some(b) = self.by_agent_name.get(&s) {
                candidates.extend(b.iter().copied());
            }
        }
        for content in &ad.semantic.content {
            if let Some(s) = self.lookup(&content.ontology) {
                if let Some(b) = self.by_ontology.get(&s) {
                    candidates.extend(b.iter().copied());
                }
            }
            for class in &content.classes {
                if let Some(s) = self.lookup_pair(&content.ontology, class) {
                    if let Some(b) = self.by_class.get(&s) {
                        candidates.extend(b.iter().copied());
                    }
                }
            }
        }
        for cap in &ad.semantic.capabilities {
            if let Some(s) = self.lookup(cap.as_str()) {
                if let Some(b) = self.by_capability.get(&s) {
                    candidates.extend(b.iter().copied());
                }
            }
        }
        for conv in &ad.semantic.conversations {
            if let Some(s) = self.lookup(&conv.to_string()) {
                if let Some(b) = self.by_conversation.get(&s) {
                    candidates.extend(b.iter().copied());
                }
            }
        }
        // Interval refinement: a subscription constraining a slot to a
        // window disjoint from the advertisement's own restriction on
        // that slot cannot match it (constraint overlap is required for
        // any score), so it cannot be affected by this version.
        for content in &ad.semantic.content {
            for slot in content.constraints.constrained_slots() {
                let Some(sym) = self.lookup(slot) else { continue };
                let Some((lo, hi)) = numeric_hull(&content.constraints, slot) else { continue };
                let Some(tree) = self.by_slot.get_mut(&sym) else { continue };
                for id in tree.disjoint(lo, hi) {
                    candidates.remove(&id);
                }
            }
        }
        out.extend(candidates);
    }

    /// Every registered subscription id, for the conservative fallbacks
    /// (derived rules, global mutations) and the naive oracle.
    pub fn all(&self) -> BTreeSet<SubId> {
        self.buckets.keys().copied().collect()
    }
}

fn prune(map: &mut HashMap<u32, BTreeSet<SubId>>, key: u32, id: SubId) {
    if let Some(set) = map.get_mut(&key) {
        set.remove(&id);
        if set.is_empty() {
            map.remove(&key);
        }
    }
}

/// The broker-level registry: standing subscriptions plus the index, with
/// a switch to fall back to the naive all-subscriptions oracle (used by
/// the parity suite and the benchmark baseline).
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    entries: HashMap<SubId, StandingSubscription>,
    index: SubscriptionIndex,
    next_id: SubId,
    /// `false` disables the index: every event affects every subscription.
    pub use_index: bool,
}

impl SubscriptionRegistry {
    pub fn new(use_index: bool) -> Self {
        SubscriptionRegistry { use_index, ..SubscriptionRegistry::default() }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The id the next [`register`](Self::register) call will assign (used
    /// to mint an external `sub-N` key before registering).
    pub fn next_key(&self) -> SubId {
        self.next_id + 1
    }

    /// Registers a standing subscription and returns its internal id.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        sub_key: String,
        subscriber: String,
        trace: Option<String>,
        query: ServiceQuery,
        last: Arc<Vec<MatchResult>>,
        repo: &Repository,
    ) -> SubId {
        self.next_id += 1;
        let id = self.next_id;
        self.index.insert(id, &query, repo);
        self.entries
            .insert(id, StandingSubscription { id, sub_key, subscriber, trace, query, last });
        id
    }

    pub fn remove(&mut self, id: SubId) -> Option<StandingSubscription> {
        self.index.remove(id);
        self.entries.remove(&id)
    }

    pub fn entry(&self, id: SubId) -> Option<&StandingSubscription> {
        self.entries.get(&id)
    }

    /// Every registered subscription id, ascending (deterministic order
    /// for full re-evaluation sweeps).
    pub fn ids(&self) -> BTreeSet<SubId> {
        self.entries.keys().copied().collect()
    }

    /// Looks up a subscription by its external key and subscriber (the
    /// unsubscribe path: only the registering subscriber may cancel).
    pub fn find(&self, sub_key: &str, subscriber: &str) -> Option<SubId> {
        self.entries
            .values()
            .find(|s| s.sub_key == sub_key && s.subscriber == subscriber)
            .map(|s| s.id)
    }

    /// Replaces a subscription's last-delivered result set.
    pub fn update_last(&mut self, id: SubId, last: Arc<Vec<MatchResult>>) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.last = last;
        }
    }

    /// The subscriptions to re-score for an advertisement change. Indexed
    /// when sound; otherwise (naive mode, derived rules registered) every
    /// subscription.
    pub fn affected(
        &mut self,
        old: Option<&Advertisement>,
        new: Option<&Advertisement>,
        repo: &Repository,
    ) -> BTreeSet<SubId> {
        if !self.use_index || repo.has_derived_rules() {
            return self.index.all();
        }
        self.index.affected_by_change(old, new)
    }
}

/// The notification delta between two result sets: `matched` carries every
/// result row that is new or whose score/address changed, `unmatched` the
/// names that left the set. Both paths (indexed and naive) feed the same
/// diff, so parity reduces to result-set equality.
pub fn result_delta(old: &[MatchResult], new: &[MatchResult]) -> (Vec<MatchResult>, Vec<String>) {
    let old_by_name: HashMap<&str, &MatchResult> =
        old.iter().map(|m| (m.name.as_str(), m)).collect();
    let new_names: HashSet<&str> = new.iter().map(|m| m.name.as_str()).collect();
    let matched = new
        .iter()
        .filter(|m| old_by_name.get(m.name.as_str()).map_or(true, |o| *o != *m))
        .cloned()
        .collect();
    let unmatched = old
        .iter()
        .filter(|m| !new_names.contains(m.name.as_str()))
        .map(|m| m.name.clone())
        .collect();
    (matched, unmatched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        paper_class_ontology, AgentLocation, AgentType, Capability, OntologyContent, SemanticInfo,
    };

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        r
    }

    fn ad(name: &str, classes: &[&str], constraints: Option<Conjunction>) -> Advertisement {
        let mut content =
            OntologyContent::new("paper-classes").with_classes(classes.iter().copied());
        if let Some(c) = constraints {
            content = content.with_constraints(c);
        }
        Advertisement::new(AgentLocation::new(
            name,
            format!("tcp://{name}.mcc.com:4000"),
            AgentType::Resource,
        ))
        .with_semantic(SemanticInfo::default().with_content(content))
    }

    fn class_query(class: &str) -> ServiceQuery {
        ServiceQuery::any().with_ontology("paper-classes").with_classes([class])
    }

    #[test]
    fn class_buckets_prune_unrelated_subscriptions() {
        let repo = repo();
        let mut idx = SubscriptionIndex::new();
        idx.insert(1, &class_query("C1"), &repo);
        idx.insert(2, &class_query("C2"), &repo);
        let hit = idx.affected_by_change(None, Some(&ad("ra", &["C1"], None)));
        assert!(hit.contains(&1));
        assert!(!hit.contains(&2));
        // Both old and new versions probe: moving an agent from C2 to C1
        // affects both subscriptions.
        let hit =
            idx.affected_by_change(Some(&ad("ra", &["C2"], None)), Some(&ad("ra", &["C1"], None)));
        assert!(hit.contains(&1) && hit.contains(&2));
    }

    #[test]
    fn class_expansion_follows_the_hierarchy() {
        let repo = repo();
        let o = paper_class_ontology();
        let h = o.hierarchy();
        // Find a class with a parent so the expansion is non-trivial.
        let child = o
            .class_names()
            .find(|c| !h.ancestors(c).is_empty())
            .expect("paper ontology has a subclass");
        let parent = &h.ancestors(child)[0];
        let mut idx = SubscriptionIndex::new();
        idx.insert(7, &class_query(child), &repo);
        // An agent advertising only the ancestor still affects the child
        // subscription (full-coverage matches).
        let hit = idx.affected_by_change(None, Some(&ad("ra", &[parent], None)));
        assert!(hit.contains(&7), "ancestor advertisement must hit the subscription");
    }

    #[test]
    fn catch_all_subscriptions_always_probe() {
        let repo = repo();
        let mut idx = SubscriptionIndex::new();
        idx.insert(1, &ServiceQuery::for_agent_type(AgentType::Resource), &repo);
        let hit = idx.affected_by_change(None, Some(&ad("ra", &["C1"], None)));
        assert!(hit.contains(&1));
    }

    #[test]
    fn agent_name_bucket_is_exact() {
        let repo = repo();
        let mut idx = SubscriptionIndex::new();
        let mut q = ServiceQuery::any();
        q.agent_name = Some("ra-1".into());
        idx.insert(1, &q, &repo);
        assert!(idx.affected_by_change(None, Some(&ad("ra-1", &["C1"], None))).contains(&1));
        assert!(idx.affected_by_change(None, Some(&ad("ra-2", &["C1"], None))).is_empty());
    }

    #[test]
    fn capability_bucket_expands_ancestors() {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        let mut idx = SubscriptionIndex::new();
        let q = ServiceQuery::any().with_capability(Capability::subscription());
        idx.insert(1, &q, &r);
        let mut a = ad("ra", &[], None);
        a.semantic.capabilities.insert(Capability::subscription());
        assert!(idx.affected_by_change(None, Some(&a)).contains(&1));
        let b = ad("rb", &[], None);
        assert!(idx.affected_by_change(None, Some(&b)).is_empty());
    }

    #[test]
    fn interval_trees_rule_out_disjoint_constraint_windows() {
        let repo = repo();
        let mut idx = SubscriptionIndex::new();
        let q_lo = class_query("C1").with_constraints(Conjunction::from_predicates(vec![
            Predicate::between("C1.a", 0, 10),
        ]));
        let q_hi = class_query("C1").with_constraints(Conjunction::from_predicates(vec![
            Predicate::between("C1.a", 100, 110),
        ]));
        idx.insert(1, &q_lo, &repo);
        idx.insert(2, &q_hi, &repo);
        let narrow = ad(
            "ra",
            &["C1"],
            Some(Conjunction::from_predicates(vec![Predicate::between("C1.a", 5, 8)])),
        );
        let hit = idx.affected_by_change(None, Some(&narrow));
        assert!(hit.contains(&1), "overlapping window stays a candidate");
        assert!(!hit.contains(&2), "disjoint window is pruned");
        // An advertisement without a restriction on the slot can match
        // either subscription: nothing is pruned.
        let open = ad("rb", &["C1"], None);
        let hit = idx.affected_by_change(None, Some(&open));
        assert!(hit.contains(&1) && hit.contains(&2));
    }

    #[test]
    fn interval_tree_overlap_matches_linear_scan() {
        // Deterministic pseudo-random windows; the tree must agree with a
        // brute-force overlap check for every probe.
        let mut tree = SlotIntervals::default();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut windows = Vec::new();
        for id in 0..200u64 {
            let lo = (next() % 1000) as f64;
            let hi = lo + (next() % 50) as f64;
            tree.insert(id, lo, hi);
            windows.push((id, lo, hi));
        }
        for _ in 0..50 {
            let qlo = (next() % 1000) as f64;
            let qhi = qlo + (next() % 80) as f64;
            let mut got = HashSet::new();
            tree.overlapping(qlo, qhi, &mut got);
            let want: HashSet<SubId> = windows
                .iter()
                .filter(|(_, lo, hi)| *lo <= qhi && *hi >= qlo)
                .map(|(id, _, _)| *id)
                .collect();
            assert_eq!(got, want, "probe [{qlo}, {qhi}]");
        }
        // Removal keeps the structure consistent.
        tree.remove(0);
        let mut got = HashSet::new();
        tree.overlapping(0.0, 2000.0, &mut got);
        assert_eq!(got.len(), 199);
    }

    #[test]
    fn removal_unregisters_every_bucket() {
        let repo = repo();
        let mut idx = SubscriptionIndex::new();
        let q = class_query("C1").with_constraints(Conjunction::from_predicates(vec![
            Predicate::between("C1.a", 0, 10),
        ]));
        idx.insert(1, &q, &repo);
        assert_eq!(idx.len(), 1);
        idx.remove(1);
        assert_eq!(idx.len(), 0);
        assert!(idx.affected_by_change(None, Some(&ad("ra", &["C1"], None))).is_empty());
    }

    #[test]
    fn registry_falls_back_to_all_under_derived_rules() {
        let mut r = repo();
        let mut reg = SubscriptionRegistry::new(true);
        let id = reg.register(
            "s1".into(),
            "watcher".into(),
            None,
            class_query("C1"),
            Arc::new(Vec::new()),
            &r,
        );
        let other = reg.affected(None, Some(&ad("ra", &["C2"], None)), &r);
        assert!(!other.contains(&id), "index prunes the unrelated class");
        r.register_derived_rules("cap(A, polling) :- cap(A, subscription).").expect("rules admit");
        let all = reg.affected(None, Some(&ad("ra", &["C2"], None)), &r);
        assert!(all.contains(&id), "derived rules disable pruning");
    }

    #[test]
    fn delta_reports_entries_leavers_and_score_changes() {
        let m = |name: &str, score: u32| MatchResult {
            name: name.into(),
            score,
            ..MatchResult::default()
        };
        let old = vec![m("a", 3), m("b", 2)];
        let new = vec![m("a", 3), m("c", 4)];
        let (matched, unmatched) = result_delta(&old, &new);
        assert_eq!(matched.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(unmatched, vec!["b"]);
        // A score change re-announces the entry.
        let bumped = vec![m("a", 5), m("b", 2)];
        let (matched, unmatched) = result_delta(&old, &bumped);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].name, "a");
        assert!(unmatched.is_empty());
        // Identical sets produce an empty delta (no notification).
        let (matched, unmatched) = result_delta(&old, &old.clone());
        assert!(matched.is_empty() && unmatched.is_empty());
    }
}
