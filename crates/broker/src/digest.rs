//! Semantic routing digests for inter-broker search pruning.
//!
//! Each broker summarizes its repository as a [`CapabilityDigest`]: a
//! Bloom filter over interned (dimension, symbol) pairs expanded through
//! the class hierarchy and capability taxonomy — the same expansion
//! [`SubscriptionIndex`](crate::SubscriptionIndex) applies when bucketing
//! standing queries — plus per-slot numeric constraint hulls. Peers
//! exchange digests piggybacked on broker advertisements and delta
//! re-advertisements (see `broker_agent`), and consult them before
//! forwarding a search: a peer whose digest *cannot* match the query is
//! never contacted.
//!
//! Soundness contract: [`CapabilityDigest::can_match`] is a sound
//! over-approximation of the peer's `Matchmaker::candidates` narrowing —
//! it may return `true` for a query the peer cannot actually serve (one
//! wasted forward, counted as a digest false positive), but it never
//! returns `false` for a query the peer would answer. Recall through the
//! digest-pruned search is therefore identical to broad fan-out, which
//! the parity tests assert byte-for-byte.
//!
//! The expansion mirrors candidate narrowing exactly:
//!
//! * a query class `q` reaches an advertisement holding class `a` iff
//!   `a ∈ {q} ∪ ancestors(q) ∪ descendants(q)`; because ancestry is
//!   symmetric this equals `q ∈ {a} ∪ ancestors(a) ∪ descendants(a)`, so
//!   the digest inserts each advertised class *with its expansion* and
//!   probes with the bare query class;
//! * a query capability `q` is provided by an agent advertising `q` or an
//!   ancestor of `q`, so the digest inserts each advertised capability
//!   with its *descendants* and probes with the bare query capability;
//! * agent names, agent types, languages, and conversation types are
//!   matched verbatim, so they are inserted and probed exactly;
//! * a slot hull is recorded only when **every** advertisement constrains
//!   the slot in every content record — otherwise some agent is open on
//!   the slot and could match any window, so the dimension must not
//!   prune.
//!
//! When the repository has derived inference rules registered (or the
//! broker runs an ablated matchmaker), class and capability membership
//! can be invented outside the index's view; the digest then carries
//! `unprunable = true` and peers never prune that broker — exactly the
//! fallback `Matchmaker::candidates` itself takes.

use crate::repository::Repository;
use crate::sub_index::numeric_hull;
use infosleuth_ontology::{Advertisement, ServiceQuery};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Number of Bloom probe positions per symbol.
const BLOOM_K: u32 = 4;
/// Bits-per-symbol target; with k = 4 this keeps the per-probe
/// false-positive rate well under 1% at any population (m grows with
/// the symbol count), so routing fp-rates are dominated by the honest
/// hull dimension, not filter collisions.
const BLOOM_BITS_PER_SYMBOL: usize = 14;
/// Floor on the filter size so tiny repositories still serialize to a
/// stable, honestly-sized filter.
const BLOOM_MIN_BITS: usize = 1024;

/// FNV-1a 64-bit over a dimension tag and a symbol string. Collisions
/// only ever *add* false positives, which the soundness contract allows.
fn symbol(tag: u8, text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(tag);
    eat(0x1f);
    for b in text.as_bytes() {
        eat(*b);
    }
    h
}

/// Two-part symbol for (ontology, class) pairs, separated like
/// `SubscriptionIndex::intern_pair`.
fn class_symbol(ontology: &str, class: &str) -> u64 {
    symbol(b'c', &format!("{ontology}\u{1}{class}"))
}

/// splitmix64 finalizer: decorrelates the FNV symbol into the two Bloom
/// probe seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The dimension tags. Probes use the same tags, so dimensions never
/// alias each other inside the filter.
const TAG_NAME: u8 = b'n';
const TAG_TYPE: u8 = b't';
const TAG_QUERY_LANG: u8 = b'q';
const TAG_COMM_LANG: u8 = b'l';
const TAG_CONVERSATION: u8 = b'v';
const TAG_CAPABILITY: u8 = b'p';
const TAG_ONTOLOGY: u8 = b'o';

/// A broker's routing digest: the Bloom filter, the complete-slot hulls,
/// and the repository epoch the summary was taken at.
#[derive(Debug, Clone, PartialEq)]
pub struct CapabilityDigest {
    /// The broker this digest summarizes.
    pub broker: String,
    /// Repository mutation epoch at snapshot time; peers use it for
    /// staleness detection on forwarded requests.
    pub epoch: u64,
    /// Advertisements summarized. Zero means the repository holds no
    /// agents at all — always prunable.
    pub ads: u64,
    /// Set when the repository cannot be soundly summarized (derived
    /// rules registered, or an ablated matchmaker): peers must forward.
    pub unprunable: bool,
    /// Bloom probe count.
    pub k: u32,
    /// The filter, `bits.len() * 64` bits wide.
    pub bits: Vec<u64>,
    /// Per-slot union hulls, present only for slots *every*
    /// advertisement constrains.
    pub slot_hulls: BTreeMap<String, (f64, f64)>,
}

impl CapabilityDigest {
    /// The digest of an empty repository: prunable, matches nothing.
    pub fn empty(broker: impl Into<String>) -> Self {
        CapabilityDigest {
            broker: broker.into(),
            epoch: 0,
            ads: 0,
            unprunable: false,
            k: BLOOM_K,
            bits: Vec::new(),
            slot_hulls: BTreeMap::new(),
        }
    }

    fn contains(&self, sym: u64) -> bool {
        let m = (self.bits.len() * 64) as u64;
        if m == 0 {
            return false;
        }
        let h1 = mix(sym);
        let h2 = mix(sym ^ 0x9e37_79b9_7f4a_7c15) | 1;
        for i in 0..u64::from(self.k.max(1)) {
            let idx = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            if self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Whether the summarized repository *could* hold a match for the
    /// query. Sound over-approximation: `false` proves no match exists
    /// on the peer; `true` may be a false positive.
    pub fn can_match(&self, query: &ServiceQuery) -> bool {
        if self.ads == 0 {
            return false;
        }
        if self.unprunable {
            return true;
        }
        if let Some(name) = &query.agent_name {
            if !self.contains(symbol(TAG_NAME, name)) {
                return false;
            }
        }
        if let Some(t) = &query.agent_type {
            if !self.contains(symbol(TAG_TYPE, &t.to_string())) {
                return false;
            }
        }
        if let Some(lang) = &query.query_language {
            if !self.contains(symbol(TAG_QUERY_LANG, lang)) {
                return false;
            }
        }
        if let Some(lang) = &query.communication_language {
            if !self.contains(symbol(TAG_COMM_LANG, lang)) {
                return false;
            }
        }
        for conv in &query.conversations {
            if !self.contains(symbol(TAG_CONVERSATION, &conv.to_string())) {
                return false;
            }
        }
        for cap in &query.capabilities {
            if !self.contains(symbol(TAG_CAPABILITY, cap.as_str())) {
                return false;
            }
        }
        if let Some(onto) = &query.ontology {
            if !self.contains(symbol(TAG_ONTOLOGY, onto)) {
                return false;
            }
            // Class pruning requires the ontology: without one the match
            // may come from any content record, which a Bloom filter
            // cannot enumerate.
            for class in &query.classes {
                if !self.contains(class_symbol(onto, class)) {
                    return false;
                }
            }
        }
        for slot in query.constraints.constrained_slots() {
            if let (Some((qlo, qhi)), Some((dlo, dhi))) =
                (numeric_hull(&query.constraints, slot), self.slot_hulls.get(slot))
            {
                if qhi < *dlo || qlo > *dhi {
                    return false;
                }
            }
        }
        true
    }

    /// The filter's fill ratio (set bits / total bits) — the bench
    /// reports it next to the measured false-positive rate.
    pub fn fill_ratio(&self) -> f64 {
        let m = self.bits.len() * 64;
        if m == 0 {
            return 0.0;
        }
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(ones) / m as f64
    }
}

/// One advertisement's contribution to the digest, kept so removal is
/// exact without re-reading the repository.
#[derive(Debug, Clone)]
struct Contribution {
    symbols: BTreeSet<u64>,
    /// Per-slot hull when *every* content record of the advertisement
    /// constrains the slot (and the advertisement has content at all).
    hulls: BTreeMap<String, (f64, f64)>,
}

/// Maintains a broker's digest incrementally: one refcounted symbol set,
/// updated per advertise/unadvertise delta, snapshotted on demand.
#[derive(Debug, Default)]
pub struct DigestBuilder {
    contributions: HashMap<String, Contribution>,
    refs: HashMap<u64, u32>,
}

impl DigestBuilder {
    pub fn new() -> Self {
        DigestBuilder::default()
    }

    /// Seeds the builder from a pre-populated repository (brokers may
    /// spawn over an existing repository).
    pub fn from_repo(repo: &Repository) -> Self {
        let mut b = DigestBuilder::new();
        for ad in repo.agents() {
            b.advertise(ad, repo);
        }
        b
    }

    /// Number of advertisements summarized.
    pub fn len(&self) -> usize {
        self.contributions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.contributions.is_empty()
    }

    /// Records (or replaces) an advertisement's contribution. `repo`
    /// supplies the class hierarchy and capability taxonomy for
    /// expansion — the same repository the matchmaker will narrow
    /// against, so expansion and narrowing agree.
    pub fn advertise(&mut self, ad: &Advertisement, repo: &Repository) {
        let name = ad.location.name.clone();
        self.unadvertise(&name);
        let mut symbols = BTreeSet::new();
        symbols.insert(symbol(TAG_NAME, &name));
        symbols.insert(symbol(TAG_TYPE, &ad.location.agent_type.to_string()));
        for lang in &ad.syntactic.query_languages {
            symbols.insert(symbol(TAG_QUERY_LANG, lang));
        }
        for lang in &ad.syntactic.communication_languages {
            symbols.insert(symbol(TAG_COMM_LANG, lang));
        }
        for conv in &ad.semantic.conversations {
            symbols.insert(symbol(TAG_CONVERSATION, &conv.to_string()));
        }
        for cap in &ad.semantic.capabilities {
            symbols.insert(symbol(TAG_CAPABILITY, cap.as_str()));
            for desc in repo.capability_taxonomy().descendants(cap.as_str()) {
                symbols.insert(symbol(TAG_CAPABILITY, &desc));
            }
        }
        // Slot hulls: a slot counts only when every content record
        // constrains it, with the ad's hull the union over records.
        let mut hulls: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for (i, content) in ad.semantic.content.iter().enumerate() {
            symbols.insert(symbol(TAG_ONTOLOGY, &content.ontology));
            for class in &content.classes {
                symbols.insert(class_symbol(&content.ontology, class));
                if let Some(o) = repo.ontology(&content.ontology) {
                    let h = o.hierarchy();
                    for rel in h.ancestors(class).into_iter().chain(h.descendants(class)) {
                        symbols.insert(class_symbol(&content.ontology, &rel));
                    }
                }
            }
            let mut record: BTreeMap<String, (f64, f64)> = BTreeMap::new();
            for slot in content.constraints.constrained_slots() {
                if let Some((lo, hi)) = numeric_hull(&content.constraints, slot) {
                    record.insert(slot.to_string(), (lo, hi));
                }
            }
            if i == 0 {
                hulls = record;
            } else {
                // Intersect the *slot sets*, union the windows.
                hulls.retain(|slot, _| record.contains_key(slot));
                for (slot, (lo, hi)) in record {
                    if let Some((alo, ahi)) = hulls.get_mut(&slot) {
                        *alo = alo.min(lo);
                        *ahi = ahi.max(hi);
                    }
                }
            }
        }
        if ad.semantic.content.is_empty() {
            hulls.clear();
        }
        for sym in &symbols {
            *self.refs.entry(*sym).or_insert(0) += 1;
        }
        self.contributions.insert(name, Contribution { symbols, hulls });
    }

    /// Removes an advertisement's contribution; returns whether it was
    /// present.
    pub fn unadvertise(&mut self, name: &str) -> bool {
        let Some(c) = self.contributions.remove(name) else { return false };
        for sym in &c.symbols {
            if let Some(n) = self.refs.get_mut(sym) {
                *n -= 1;
                if *n == 0 {
                    self.refs.remove(sym);
                }
            }
        }
        true
    }

    /// Snapshots the current state as an exchangeable digest.
    /// `semantics_default` is false when the broker runs an ablated
    /// matchmaker, which (like derived rules) makes pruning unsound.
    pub fn snapshot(
        &self,
        broker: &str,
        repo: &Repository,
        semantics_default: bool,
    ) -> CapabilityDigest {
        let unprunable = repo.has_derived_rules() || !semantics_default;
        let n = self.refs.len();
        let m_bits = (n * BLOOM_BITS_PER_SYMBOL).next_power_of_two().max(BLOOM_MIN_BITS);
        let mut bits = vec![0u64; m_bits / 64];
        for sym in self.refs.keys() {
            let h1 = mix(*sym);
            let h2 = mix(*sym ^ 0x9e37_79b9_7f4a_7c15) | 1;
            for i in 0..u64::from(BLOOM_K) {
                let idx = h1.wrapping_add(i.wrapping_mul(h2)) % m_bits as u64;
                bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
            }
        }
        // A slot prunes only when every advertisement constrains it.
        let total = self.contributions.len();
        let mut counts: BTreeMap<&str, (usize, f64, f64)> = BTreeMap::new();
        for c in self.contributions.values() {
            for (slot, (lo, hi)) in &c.hulls {
                let e =
                    counts.entry(slot.as_str()).or_insert((0, f64::INFINITY, f64::NEG_INFINITY));
                e.0 += 1;
                e.1 = e.1.min(*lo);
                e.2 = e.2.max(*hi);
            }
        }
        let slot_hulls = counts
            .into_iter()
            .filter(|(_, (n, _, _))| *n == total && total > 0)
            .map(|(slot, (_, lo, hi))| (slot.to_string(), (lo, hi)))
            .collect();
        CapabilityDigest {
            broker: broker.to_string(),
            epoch: repo.epoch(),
            ads: total as u64,
            unprunable,
            k: BLOOM_K,
            bits,
            slot_hulls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matchmaker;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        paper_class_ontology, AgentLocation, AgentType, Capability, ConversationType,
        OntologyContent, SemanticInfo, SyntacticInfo,
    };

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        r
    }

    fn resource(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    fn class_query(class: &str) -> ServiceQuery {
        ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes([class])
    }

    fn digest_of(repo: &Repository) -> CapabilityDigest {
        DigestBuilder::from_repo(repo).snapshot("b", repo, true)
    }

    #[test]
    fn empty_repository_is_always_prunable() {
        let r = repo();
        let d = digest_of(&r);
        assert_eq!(d.ads, 0);
        assert!(!d.can_match(&ServiceQuery::any()));
        assert!(!d.can_match(&class_query("C1")));
    }

    #[test]
    fn advertised_classes_probe_through_the_hierarchy() {
        let mut r = repo();
        r.advertise(resource("ra", &["C2"])).unwrap();
        let d = digest_of(&r);
        // Exact, ancestor (C2 serves subclasses), and descendant
        // (subclass holders contribute partially) queries all pass.
        assert!(d.can_match(&class_query("C2")));
        assert!(d.can_match(&class_query("C2a")));
        // An unrelated class prunes.
        assert!(!d.can_match(&class_query("C3")));
        // An unknown ontology prunes.
        assert!(!d.can_match(
            &ServiceQuery::for_agent_type(AgentType::Resource).with_ontology("healthcare")
        ));
    }

    #[test]
    fn capability_expansion_inserts_descendants() {
        let mut r = repo();
        let mut ad = resource("general", &["C1"]);
        ad.semantic.capabilities = [Capability::query_processing()].into_iter().collect();
        r.advertise(ad).unwrap();
        let d = digest_of(&r);
        // query-processing covers select (descendant): a select request
        // reaches the general agent.
        let q =
            ServiceQuery::for_agent_type(AgentType::Resource).with_capability(Capability::select());
        assert!(d.can_match(&q));
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_capability(Capability::data_mining());
        assert!(!d.can_match(&q));
    }

    #[test]
    fn slot_hulls_prune_only_when_every_ad_constrains() {
        let mut r = repo();
        let constrained = |name: &str, lo: i64, hi: i64| {
            let mut ad = resource(name, &["C1"]);
            ad.semantic.content =
                vec![OntologyContent::new("paper-classes").with_classes(["C1"]).with_constraints(
                    Conjunction::from_predicates(vec![Predicate::between("C1.a", lo, hi)]),
                )];
            ad
        };
        r.advertise(constrained("ra", 0, 10)).unwrap();
        r.advertise(constrained("rb", 20, 30)).unwrap();
        let d = digest_of(&r);
        let window = |lo: i64, hi: i64| {
            class_query("C1").with_constraints(Conjunction::from_predicates(vec![
                Predicate::between("C1.a", lo, hi),
            ]))
        };
        assert!(d.can_match(&window(5, 8)));
        assert!(!d.can_match(&window(50, 60)), "disjoint window prunes");
        // Add an agent open on the slot: the hull dimension must vanish.
        r.advertise(resource("rc", &["C1"])).unwrap();
        let d = digest_of(&r);
        assert!(d.can_match(&window(50, 60)), "open agent disables slot pruning");
    }

    #[test]
    fn derived_rules_make_the_digest_unprunable() {
        let mut r = repo();
        r.advertise(resource("ra", &["C1"])).unwrap();
        r.register_derived_rules("cap(A, polling) :- cap(A, subscription).").expect("rules admit");
        let d = digest_of(&r);
        assert!(d.unprunable);
        assert!(d.can_match(&class_query("C9-not-even-a-class")));
    }

    #[test]
    fn ablated_matchmaker_makes_the_digest_unprunable() {
        let mut r = repo();
        r.advertise(resource("ra", &["C1"])).unwrap();
        let d = DigestBuilder::from_repo(&r).snapshot("b", &r, false);
        assert!(d.unprunable);
        assert!(d.can_match(&class_query("C3")));
    }

    #[test]
    fn unadvertise_restores_prunability() {
        let mut r = repo();
        let mut b = DigestBuilder::new();
        r.advertise(resource("ra", &["C1"])).unwrap();
        r.advertise(resource("rb", &["C3"])).unwrap();
        for ad in r.agents() {
            b.advertise(ad, &r);
        }
        assert!(b.snapshot("b", &r, true).can_match(&class_query("C3")));
        assert!(b.unadvertise("rb"));
        assert!(!b.unadvertise("rb"), "second removal is a no-op");
        let d = b.snapshot("b", &r, true);
        assert!(d.can_match(&class_query("C1")), "remaining agent still matches");
        assert!(!d.can_match(&class_query("C3")), "removed agent's classes pruned");
    }

    #[test]
    fn replacing_an_advertisement_swaps_its_contribution() {
        let mut r = repo();
        let mut b = DigestBuilder::new();
        r.advertise(resource("ra", &["C1"])).unwrap();
        b.advertise(r.advertisement_arc("ra").unwrap(), &r);
        b.advertise(&resource("ra", &["C3"]), &r);
        let d = b.snapshot("b", &r, true);
        assert_eq!(d.ads, 1);
        assert!(d.can_match(&class_query("C3")));
        assert!(!d.can_match(&class_query("C1")));
    }

    /// The soundness oracle: for every query in a broad probe set, a
    /// non-empty matchmaker result implies `can_match` — no false
    /// negatives, ever.
    #[test]
    fn can_match_never_contradicts_the_matchmaker() {
        let mut r = repo();
        r.advertise(resource("ra", &["C1", "C2"])).unwrap();
        r.advertise(resource("rb", &["C3"])).unwrap();
        let mut narrow = resource("rc", &["C2a"]);
        narrow.semantic.content =
            vec![OntologyContent::new("paper-classes").with_classes(["C2a"]).with_constraints(
                Conjunction::from_predicates(vec![Predicate::between("C2a.x", 40, 60)]),
            )];
        r.advertise(narrow).unwrap();
        let d = digest_of(&r);
        let mm = Matchmaker::default();
        let o = paper_class_ontology();
        let mut queries: Vec<ServiceQuery> = vec![
            ServiceQuery::any(),
            ServiceQuery::for_agent_type(AgentType::Resource),
            ServiceQuery::for_agent_type(AgentType::User),
            ServiceQuery::any().with_query_language("SQL 2.0"),
            ServiceQuery::any().with_query_language("OQL"),
            ServiceQuery::any().with_capability(Capability::select()),
            ServiceQuery::any().with_capability(Capability::data_mining()),
            ServiceQuery::any().with_conversation(ConversationType::AskAll),
            ServiceQuery::any().with_conversation(ConversationType::Subscribe),
            ServiceQuery::any().with_ontology("healthcare"),
        ];
        for class in o.class_names() {
            queries.push(class_query(class));
            queries.push(class_query(class).with_constraints(Conjunction::from_predicates(vec![
                Predicate::between(format!("{class}.x"), 0, 10),
            ])));
        }
        let mut q = ServiceQuery::any();
        q.agent_name = Some("ra".into());
        queries.push(q);
        let mut q = ServiceQuery::any();
        q.agent_name = Some("nobody".into());
        queries.push(q);
        for q in &queries {
            let matched = !mm.match_query_mut(&mut r, q).is_empty();
            if matched {
                assert!(d.can_match(q), "digest must not prune a matching query: {q:?}");
            }
        }
        // And the digest really prunes something in this set.
        assert!(queries.iter().any(|q| !d.can_match(q)));
    }

    #[test]
    fn fill_ratio_reflects_population() {
        let r = repo();
        let mut b = DigestBuilder::new();
        assert_eq!(b.snapshot("b", &r, true).fill_ratio(), 0.0);
        b.advertise(&resource("ra", &["C1"]), &r);
        let d = b.snapshot("b", &r, true);
        assert!(d.fill_ratio() > 0.0 && d.fill_ratio() < 0.5);
    }
}
