//! Integer-keyed projections of the derived predicates the matchmaker
//! probes during scoring.
//!
//! `score_agent`/`score_content` used to build a fresh `Term`/`Atom` per
//! (agent, capability) and (agent, ontology, class) probe and run it
//! through `Saturated::holds`. A [`ScoringIndex`] is built once per
//! saturated model instead: symbols are interned to `u32` ids and the
//! `provides/2`, `serves_class/3`, `contributes_class/3` tuples become
//! hash sets of id pairs/triples, so a probe is two interner lookups and
//! one hash-set membership test with zero allocation.
//!
//! Soundness relies on two properties of the standard rule base
//! ([`matchmaking_rules_text`](crate::matchmaking_rules_text)): every
//! derived tuple leads with the agent name, and an agent's derived facts
//! depend only on that agent's EDB facts plus the global taxonomy facts.
//! [`refresh_agent`](ScoringIndex::refresh_agent) therefore mirrors a
//! delta-saturation patch exactly by replacing one agent's rows. When
//! user-registered derived rules are present that locality no longer
//! holds, and the repository disables the index (scoring falls back to
//! `Saturated::holds`, as the pruning index already does).

use infosleuth_ldl::{Const, Database, Saturated};
use std::collections::{HashMap, HashSet};

/// The three derived predicates scoring probes (§2.1 subsumption).
const PROVIDES: &str = "provides";
const SERVES_CLASS: &str = "serves_class";
const CONTRIBUTES_CLASS: &str = "contributes_class";

#[derive(Debug, Default, Clone)]
pub struct ScoringIndex {
    symbols: HashMap<String, u32>,
    provides: HashSet<(u32, u32)>,
    serves_class: HashSet<(u32, u32, u32)>,
    contributes_class: HashSet<(u32, u32, u32)>,
}

impl ScoringIndex {
    /// Builds the full projection from a saturated model.
    pub fn build(model: &Saturated) -> ScoringIndex {
        let mut index = ScoringIndex::default();
        for tuple in model.db().tuples(PROVIDES) {
            if let Some(pair) = index.intern_pair(tuple) {
                index.provides.insert(pair);
            }
        }
        for tuple in model.db().tuples(SERVES_CLASS) {
            if let Some(triple) = index.intern_triple(tuple) {
                index.serves_class.insert(triple);
            }
        }
        for tuple in model.db().tuples(CONTRIBUTES_CLASS) {
            if let Some(triple) = index.intern_triple(tuple) {
                index.contributes_class.insert(triple);
            }
        }
        index
    }

    /// Replaces one agent's rows from a freshly patched model — the
    /// incremental companion to a `Repository` delta-saturation patch.
    pub fn refresh_agent(&mut self, model: &Saturated, agent: &str) {
        if let Some(&id) = self.symbols.get(agent) {
            self.provides.retain(|&(a, _)| a != id);
            self.serves_class.retain(|&(a, _, _)| a != id);
            self.contributes_class.retain(|&(a, _, _)| a != id);
        }
        let key = Const::sym(agent);
        for tuple in model.db().tuples_with_first(PROVIDES, &key) {
            if let Some(pair) = self.intern_pair(tuple) {
                self.provides.insert(pair);
            }
        }
        for tuple in model.db().tuples_with_first(SERVES_CLASS, &key) {
            if let Some(triple) = self.intern_triple(tuple) {
                self.serves_class.insert(triple);
            }
        }
        for tuple in model.db().tuples_with_first(CONTRIBUTES_CLASS, &key) {
            if let Some(triple) = self.intern_triple(tuple) {
                self.contributes_class.insert(triple);
            }
        }
    }

    /// `provides(agent, capability)` — two interner lookups and a hash
    /// probe; no allocation.
    pub fn provides(&self, agent: &str, capability: &str) -> bool {
        match (self.symbols.get(agent), self.symbols.get(capability)) {
            (Some(&a), Some(&c)) => self.provides.contains(&(a, c)),
            _ => false,
        }
    }

    /// `serves_class(agent, ontology, class)`.
    pub fn serves_class(&self, agent: &str, ontology: &str, class: &str) -> bool {
        match (self.symbols.get(agent), self.symbols.get(ontology), self.symbols.get(class)) {
            (Some(&a), Some(&o), Some(&c)) => self.serves_class.contains(&(a, o, c)),
            _ => false,
        }
    }

    /// `contributes_class(agent, ontology, class)`.
    pub fn contributes_class(&self, agent: &str, ontology: &str, class: &str) -> bool {
        match (self.symbols.get(agent), self.symbols.get(ontology), self.symbols.get(class)) {
            (Some(&a), Some(&o), Some(&c)) => self.contributes_class.contains(&(a, o, c)),
            _ => false,
        }
    }

    /// Total number of indexed derived tuples.
    pub fn len(&self) -> usize {
        self.provides.len() + self.serves_class.len() + self.contributes_class.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn intern(&mut self, c: &Const) -> Option<u32> {
        let text = c.as_sym()?;
        if let Some(&id) = self.symbols.get(text) {
            return Some(id);
        }
        let id = u32::try_from(self.symbols.len()).expect("fewer than 2^32 symbols"); // lint: allow-unwrap
        self.symbols.insert(text.to_string(), id);
        Some(id)
    }

    fn intern_pair(&mut self, tuple: &[Const]) -> Option<(u32, u32)> {
        match tuple {
            [a, b] => Some((self.intern(a)?, self.intern(b)?)),
            _ => None,
        }
    }

    fn intern_triple(&mut self, tuple: &[Const]) -> Option<(u32, u32, u32)> {
        match tuple {
            [a, b, c] => Some((self.intern(a)?, self.intern(b)?, self.intern(c)?)),
            _ => None,
        }
    }

    /// Structural equality against a model's derived tuples — test support
    /// for the parity suite (the index must mirror the model exactly).
    #[doc(hidden)]
    pub fn mirrors(&self, model: &Saturated) -> bool {
        let db: &Database = model.db();
        let count = |pred: &str| db.tuples(pred).count();
        if self.provides.len() != count(PROVIDES)
            || self.serves_class.len() != count(SERVES_CLASS)
            || self.contributes_class.len() != count(CONTRIBUTES_CLASS)
        {
            return false;
        }
        let sym = |c: &Const| c.as_sym().unwrap_or_default().to_string();
        db.tuples(PROVIDES).all(|t| self.provides(&sym(&t[0]), &sym(&t[1])))
            && db
                .tuples(SERVES_CLASS)
                .all(|t| self.serves_class(&sym(&t[0]), &sym(&t[1]), &sym(&t[2])))
            && db
                .tuples(CONTRIBUTES_CLASS)
                .all(|t| self.contributes_class(&sym(&t[0]), &sym(&t[1]), &sym(&t[2])))
    }
}
