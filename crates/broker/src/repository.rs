//! The broker repository (Figures 3–4).
//!
//! "One of the primary jobs of a broker is to maintain a repository
//! containing current and correct information about operational agents and
//! the services they can provide." Advertisements are validated on receipt
//! ("the broker validates and translates the advertisement into a format
//! that its reasoning engine can understand and asserts it in its
//! repository") and compiled into LDL facts on demand.

use crate::facts::{compile_facts, matchmaking_program_with};
use infosleuth_agent::AgentAddress;
use infosleuth_ldl::{parse_rules, LdlParseError, Rule, Saturated};
use infosleuth_ontology::{
    standard_capability_taxonomy, Advertisement, BrokerAdvertisement, Ontology, Taxonomy,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Validation errors for incoming advertisements.
#[derive(Debug, Clone, PartialEq)]
pub enum RepositoryError {
    EmptyAgentName,
    InvalidAddress { agent: String, address: String, reason: String },
    UnknownCapability { agent: String, capability: String },
    UnsatisfiableConstraints { agent: String, ontology: String },
    InvalidFragment { agent: String, class: String, reason: String },
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::EmptyAgentName => write!(f, "advertisement has empty agent name"),
            RepositoryError::InvalidAddress { agent, address, reason } => {
                write!(f, "agent '{agent}' has invalid address '{address}': {reason}")
            }
            RepositoryError::UnknownCapability { agent, capability } => {
                write!(f, "agent '{agent}' advertises unknown capability '{capability}'")
            }
            RepositoryError::UnsatisfiableConstraints { agent, ontology } => {
                write!(f, "agent '{agent}' advertises unsatisfiable constraints for ontology '{ontology}'")
            }
            RepositoryError::InvalidFragment { agent, class, reason } => {
                write!(f, "agent '{agent}' advertises invalid fragment of class '{class}': {reason}")
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

/// One broker's knowledge base: agent advertisements, peer broker
/// advertisements, the capability taxonomy, and the domain ontologies the
/// broker can reason over. The compiled + saturated LDL model is cached and
/// invalidated on every mutation.
#[derive(Clone)]
pub struct Repository {
    agents: BTreeMap<String, Advertisement>,
    brokers: BTreeMap<String, BrokerAdvertisement>,
    capability_taxonomy: Taxonomy,
    ontologies: BTreeMap<String, Ontology>,
    /// Extra LDL rules defining derived concepts (§2.1), appended to the
    /// standard matchmaking rule base.
    derived_rules: Vec<Rule>,
    saturated: Option<Arc<Saturated>>,
}

impl Repository {
    /// A repository reasoning over the standard capability taxonomy.
    pub fn new() -> Self {
        Self::with_capability_taxonomy(standard_capability_taxonomy())
    }

    pub fn with_capability_taxonomy(capability_taxonomy: Taxonomy) -> Self {
        Repository {
            agents: BTreeMap::new(),
            brokers: BTreeMap::new(),
            capability_taxonomy,
            ontologies: BTreeMap::new(),
            derived_rules: Vec::new(),
            saturated: None,
        }
    }

    /// Registers a domain ontology so the broker "can reason over
    /// class-subclasses and derived concepts relationships".
    pub fn register_ontology(&mut self, ontology: Ontology) {
        self.ontologies.insert(ontology.name.clone(), ontology);
        self.saturated = None;
    }

    pub fn ontology(&self, name: &str) -> Option<&Ontology> {
        self.ontologies.get(name)
    }

    pub fn ontologies(&self) -> impl Iterator<Item = &Ontology> {
        self.ontologies.values()
    }

    pub fn capability_taxonomy(&self) -> &Taxonomy {
        &self.capability_taxonomy
    }

    /// Registers LDL rules defining *derived concepts* over the fact schema
    /// (see [`crate::compile_facts`]) — e.g. a capability implied by
    /// another capability, or a class membership derived from advertised
    /// content:
    ///
    /// ```text
    /// cap(A, polling) :- cap(A, subscription).
    /// class(A, healthcare, senior_patient) :- class(A, healthcare, patient).
    /// ```
    ///
    /// The combined rule base must remain stratifiable; this is verified
    /// here, so a successful registration can never fail later saturation.
    pub fn register_derived_rules(&mut self, rules_text: &str) -> Result<(), LdlParseError> {
        let program = parse_rules(rules_text)?;
        let mut candidate = self.derived_rules.clone();
        candidate.extend(program.rules().iter().cloned());
        crate::facts::matchmaking_program_with(&candidate)?;
        self.derived_rules = candidate;
        self.saturated = None;
        Ok(())
    }

    /// Validates an advertisement against the repository's knowledge.
    pub fn validate(&self, ad: &Advertisement) -> Result<(), RepositoryError> {
        if ad.location.name.trim().is_empty() {
            return Err(RepositoryError::EmptyAgentName);
        }
        if let Err(e) = AgentAddress::parse(&ad.location.address) {
            return Err(RepositoryError::InvalidAddress {
                agent: ad.location.name.clone(),
                address: ad.location.address.clone(),
                reason: e.to_string(),
            });
        }
        for cap in &ad.semantic.capabilities {
            if !self.capability_taxonomy.contains(cap.as_str()) {
                return Err(RepositoryError::UnknownCapability {
                    agent: ad.location.name.clone(),
                    capability: cap.as_str().to_string(),
                });
            }
        }
        for content in &ad.semantic.content {
            if !content.constraints.is_satisfiable() {
                return Err(RepositoryError::UnsatisfiableConstraints {
                    agent: ad.location.name.clone(),
                    ontology: content.ontology.clone(),
                });
            }
            // Fragments can only be checked against known ontologies.
            if let Some(onto) = self.ontologies.get(&content.ontology) {
                for (class, frag) in &content.fragments {
                    if let Err(e) = onto.validate_fragment(class, frag) {
                        return Err(RepositoryError::InvalidFragment {
                            agent: ad.location.name.clone(),
                            class: class.clone(),
                            reason: e.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Stores an advertisement (insert or update — "when an agent's set of
    /// available services changes, the agent may update its advertisement").
    pub fn advertise(&mut self, ad: Advertisement) -> Result<(), RepositoryError> {
        self.validate(&ad)?;
        self.agents.insert(ad.location.name.clone(), ad);
        self.saturated = None;
        Ok(())
    }

    /// Removes an agent's advertisement ("when an agent goes offline, it
    /// first unregisters itself from the broker"; the broker also removes
    /// agents whose pings fail). Returns whether it was present.
    pub fn unadvertise(&mut self, agent: &str) -> bool {
        let removed = self.agents.remove(agent).is_some();
        if removed {
            self.saturated = None;
        }
        removed
    }

    /// Stores a peer broker's advertisement (Fig. 13 content).
    pub fn advertise_broker(&mut self, ad: BrokerAdvertisement) -> Result<(), RepositoryError> {
        self.validate(&ad.base)?;
        self.brokers.insert(ad.base.location.name.clone(), ad);
        // Broker advertisements do not participate in agent matchmaking
        // facts, so the saturation cache stays valid.
        Ok(())
    }

    pub fn unadvertise_broker(&mut self, broker: &str) -> bool {
        self.brokers.remove(broker).is_some()
    }

    pub fn advertisement(&self, agent: &str) -> Option<&Advertisement> {
        self.agents.get(agent)
    }

    pub fn contains_agent(&self, agent: &str) -> bool {
        self.agents.contains_key(agent)
    }

    pub fn agents(&self) -> impl Iterator<Item = &Advertisement> {
        self.agents.values()
    }

    pub fn agent_names(&self) -> impl Iterator<Item = &str> {
        self.agents.keys().map(String::as_str)
    }

    pub fn broker_advertisements(&self) -> impl Iterator<Item = &BrokerAdvertisement> {
        self.brokers.values()
    }

    pub fn peer_brokers(&self) -> Vec<String> {
        self.brokers.keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.agents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Total advertised bytes — what the simulator charges reasoning time
    /// against (1 second per megabyte of advertisements).
    pub fn approx_size_bytes(&self) -> usize {
        self.agents.values().map(Advertisement::approx_size_bytes).sum()
    }

    /// The saturated LDL model of this repository (compiled and cached; the
    /// cache is invalidated whenever the repository changes).
    pub fn saturated(&mut self) -> Arc<Saturated> {
        if let Some(s) = &self.saturated {
            return Arc::clone(s);
        }
        let facts = compile_facts(
            self.agents.values(),
            &self.capability_taxonomy,
            self.ontologies.values(),
        );
        let program = matchmaking_program_with(&self.derived_rules)
            .expect("combined base verified stratifiable at registration time");
        let model = program
            .saturate(&facts)
            .expect("matchmaking program is stratified");
        let arc = Arc::new(model);
        self.saturated = Some(Arc::clone(&arc));
        arc
    }
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

impl fmt::Debug for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Repository")
            .field("agents", &self.agents.keys().collect::<Vec<_>>())
            .field("brokers", &self.brokers.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        healthcare_ontology, AgentLocation, AgentType, Capability, Fragment, OntologyContent,
        SemanticInfo, SyntacticInfo,
    };

    fn valid_ad(name: &str) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1000", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_capabilities([Capability::relational_query_processing()]),
            )
    }

    #[test]
    fn advertise_unadvertise_round_trip() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        assert!(repo.contains_agent("ra1"));
        assert_eq!(repo.len(), 1);
        assert!(repo.unadvertise("ra1"));
        assert!(!repo.unadvertise("ra1"));
        assert!(repo.is_empty());
    }

    #[test]
    fn update_replaces_advertisement() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        let mut updated = valid_ad("ra1");
        updated.properties.estimated_response_time = Some(9.0);
        repo.advertise(updated).unwrap();
        assert_eq!(repo.len(), 1);
        assert_eq!(
            repo.advertisement("ra1").unwrap().properties.estimated_response_time,
            Some(9.0)
        );
    }

    #[test]
    fn validation_rejects_bad_advertisements() {
        let repo = Repository::new();
        let mut bad = valid_ad(" ");
        assert_eq!(repo.validate(&bad), Err(RepositoryError::EmptyAgentName));
        bad = valid_ad("x");
        bad.location.address = "nowhere".into();
        assert!(matches!(repo.validate(&bad), Err(RepositoryError::InvalidAddress { .. })));
        bad = valid_ad("x");
        bad.semantic.capabilities.insert(Capability::new("quantum-foo"));
        assert!(matches!(
            repo.validate(&bad),
            Err(RepositoryError::UnknownCapability { .. })
        ));
    }

    #[test]
    fn validation_rejects_unsatisfiable_constraints() {
        let repo = Repository::new();
        let mut bad = valid_ad("x");
        bad.semantic.content.push(
            OntologyContent::new("healthcare").with_constraints(Conjunction::from_predicates(
                vec![Predicate::gt("age", 10), Predicate::lt("age", 5)],
            )),
        );
        assert!(matches!(
            repo.validate(&bad),
            Err(RepositoryError::UnsatisfiableConstraints { .. })
        ));
    }

    #[test]
    fn validation_checks_fragments_against_known_ontologies() {
        let mut repo = Repository::new();
        repo.register_ontology(healthcare_ontology());
        let mut bad = valid_ad("x");
        bad.semantic.content.push(
            OntologyContent::new("healthcare")
                .with_fragment("patient", Fragment::vertical(["no_such_slot"])),
        );
        assert!(matches!(repo.validate(&bad), Err(RepositoryError::InvalidFragment { .. })));
        // Fragments of unknown ontologies pass through (the broker cannot
        // check what it does not know).
        let mut unknown = valid_ad("y");
        unknown.semantic.content.push(
            OntologyContent::new("mystery")
                .with_fragment("thing", Fragment::vertical(["whatever"])),
        );
        assert!(repo.validate(&unknown).is_ok());
    }

    #[test]
    fn saturation_cache_invalidated_on_change() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        let s1 = repo.saturated();
        let s1_again = repo.saturated();
        assert!(Arc::ptr_eq(&s1, &s1_again));
        repo.advertise(valid_ad("ra2")).unwrap();
        let s2 = repo.saturated();
        assert!(!Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn derived_concept_rules_extend_the_model() {
        let mut repo = Repository::new();
        // "An agent that accepts subscriptions can be polled."
        repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
        let mut ad = valid_ad("ra1");
        ad.semantic.capabilities.insert(infosleuth_ontology::Capability::subscription());
        repo.advertise(ad).unwrap();
        let model = repo.saturated();
        let goals = infosleuth_ldl::parse_query("provides(ra1, polling)").unwrap();
        assert!(model.holds(&goals));
        // Bad rules are rejected at registration.
        assert!(repo.register_derived_rules("p(X, Y) :- q(X).").is_err());
        // Rules that break stratification *in combination with the standard
        // base* are also rejected at registration.
        assert!(repo
            .register_derived_rules("cap(A, x) :- agent(A, resource), not provides(A, y).")
            .is_err());
    }

    #[test]
    fn broker_advertisements_are_separate() {
        let mut repo = Repository::new();
        let b = BrokerAdvertisement::new(
            Advertisement::new(AgentLocation::new("b2", "tcp://h:2000", AgentType::Broker)),
        );
        repo.advertise_broker(b).unwrap();
        assert_eq!(repo.peer_brokers(), vec!["b2"]);
        assert!(repo.is_empty()); // not an agent advertisement
        assert!(repo.unadvertise_broker("b2"));
        assert!(!repo.unadvertise_broker("b2"));
    }
}
