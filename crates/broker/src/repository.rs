//! The broker repository (Figures 3–4).
//!
//! "One of the primary jobs of a broker is to maintain a repository
//! containing current and correct information about operational agents and
//! the services they can provide." Advertisements are validated on receipt
//! ("the broker validates and translates the advertisement into a format
//! that its reasoning engine can understand and asserts it in its
//! repository") and compiled into LDL facts on demand.

use crate::facts::{
    compile_agent_facts, compile_global_facts, matchmaking_env, matchmaking_program_with,
};
use crate::scoring_index::ScoringIndex;
use infosleuth_agent::AgentAddress;
use infosleuth_analysis::{analyze_advertisement, analyze_ldl_source, AdContext, Report, Severity};
use infosleuth_ldl::{parse_rules, Database, LdlParseError, Program, Rule, Saturated};
use infosleuth_obs::{Histogram, Obs, StageTimer};
use infosleuth_ontology::{
    standard_capability_taxonomy, Advertisement, BrokerAdvertisement, Ontology, ServiceQuery,
    Taxonomy,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Validation errors for incoming advertisements.
#[derive(Debug, Clone, PartialEq)]
pub enum RepositoryError {
    EmptyAgentName,
    InvalidAddress {
        agent: String,
        address: String,
        reason: String,
    },
    UnknownCapability {
        agent: String,
        capability: String,
    },
    UnsatisfiableConstraints {
        agent: String,
        ontology: String,
    },
    InvalidFragment {
        agent: String,
        class: String,
        reason: String,
    },
    /// The static analyzer found error-severity diagnostics; the rendered
    /// report rides in the broker's `sorry` so the advertiser can see the
    /// exact `IS0xx` findings.
    Rejected {
        agent: String,
        report: String,
    },
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::EmptyAgentName => write!(f, "advertisement has empty agent name"),
            RepositoryError::InvalidAddress { agent, address, reason } => {
                write!(f, "agent '{agent}' has invalid address '{address}': {reason}")
            }
            RepositoryError::UnknownCapability { agent, capability } => {
                write!(f, "agent '{agent}' advertises unknown capability '{capability}'")
            }
            RepositoryError::UnsatisfiableConstraints { agent, ontology } => {
                write!(f, "agent '{agent}' advertises unsatisfiable constraints for ontology '{ontology}'")
            }
            RepositoryError::InvalidFragment { agent, class, reason } => {
                write!(
                    f,
                    "agent '{agent}' advertises invalid fragment of class '{class}': {reason}"
                )
            }
            RepositoryError::Rejected { agent, report } => {
                write!(f, "advertisement from '{agent}' rejected by analysis:\n{report}")
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

/// Counters for how the cached saturated model has been maintained —
/// useful for verifying that a churn workload actually stays on the
/// incremental path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Cached model patched in place by delta saturation / DRed.
    pub incremental_updates: u64,
    /// Model rebuilt from the full EDB (cold cache or invalidation).
    pub full_recomputes: u64,
    /// Incremental maintenance refused (negation in derived rules) and the
    /// cache was dropped instead.
    pub fallbacks: u64,
}

/// Inverted indexes over the advertisements, maintained on every
/// advertise/unadvertise so matchmaking can enumerate candidate agents
/// for a query dimension instead of scanning the whole repository.
#[derive(Clone, Default)]
struct AdIndex {
    by_capability: HashMap<String, BTreeSet<String>>,
    by_ontology: HashMap<String, BTreeSet<String>>,
    /// `(ontology, class)` → agents advertising that class.
    by_class: HashMap<(String, String), BTreeSet<String>>,
    by_conversation: HashMap<String, BTreeSet<String>>,
}

impl AdIndex {
    fn insert(&mut self, ad: &Advertisement) {
        let name = &ad.location.name;
        for c in &ad.semantic.capabilities {
            self.by_capability.entry(c.as_str().to_string()).or_default().insert(name.clone());
        }
        for c in &ad.semantic.conversations {
            self.by_conversation.entry(c.to_string()).or_default().insert(name.clone());
        }
        for content in &ad.semantic.content {
            self.by_ontology.entry(content.ontology.clone()).or_default().insert(name.clone());
            for class in &content.classes {
                self.by_class
                    .entry((content.ontology.clone(), class.clone()))
                    .or_default()
                    .insert(name.clone());
            }
        }
    }

    fn remove(&mut self, ad: &Advertisement) {
        let name = &ad.location.name;
        fn drop_from<K: std::hash::Hash + Eq>(
            map: &mut HashMap<K, BTreeSet<String>>,
            key: K,
            name: &str,
        ) {
            if let Some(set) = map.get_mut(&key) {
                set.remove(name);
                if set.is_empty() {
                    map.remove(&key);
                }
            }
        }
        for c in &ad.semantic.capabilities {
            drop_from(&mut self.by_capability, c.as_str().to_string(), name);
        }
        for c in &ad.semantic.conversations {
            drop_from(&mut self.by_conversation, c.to_string(), name);
        }
        for content in &ad.semantic.content {
            drop_from(&mut self.by_ontology, content.ontology.clone(), name);
            for class in &content.classes {
                drop_from(&mut self.by_class, (content.ontology.clone(), class.clone()), name);
            }
        }
    }
}

/// One broker's knowledge base: agent advertisements, peer broker
/// advertisements, the capability taxonomy, and the domain ontologies the
/// broker can reason over.
///
/// The compiled extensional database and its saturated LDL model are
/// cached; advertise/unadvertise patch both incrementally (delta
/// saturation for assertions, delete-and-rederive for retractions)
/// instead of invalidating the model, falling back to a full recompute
/// when the rule base makes incremental maintenance unsound.
#[derive(Clone)]
pub struct Repository {
    /// Advertisements are `Arc`ed so matchmaking can hand candidate sets
    /// to the persistent scoring pool as owned (`'static`) handles
    /// without cloning advertisement bodies.
    agents: BTreeMap<String, Arc<Advertisement>>,
    brokers: BTreeMap<String, BrokerAdvertisement>,
    capability_taxonomy: Taxonomy,
    ontologies: BTreeMap<String, Ontology>,
    /// Extra LDL rules defining derived concepts (§2.1), appended to the
    /// standard matchmaking rule base.
    derived_rules: Vec<Rule>,
    /// The compiled EDB, kept in sync with every mutation.
    edb: Database,
    /// The compiled rule program (standard base + derived rules).
    program: Option<Arc<Program>>,
    index: AdIndex,
    saturated: Option<Arc<Saturated>>,
    /// Integer-keyed projections of the derived predicates scoring probes,
    /// kept in lockstep with `saturated` (see [`ScoringIndex`]). `None`
    /// while disabled, while derived rules are registered (agent-local
    /// incremental refresh would be unsound), or until the next
    /// [`saturated`](Self::saturated) call rebuilds it.
    scoring: Option<Arc<ScoringIndex>>,
    /// Address of the `Saturated` the scoring index was built against, so
    /// a reader holding a stale model never scores through a newer index.
    scoring_model: usize,
    scoring_enabled: bool,
    incremental: bool,
    /// Bumped on every mutation that can change matchmaking results
    /// (advertise/unadvertise/ontology/rule registration); match caches
    /// tag entries with it and treat a mismatch as a miss.
    epoch: u64,
    stats: MaintenanceStats,
    /// Stage-timing hooks (see [`Repository::set_obs`]); `None` keeps the
    /// repository observability-free for standalone use and benchmarks.
    obs: Option<ObsHooks>,
}

/// The repository-side pipeline stages, pre-registered as
/// `broker_stage_seconds{broker,stage}` histograms. Cheap to clone
/// (everything inside is an `Arc`), which the mutation paths rely on to
/// open a stage timer without borrowing `self`.
#[derive(Clone)]
struct ObsHooks {
    obs: Arc<Obs>,
    analysis: Histogram,
    repository: Histogram,
    saturation: Histogram,
}

impl ObsHooks {
    fn stage(&self, name: &'static str) -> StageTimer {
        let histogram = match name {
            "analysis" => &self.analysis,
            "repository" => &self.repository,
            _ => &self.saturation,
        };
        self.obs.stage(histogram, name)
    }
}

impl Repository {
    /// A repository reasoning over the standard capability taxonomy.
    pub fn new() -> Self {
        Self::with_capability_taxonomy(standard_capability_taxonomy())
    }

    pub fn with_capability_taxonomy(capability_taxonomy: Taxonomy) -> Self {
        let edb = compile_global_facts(&capability_taxonomy, []);
        Repository {
            agents: BTreeMap::new(),
            brokers: BTreeMap::new(),
            capability_taxonomy,
            ontologies: BTreeMap::new(),
            derived_rules: Vec::new(),
            edb,
            program: None,
            index: AdIndex::default(),
            saturated: None,
            scoring: None,
            scoring_model: 0,
            scoring_enabled: true,
            incremental: true,
            epoch: 0,
            stats: MaintenanceStats::default(),
            obs: None,
        }
    }

    /// Attaches stage timing: advertise/unadvertise/saturation work is
    /// recorded as `broker_stage_seconds{broker,stage}` samples (stages
    /// `analysis`, `repository`, `saturation`) plus matching child spans
    /// under whatever span is active on the handling thread.
    pub fn set_obs(&mut self, obs: &Arc<Obs>, broker: &str) {
        let lat = |stage: &str| {
            obs.registry().latency("broker_stage_seconds", &[("broker", broker), ("stage", stage)])
        };
        self.obs = Some(ObsHooks {
            obs: Arc::clone(obs),
            analysis: lat("analysis"),
            repository: lat("repository"),
            saturation: lat("saturation"),
        });
    }

    /// Registers a domain ontology so the broker "can reason over
    /// class-subclasses and derived concepts relationships".
    pub fn register_ontology(&mut self, ontology: Ontology) {
        self.ontologies.insert(ontology.name.clone(), ontology);
        // Global hierarchy facts changed: rebuild the EDB and drop the
        // model (ontology registration is rare; churn is advertisements).
        self.rebuild_edb();
        self.saturated = None;
        self.scoring = None;
        self.epoch += 1;
    }

    fn rebuild_edb(&mut self) {
        let mut edb = compile_global_facts(&self.capability_taxonomy, self.ontologies.values());
        for ad in self.agents.values() {
            edb.merge(&compile_agent_facts(ad));
        }
        self.edb = edb;
    }

    pub fn ontology(&self, name: &str) -> Option<&Ontology> {
        self.ontologies.get(name)
    }

    pub fn ontologies(&self) -> impl Iterator<Item = &Ontology> {
        self.ontologies.values()
    }

    pub fn capability_taxonomy(&self) -> &Taxonomy {
        &self.capability_taxonomy
    }

    /// Registers LDL rules defining *derived concepts* over the fact schema
    /// (see [`crate::compile_facts`]) — e.g. a capability implied by
    /// another capability, or a class membership derived from advertised
    /// content:
    ///
    /// ```text
    /// cap(A, polling) :- cap(A, subscription).
    /// class(A, healthcare, senior_patient) :- class(A, healthcare, patient).
    /// ```
    ///
    /// The combined rule base must remain stratifiable; this is verified
    /// here, so a successful registration can never fail later saturation.
    pub fn register_derived_rules(&mut self, rules_text: &str) -> Result<(), LdlParseError> {
        // Static analysis first: unsafe rules, undefined predicates, arity
        // clashes with the fact schema, and negation cycles inside the
        // delta all come back as rendered IS0xx diagnostics.
        let report = self.analyze_derived_rules(rules_text);
        if report.has_errors() {
            let position = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
                .and_then(|d| d.span)
                .map(|s| s.start)
                .unwrap_or(0);
            return Err(LdlParseError { message: report.render_human(Some(rules_text)), position });
        }
        let program = parse_rules(rules_text)?;
        let mut candidate = self.derived_rules.clone();
        candidate.extend(program.rules().iter().cloned());
        // Backstop: the *combined* base must stay stratifiable — a delta
        // that is clean in isolation can still close a negative cycle
        // through the standard rules.
        crate::facts::matchmaking_program_with(&candidate)?;
        self.derived_rules = candidate;
        self.program = None;
        self.saturated = None;
        self.scoring = None;
        self.epoch += 1;
        Ok(())
    }

    /// Statically analyzes a derived-concept rule delta against the
    /// matchmaking fact schema, without registering it.
    pub fn analyze_derived_rules(&self, rules_text: &str) -> Report {
        analyze_ldl_source("derived-rules", rules_text, &matchmaking_env())
    }

    /// Statically analyzes an advertisement against everything this
    /// repository knows (taxonomy, registered ontologies, and any
    /// advertisement already registered for the same agent), without
    /// storing it.
    pub fn analyze(&self, ad: &Advertisement) -> Report {
        let mut ctx = AdContext::new()
            .with_taxonomy(&self.capability_taxonomy)
            .with_ontologies(self.ontologies.values());
        if let Some(old) = self.agents.get(&ad.location.name) {
            ctx = ctx.with_registered(old);
        }
        analyze_advertisement(ad, &ctx)
    }

    /// Statically analyzes a standing service query (a subscription)
    /// against the repository's taxonomy and registered ontologies,
    /// without registering it. `origin` names the would-be subscriber.
    pub fn analyze_subscription(&self, origin: &str, query: &ServiceQuery) -> Report {
        let ctx = AdContext::new()
            .with_taxonomy(&self.capability_taxonomy)
            .with_ontologies(self.ontologies.values());
        infosleuth_analysis::analyze_service_query(origin, query, &ctx)
    }

    /// Validates an advertisement against the repository's knowledge.
    pub fn validate(&self, ad: &Advertisement) -> Result<(), RepositoryError> {
        if ad.location.name.trim().is_empty() {
            return Err(RepositoryError::EmptyAgentName);
        }
        if let Err(e) = AgentAddress::parse(&ad.location.address) {
            return Err(RepositoryError::InvalidAddress {
                agent: ad.location.name.clone(),
                address: ad.location.address.clone(),
                reason: e.to_string(),
            });
        }
        for cap in &ad.semantic.capabilities {
            if !self.capability_taxonomy.contains(cap.as_str()) {
                return Err(RepositoryError::UnknownCapability {
                    agent: ad.location.name.clone(),
                    capability: cap.as_str().to_string(),
                });
            }
        }
        for content in &ad.semantic.content {
            if !content.constraints.is_satisfiable() {
                return Err(RepositoryError::UnsatisfiableConstraints {
                    agent: ad.location.name.clone(),
                    ontology: content.ontology.clone(),
                });
            }
            // Fragments can only be checked against known ontologies.
            if let Some(onto) = self.ontologies.get(&content.ontology) {
                for (class, frag) in &content.fragments {
                    if let Err(e) = onto.validate_fragment(class, frag) {
                        return Err(RepositoryError::InvalidFragment {
                            agent: ad.location.name.clone(),
                            class: class.clone(),
                            reason: e.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Stores an advertisement (insert or update — "when an agent's set of
    /// available services changes, the agent may update its advertisement").
    ///
    /// The cached saturated model is patched incrementally: the previous
    /// advertisement's facts (if any) are retracted via delete-and-rederive
    /// and the new ones propagated via delta saturation.
    pub fn advertise(&mut self, ad: Advertisement) -> Result<(), RepositoryError> {
        let hooks = self.obs.clone();
        {
            let _t = hooks.as_ref().map(|o| o.stage("analysis"));
            self.validate(&ad)?;
            // Deeper static analysis: classes/slots unknown to a registered
            // ontology and other error-severity findings reject the
            // advertisement with the rendered report; warnings (e.g. IS024
            // subsumption) never reject.
            let report = self.analyze(&ad);
            if report.has_errors() {
                return Err(RepositoryError::Rejected {
                    agent: ad.location.name.clone(),
                    report: report.render_human(None),
                });
            }
        }
        let mutation = hooks.as_ref().map(|o| o.stage("repository"));
        let ad = Arc::new(ad);
        let added = compile_agent_facts(&ad);
        let removed = match self.agents.insert(ad.location.name.clone(), Arc::clone(&ad)) {
            Some(old) => {
                self.index.remove(&old);
                let old_facts = compile_agent_facts(&old);
                self.edb.subtract(&old_facts);
                Some(old_facts)
            }
            None => None,
        };
        self.index.insert(&ad);
        self.edb.merge(&added);
        self.epoch += 1;
        drop(mutation);
        self.patch_model(removed.as_ref(), Some(&added), &ad.location.name);
        Ok(())
    }

    /// Removes an agent's advertisement ("when an agent goes offline, it
    /// first unregisters itself from the broker"; the broker also removes
    /// agents whose pings fail). Returns whether it was present.
    pub fn unadvertise(&mut self, agent: &str) -> bool {
        let hooks = self.obs.clone();
        match self.agents.remove(agent) {
            Some(old) => {
                let mutation = hooks.as_ref().map(|o| o.stage("repository"));
                self.index.remove(&old);
                let old_facts = compile_agent_facts(&old);
                self.edb.subtract(&old_facts);
                self.epoch += 1;
                drop(mutation);
                self.patch_model(Some(&old_facts), None, agent);
                true
            }
            None => false,
        }
    }

    /// Applies a fact delta to the cached saturated model. With no cached
    /// model there is nothing to patch — the next [`saturated`](Self::saturated)
    /// call recomputes from the (already updated) EDB. When incremental
    /// maintenance is disabled or refused (negation in derived rules), the
    /// cache is dropped instead.
    fn patch_model(&mut self, removed: Option<&Database>, added: Option<&Database>, agent: &str) {
        let hooks = self.obs.clone();
        let _t = hooks.as_ref().map(|o| o.stage("saturation"));
        let Some(mut cached) = self.saturated.take() else {
            // No model to patch, so no index either; the next `saturated`
            // call rebuilds both.
            self.scoring = None;
            return;
        };
        if !self.incremental {
            self.scoring = None;
            return;
        }
        let program = self.program();
        if program.has_negation() {
            // The in-place patches would refuse anyway; drop the cache so
            // the next read resaturates, and record the fallback.
            self.stats.fallbacks += 1;
            self.scoring = None;
            return;
        }
        // Patch in place when no other handle holds the model (the common
        // case — readers drop their `Arc` after matching); otherwise
        // `make_mut` copies once, which is still no worse than before.
        let model = Arc::make_mut(&mut cached);
        let mut ok = true;
        if let Some(facts) = removed {
            ok = ok && model.remove_facts_mut(&program, facts);
        }
        if let Some(facts) = added {
            ok = ok && model.add_facts_mut(&program, facts);
        }
        if ok {
            self.stats.incremental_updates += 1;
            // Keep the scoring index in lockstep: one agent's derived rows
            // changed, so replace exactly those (sound while the rule base
            // keeps derived facts agent-local — `scoring` is `None`
            // whenever derived rules are registered).
            if let Some(scoring) = &mut self.scoring {
                Arc::make_mut(scoring).refresh_agent(&cached, agent);
                self.scoring_model = Arc::as_ptr(&cached) as usize;
            }
            self.saturated = Some(cached);
        } else {
            self.stats.fallbacks += 1;
            self.scoring = None;
        }
    }

    /// Stores a peer broker's advertisement (Fig. 13 content).
    pub fn advertise_broker(&mut self, ad: BrokerAdvertisement) -> Result<(), RepositoryError> {
        self.validate(&ad.base)?;
        self.brokers.insert(ad.base.location.name.clone(), ad);
        // Broker advertisements do not participate in agent matchmaking
        // facts, so the saturation cache stays valid.
        Ok(())
    }

    pub fn unadvertise_broker(&mut self, broker: &str) -> bool {
        self.brokers.remove(broker).is_some()
    }

    pub fn advertisement(&self, agent: &str) -> Option<&Advertisement> {
        self.agents.get(agent).map(|a| &**a)
    }

    /// The shared handle for an agent's advertisement — what the scoring
    /// pool clones instead of the advertisement body.
    pub fn advertisement_arc(&self, agent: &str) -> Option<&Arc<Advertisement>> {
        self.agents.get(agent)
    }

    /// Shared handles for every advertisement, in name order.
    pub fn agent_arcs(&self) -> impl Iterator<Item = &Arc<Advertisement>> {
        self.agents.values()
    }

    pub fn contains_agent(&self, agent: &str) -> bool {
        self.agents.contains_key(agent)
    }

    pub fn agents(&self) -> impl Iterator<Item = &Advertisement> {
        self.agents.values().map(|a| &**a)
    }

    pub fn agent_names(&self) -> impl Iterator<Item = &str> {
        self.agents.keys().map(String::as_str)
    }

    pub fn broker_advertisements(&self) -> impl Iterator<Item = &BrokerAdvertisement> {
        self.brokers.values()
    }

    pub fn peer_brokers(&self) -> Vec<String> {
        self.brokers.keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.agents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Total advertised bytes — what the simulator charges reasoning time
    /// against (1 second per megabyte of advertisements).
    pub fn approx_size_bytes(&self) -> usize {
        self.agents.values().map(|a| a.approx_size_bytes()).sum()
    }

    /// The compiled rule program (standard matchmaking base plus derived
    /// rules), cached until the derived rules change.
    pub fn program(&mut self) -> Arc<Program> {
        if let Some(p) = &self.program {
            return Arc::clone(p);
        }
        let program = Arc::new(
            matchmaking_program_with(&self.derived_rules)
                .expect("combined base verified stratifiable at registration time"), // lint: allow-unwrap
        );
        self.program = Some(Arc::clone(&program));
        program
    }

    /// The saturated LDL model of this repository. Served from cache when
    /// possible; the cache is maintained incrementally across
    /// advertise/unadvertise and recomputed from the EDB otherwise.
    pub fn saturated(&mut self) -> Arc<Saturated> {
        // Timed even on a cache hit: every query's trace then shows its
        // (usually near-zero) "saturation" stage, and full recomputes
        // stand out in the same histogram.
        let hooks = self.obs.clone();
        let _t = hooks.as_ref().map(|o| o.stage("saturation"));
        if let Some(s) = &self.saturated {
            let model = Arc::clone(s);
            self.ensure_scoring_index(&model);
            return model;
        }
        let program = self.program();
        let model = program.saturate(&self.edb).expect("matchmaking program is stratified"); // lint: allow-unwrap
        self.stats.full_recomputes += 1;
        let arc = Arc::new(model);
        self.saturated = Some(Arc::clone(&arc));
        self.scoring = None;
        self.ensure_scoring_index(&arc);
        arc
    }

    /// Builds the scoring index against `model` if it is enabled, sound
    /// (no derived rules), and not already present.
    fn ensure_scoring_index(&mut self, model: &Arc<Saturated>) {
        if !self.scoring_enabled || self.has_derived_rules() {
            self.scoring = None;
            return;
        }
        if self.scoring.is_none() {
            self.scoring = Some(Arc::new(ScoringIndex::build(model)));
            self.scoring_model = Arc::as_ptr(model) as usize;
        }
    }

    /// The scoring index matching `model`, if one is available. Returns
    /// `None` when indexing is disabled, derived rules are registered, or
    /// `model` is not the model the index was built against (a reader
    /// holding a stale snapshot must not score through a newer index).
    pub fn scoring_index(&self, model: &Saturated) -> Option<&Arc<ScoringIndex>> {
        let index = self.scoring.as_ref()?;
        if std::ptr::eq(model, self.scoring_model as *const Saturated) {
            Some(index)
        } else {
            None
        }
    }

    /// Enables or disables the derived-fact scoring index. With it off,
    /// scoring probes fall back to `Saturated::holds` — the
    /// pre-optimization behavior, kept as a correctness oracle and for
    /// benchmarking.
    pub fn set_scoring_index(&mut self, on: bool) {
        self.scoring_enabled = on;
        if !on {
            self.scoring = None;
        }
    }

    /// The repository's mutation epoch: bumped by every mutation that can
    /// change matchmaking results. Cache entries tagged with an older
    /// epoch are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The compiled extensional database (advertisement facts plus
    /// taxonomy and class-hierarchy facts), always in sync with the
    /// repository contents.
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// Enables or disables incremental model maintenance. With it off,
    /// every mutation invalidates the cached model and the next
    /// [`saturated`](Self::saturated) call pays a full recompute — the
    /// pre-optimization behavior, kept as a correctness oracle and for
    /// benchmarking.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// How the cached model has been maintained so far.
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Whether the derived-concept rule base permits candidate pruning
    /// through the capability/class indexes. Derived rules can make an
    /// agent provide capabilities or classes it never advertised, so any
    /// index-based pruning over those dimensions must be disabled.
    pub fn has_derived_rules(&self) -> bool {
        !self.derived_rules.is_empty()
    }

    /// Agents advertising capability `cap` (exact, pre-subsumption).
    pub fn agents_with_capability(&self, cap: &str) -> impl Iterator<Item = &str> {
        self.index.by_capability.get(cap).into_iter().flatten().map(String::as_str)
    }

    /// Agents advertising content for ontology `onto`.
    pub fn agents_with_ontology(&self, onto: &str) -> impl Iterator<Item = &str> {
        self.index.by_ontology.get(onto).into_iter().flatten().map(String::as_str)
    }

    /// Agents advertising class `class` of ontology `onto`.
    pub fn agents_with_class(&self, onto: &str, class: &str) -> impl Iterator<Item = &str> {
        self.index
            .by_class
            .get(&(onto.to_string(), class.to_string()))
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// Agents supporting conversation type `conv`.
    pub fn agents_with_conversation(&self, conv: &str) -> impl Iterator<Item = &str> {
        self.index.by_conversation.get(conv).into_iter().flatten().map(String::as_str)
    }
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

impl fmt::Debug for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Repository")
            .field("agents", &self.agents.keys().collect::<Vec<_>>())
            .field("brokers", &self.brokers.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        healthcare_ontology, AgentLocation, AgentType, Capability, Fragment, OntologyContent,
        SemanticInfo, SyntacticInfo,
    };

    fn valid_ad(name: &str) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1000", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_capabilities([Capability::relational_query_processing()]),
            )
    }

    #[test]
    fn advertise_unadvertise_round_trip() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        assert!(repo.contains_agent("ra1"));
        assert_eq!(repo.len(), 1);
        assert!(repo.unadvertise("ra1"));
        assert!(!repo.unadvertise("ra1"));
        assert!(repo.is_empty());
    }

    #[test]
    fn update_replaces_advertisement() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        let mut updated = valid_ad("ra1");
        updated.properties.estimated_response_time = Some(9.0);
        repo.advertise(updated).unwrap();
        assert_eq!(repo.len(), 1);
        assert_eq!(
            repo.advertisement("ra1").unwrap().properties.estimated_response_time,
            Some(9.0)
        );
    }

    #[test]
    fn validation_rejects_bad_advertisements() {
        let repo = Repository::new();
        let mut bad = valid_ad(" ");
        assert_eq!(repo.validate(&bad), Err(RepositoryError::EmptyAgentName));
        bad = valid_ad("x");
        bad.location.address = "nowhere".into();
        assert!(matches!(repo.validate(&bad), Err(RepositoryError::InvalidAddress { .. })));
        bad = valid_ad("x");
        bad.semantic.capabilities.insert(Capability::new("quantum-foo"));
        assert!(matches!(repo.validate(&bad), Err(RepositoryError::UnknownCapability { .. })));
    }

    #[test]
    fn validation_rejects_unsatisfiable_constraints() {
        let repo = Repository::new();
        let mut bad = valid_ad("x");
        bad.semantic.content.push(OntologyContent::new("healthcare").with_constraints(
            Conjunction::from_predicates(vec![Predicate::gt("age", 10), Predicate::lt("age", 5)]),
        ));
        assert!(matches!(
            repo.validate(&bad),
            Err(RepositoryError::UnsatisfiableConstraints { .. })
        ));
    }

    #[test]
    fn validation_checks_fragments_against_known_ontologies() {
        let mut repo = Repository::new();
        repo.register_ontology(healthcare_ontology());
        let mut bad = valid_ad("x");
        bad.semantic.content.push(
            OntologyContent::new("healthcare")
                .with_fragment("patient", Fragment::vertical(["no_such_slot"])),
        );
        assert!(matches!(repo.validate(&bad), Err(RepositoryError::InvalidFragment { .. })));
        // Fragments of unknown ontologies pass through (the broker cannot
        // check what it does not know).
        let mut unknown = valid_ad("y");
        unknown.semantic.content.push(
            OntologyContent::new("mystery")
                .with_fragment("thing", Fragment::vertical(["whatever"])),
        );
        assert!(repo.validate(&unknown).is_ok());
    }

    #[test]
    fn saturation_cache_invalidated_on_change() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        let s1 = repo.saturated();
        let s1_again = repo.saturated();
        assert!(Arc::ptr_eq(&s1, &s1_again));
        repo.advertise(valid_ad("ra2")).unwrap();
        let s2 = repo.saturated();
        assert!(!Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn derived_concept_rules_extend_the_model() {
        let mut repo = Repository::new();
        // "An agent that accepts subscriptions can be polled."
        repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
        let mut ad = valid_ad("ra1");
        ad.semantic.capabilities.insert(infosleuth_ontology::Capability::subscription());
        repo.advertise(ad).unwrap();
        let model = repo.saturated();
        let goals = infosleuth_ldl::parse_query("provides(ra1, polling)").unwrap();
        assert!(model.holds(&goals));
        // Bad rules are rejected at registration.
        assert!(repo.register_derived_rules("p(X, Y) :- q(X).").is_err());
        // Rules that break stratification *in combination with the standard
        // base* are also rejected at registration.
        assert!(repo
            .register_derived_rules("cap(A, x) :- agent(A, resource), not provides(A, y).")
            .is_err());
    }

    #[test]
    fn analysis_rejects_unknown_class_with_rendered_diagnostic() {
        let mut repo = Repository::new();
        repo.register_ontology(healthcare_ontology());
        let mut bad = valid_ad("x");
        bad.semantic.content.push(
            OntologyContent::new("healthcare")
                .with_classes(["martian"])
                .with_slots(["patient.blood_type"]),
        );
        let err = repo.advertise(bad).unwrap_err();
        let RepositoryError::Rejected { agent, report } = &err else {
            panic!("expected analysis rejection, got {err:?}");
        };
        assert_eq!(agent, "x");
        assert!(report.contains("IS021"), "missing IS021 in:\n{report}");
        assert!(report.contains("IS022"), "missing IS022 in:\n{report}");
        assert!(!repo.contains_agent("x"));
        // The rendered report travels with Display — the broker's `sorry`
        // path forwards exactly this text.
        assert!(err.to_string().contains("IS021"));
    }

    #[test]
    fn analysis_warnings_do_not_reject() {
        let mut repo = Repository::new();
        repo.register_ontology(healthcare_ontology());
        let mut ad = valid_ad("ra5");
        ad.semantic.content.push(
            OntologyContent::new("healthcare").with_classes(["patient"]).with_constraints(
                Conjunction::from_predicates(vec![Predicate::between("patient.age", 43, 75)]),
            ),
        );
        repo.advertise(ad.clone()).unwrap();
        // Re-advertising the same content is subsumed (IS024) — a warning,
        // so the update is still accepted.
        let report = repo.analyze(&ad);
        assert!(!report.has_errors());
        assert!(report.codes().contains(&infosleuth_analysis::Code::SubsumedAdvertisement));
        repo.advertise(ad).unwrap();
        assert!(repo.contains_agent("ra5"));
    }

    #[test]
    fn derived_rule_rejections_carry_diagnostics() {
        let mut repo = Repository::new();
        // Undefined predicate in the body → IS011.
        let err = repo.register_derived_rules("cap(A, x) :- mystery(A).").unwrap_err();
        assert!(err.message.contains("IS011"), "{}", err.message);
        // Arity clash with the fact schema → IS013.
        let err = repo.register_derived_rules("cap(A) :- agent(A, resource).").unwrap_err();
        assert!(err.message.contains("IS013"), "{}", err.message);
        // Unsafe head variable → IS002.
        let err = repo.register_derived_rules("cap(A, X) :- agent(A, resource).").unwrap_err();
        assert!(err.message.contains("IS002"), "{}", err.message);
    }

    #[test]
    fn epoch_bumps_on_every_result_changing_mutation() {
        let mut repo = Repository::new();
        let e0 = repo.epoch();
        repo.advertise(valid_ad("ra1")).unwrap();
        let e1 = repo.epoch();
        assert!(e1 > e0);
        assert!(repo.unadvertise("ra1"));
        let e2 = repo.epoch();
        assert!(e2 > e1);
        repo.register_ontology(healthcare_ontology());
        let e3 = repo.epoch();
        assert!(e3 > e2);
        repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
        assert!(repo.epoch() > e3);
        // Reads and failed mutations leave the epoch alone.
        let before = repo.epoch();
        let _ = repo.saturated();
        assert!(!repo.unadvertise("nobody"));
        assert!(repo.advertise(valid_ad(" ")).is_err());
        assert_eq!(repo.epoch(), before);
    }

    #[test]
    fn scoring_index_tracks_model_across_churn() {
        let mut repo = Repository::new();
        for i in 0..8 {
            repo.advertise(valid_ad(&format!("ra{i}"))).unwrap();
        }
        let model = repo.saturated();
        let index = repo.scoring_index(&model).expect("index built with model");
        assert!(index.mirrors(&model));
        // Incremental churn: patched model, patched index.
        repo.unadvertise("ra3");
        repo.advertise(valid_ad("ra9")).unwrap();
        let model = repo.saturated();
        let index = repo.scoring_index(&model).expect("index survives churn");
        assert!(index.mirrors(&model));
        assert!(index.provides("ra9", "relational-query-processing"));
        assert!(!index.provides("ra3", "relational-query-processing"));
        // A stale model snapshot must not resolve to the fresh index.
        let stale = Arc::clone(&model);
        repo.advertise(valid_ad("ra10")).unwrap();
        let fresh = repo.saturated();
        if !Arc::ptr_eq(&stale, &fresh) {
            assert!(repo.scoring_index(&stale).is_none());
        }
        assert!(repo.scoring_index(&fresh).unwrap().mirrors(&fresh));
    }

    #[test]
    fn scoring_index_disabled_by_derived_rules_and_knob() {
        let mut repo = Repository::new();
        repo.advertise(valid_ad("ra1")).unwrap();
        let model = repo.saturated();
        assert!(repo.scoring_index(&model).is_some());
        repo.set_scoring_index(false);
        assert!(repo.scoring_index(&model).is_none());
        repo.set_scoring_index(true);
        let model = repo.saturated();
        assert!(repo.scoring_index(&model).is_some());
        // Derived rules make agent-local index refresh unsound — no index.
        repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
        let model = repo.saturated();
        assert!(repo.scoring_index(&model).is_none());
    }

    #[test]
    fn broker_advertisements_are_separate() {
        let mut repo = Repository::new();
        let b = BrokerAdvertisement::new(Advertisement::new(AgentLocation::new(
            "b2",
            "tcp://h:2000",
            AgentType::Broker,
        )));
        repo.advertise_broker(b).unwrap();
        assert_eq!(repo.peer_brokers(), vec!["b2"]);
        assert!(repo.is_empty()); // not an agent advertisement
        assert!(repo.unadvertise_broker("b2"));
        assert!(!repo.unadvertise_broker("b2"));
    }
}
