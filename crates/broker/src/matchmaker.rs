//! Combined syntactic + semantic matchmaking with ranking.
//!
//! "If a broker fails to take into account syntactic constraints, the
//! recommended agent will be unable to understand the message it receives.
//! If a broker fails to take into account semantic constraints, the
//! recommended agent may perform some action different than the one
//! intended." (§2.3) — so the matchmaker always applies both, in that
//! order. The two `use_*` knobs exist for the ablation benchmarks only.

use crate::repository::Repository;
use crate::scoring_index::ScoringIndex;
use infosleuth_agent::WorkerPool;
use infosleuth_ldl::{Atom, Literal, Saturated, Term};
use infosleuth_ontology::{Advertisement, OntologyContent, ServiceQuery};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{mpsc, Arc};

/// One recommended agent, with the ranking score that ordered it and the
/// §2.4 *result format* fields: the matched ontology plus the agent's
/// available classes, slots, and keys (`?available-classes,
/// ?available-class-slots, ?class-keys` in the paper's query).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MatchResult {
    pub name: String,
    pub address: String,
    pub score: u32,
    pub estimated_response_time: Option<f64>,
    /// The ontology of the content record that satisfied the query.
    pub ontology: Option<String>,
    /// Advertised classes of that content record.
    pub classes: Vec<String>,
    /// Advertised slots of that content record.
    pub slots: Vec<String>,
    /// Advertised class keys of that content record.
    pub keys: Vec<String>,
}

/// Internal per-agent match outcome: the ranking score and which content
/// record carried the semantic match. Borrows the ontology name from the
/// advertisement; it is cloned once, for the winning record only.
struct MatchOutcome<'a> {
    score: u32,
    content_ontology: Option<&'a str>,
}

/// The matchmaking engine. The flags disable layers for ablation studies;
/// production brokers keep both on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Matchmaker {
    /// Apply semantic reasoning (capabilities, content, constraints).
    pub use_semantic: bool,
    /// Apply data-constraint overlap pruning (subset of semantic layer).
    pub use_constraints: bool,
}

impl Default for Matchmaker {
    fn default() -> Self {
        Matchmaker { use_semantic: true, use_constraints: true }
    }
}

/// Score weights (see the ranking rationale in the module tests): exact
/// matches beat hierarchy-covered matches beat partial contributions.
const SCORE_CLASS_EXACT: u32 = 3;
const SCORE_CLASS_COVERED: u32 = 2;
const SCORE_CLASS_PARTIAL: u32 = 1;
const SCORE_CAP_EXACT: u32 = 2;
const SCORE_CAP_COVERED: u32 = 1;
const SCORE_CONSTRAINT_COVERS_REQUEST: u32 = 3;
const SCORE_CONSTRAINT_SPECIALIST: u32 = 2;
const SCORE_CONSTRAINT_OVERLAP: u32 = 1;

/// Candidate sets at least this large are scored across the shared
/// persistent worker pool; below it, dispatch overhead dominates the
/// scoring work. With the pool replacing per-query thread spawns the
/// crossover moved down from 64 — see the threshold measurement in
/// EXPERIMENTS.md.
const PARALLEL_SCORING_THRESHOLD: usize = 32;
const MAX_SCORING_THREADS: usize = 8;

/// How semantic scoring probes the derived predicates: through the
/// integer-keyed [`ScoringIndex`] when the repository has a current one,
/// or through `Saturated::holds` (building a ground atom per probe) when
/// indexing is unavailable — derived rules registered, index disabled, or
/// a stale model snapshot. Both answer exactly the same relation, which
/// the parity suite asserts.
enum SemProbe<'a> {
    Index(&'a ScoringIndex),
    Model(&'a Saturated),
}

impl SemProbe<'_> {
    fn provides(&self, agent: &str, capability: &str) -> bool {
        match self {
            SemProbe::Index(ix) => ix.provides(agent, capability),
            SemProbe::Model(m) => m.holds(&[Literal::Pos(Atom::new(
                "provides",
                vec![Term::constant(agent), Term::constant(capability)],
            ))]),
        }
    }

    fn serves_class(&self, agent: &str, ontology: &str, class: &str) -> bool {
        match self {
            SemProbe::Index(ix) => ix.serves_class(agent, ontology, class),
            SemProbe::Model(m) => m.holds(&[Literal::Pos(Atom::new(
                "serves_class",
                vec![Term::constant(agent), Term::constant(ontology), Term::constant(class)],
            ))]),
        }
    }

    fn contributes_class(&self, agent: &str, ontology: &str, class: &str) -> bool {
        match self {
            SemProbe::Index(ix) => ix.contributes_class(agent, ontology, class),
            SemProbe::Model(m) => m.holds(&[Literal::Pos(Atom::new(
                "contributes_class",
                vec![Term::constant(agent), Term::constant(ontology), Term::constant(class)],
            ))]),
        }
    }
}

impl Matchmaker {
    /// Matches a service query against the repository, returning
    /// recommendations ordered best-first (score descending, then name).
    /// Truncated to `query.max_matches` when set.
    ///
    /// Read-only: takes the saturated model explicitly (see
    /// [`Repository::saturated`]) so concurrent matchmaking never needs
    /// `&mut Repository`. Candidates are narrowed through the repository's
    /// inverted indexes before scoring, and large candidate sets are
    /// scored in parallel; both are behavior-preserving (see
    /// [`match_query_linear`](Self::match_query_linear), the pre-index
    /// reference path).
    pub fn match_query(
        &self,
        repo: &Repository,
        model: &Arc<Saturated>,
        query: &ServiceQuery,
    ) -> Vec<MatchResult> {
        let index = repo.scoring_index(model);
        let candidates = self.candidates(repo, query);
        // Fan out only when the pool actually has parallelism to offer:
        // with a single worker the chunking/channel overhead is a strict
        // loss (measured in EXPERIMENTS.md).
        let results = if candidates.len() >= PARALLEL_SCORING_THRESHOLD
            && WorkerPool::shared().workers() > 1
        {
            self.score_parallel(&candidates, model, index, query)
        } else {
            let probe = match index {
                Some(ix) => SemProbe::Index(ix),
                None => SemProbe::Model(model),
            };
            candidates.iter().filter_map(|ad| self.score_candidate(ad, query, &probe)).collect()
        };
        rank(results, query)
    }

    /// Forces the pooled scoring path regardless of candidate count or
    /// worker count. Exists for the crossover measurement behind
    /// `PARALLEL_SCORING_THRESHOLD` (`match --crossover`) and for tests;
    /// production callers use [`match_query`](Self::match_query), which
    /// picks the path itself.
    #[doc(hidden)]
    pub fn match_query_pooled(
        &self,
        repo: &Repository,
        model: &Arc<Saturated>,
        query: &ServiceQuery,
    ) -> Vec<MatchResult> {
        let index = repo.scoring_index(model);
        let candidates = self.candidates(repo, query);
        rank(self.score_parallel(&candidates, model, index, query), query)
    }

    /// Fans candidate chunks out to the shared persistent worker pool.
    /// Jobs borrow nothing: advertisements, model, index, and query travel
    /// as `Arc`s, so the pool threads can outlive this call frame.
    fn score_parallel(
        &self,
        candidates: &[&Arc<Advertisement>],
        model: &Arc<Saturated>,
        index: Option<&Arc<ScoringIndex>>,
        query: &ServiceQuery,
    ) -> Vec<MatchResult> {
        let pool = WorkerPool::shared();
        let workers = pool.workers().min(MAX_SCORING_THREADS);
        let chunk = candidates.len().div_ceil(workers).max(1);
        let query = Arc::new(query.clone());
        let (tx, rx) = mpsc::channel::<Vec<MatchResult>>();
        let mut jobs = 0usize;
        for ads in candidates.chunks(chunk) {
            let ads: Vec<Arc<Advertisement>> = ads.iter().map(|a| Arc::clone(a)).collect();
            let model = Arc::clone(model);
            let index = index.map(Arc::clone);
            let query = Arc::clone(&query);
            let mm = *self;
            let tx = tx.clone();
            pool.execute(move || {
                let probe = match &index {
                    Some(ix) => SemProbe::Index(ix),
                    None => SemProbe::Model(&model),
                };
                let out: Vec<MatchResult> =
                    ads.iter().filter_map(|ad| mm.score_candidate(ad, &query, &probe)).collect();
                let _ = tx.send(out);
            });
            jobs += 1;
        }
        drop(tx);
        let mut all = Vec::new();
        let mut received = 0usize;
        for out in rx {
            all.extend(out);
            received += 1;
        }
        assert_eq!(received, jobs, "scoring pool dropped a job (worker panicked?)");
        all
    }

    /// Convenience wrapper that saturates (or reuses) the repository's
    /// cached model first — the call shape mutation-path callers want.
    pub fn match_query_mut(&self, repo: &mut Repository, query: &ServiceQuery) -> Vec<MatchResult> {
        let model = repo.saturated();
        self.match_query(repo, &model, query)
    }

    /// The fully cached query path: consult `cache` at the repository's
    /// current mutation epoch, and only on a miss saturate + score +
    /// populate. A hit skips candidate narrowing and scoring entirely,
    /// and both hit and miss exchange `Arc` clones — no result row is
    /// ever deep-copied by the cache machinery.
    pub fn match_query_cached(
        &self,
        repo: &mut Repository,
        cache: &crate::MatchCache,
        query: &ServiceQuery,
    ) -> Arc<Vec<MatchResult>> {
        let epoch = repo.epoch();
        let key = crate::MatchCache::query_key(query);
        if let Some(hit) = cache.lookup_keyed(epoch, &key) {
            return hit;
        }
        let model = repo.saturated();
        let results = Arc::new(self.match_query(repo, &model, query));
        cache.insert_keyed(epoch, key, Arc::clone(&results));
        results
    }

    /// The pre-index reference path: score every advertisement serially.
    /// Kept as the correctness oracle for the indexed/parallel
    /// [`match_query`](Self::match_query); tests assert both agree.
    #[doc(hidden)]
    pub fn match_query_linear(
        &self,
        repo: &Repository,
        model: &Saturated,
        query: &ServiceQuery,
    ) -> Vec<MatchResult> {
        let probe = SemProbe::Model(model);
        let results = repo
            .agents()
            .filter(|ad| match &query.agent_name {
                Some(name) => name == &ad.location.name,
                None => true,
            })
            .filter_map(|ad| self.score_candidate(ad, query, &probe))
            .collect();
        rank(results, query)
    }

    /// Narrows the scoring set through the repository's inverted indexes.
    /// Each built set is a sound over-approximation of the agents that
    /// can match one query dimension; their intersection still contains
    /// every true match. Dimensions that cannot be soundly pruned (no
    /// index, derived rules in play, semantic layer disabled) simply do
    /// not contribute a set; with no sets at all this degrades to the
    /// full scan.
    ///
    /// Any empty dimension set short-circuits the whole query before the
    /// remaining dimensions are materialized, and the intersection walks
    /// the smallest set probing the others instead of repeatedly
    /// `retain`ing a large accumulator.
    fn candidates<'r>(
        &self,
        repo: &'r Repository,
        query: &ServiceQuery,
    ) -> Vec<&'r Arc<Advertisement>> {
        if let Some(name) = &query.agent_name {
            return repo.advertisement_arc(name).into_iter().collect();
        }
        let mut sets: Vec<BTreeSet<&str>> = Vec::new();
        // Pushes one dimension set; an empty one proves no agent can
        // match, so the caller returns immediately (`false`).
        macro_rules! dimension {
            ($set:expr) => {{
                let set: BTreeSet<&str> = $set;
                if set.is_empty() {
                    return Vec::new();
                }
                sets.push(set);
            }};
        }
        // Conversation requirements are matched verbatim against the
        // advertisement, so the index is exact.
        for conv in &query.conversations {
            dimension!(repo.agents_with_conversation(&conv.to_string()).collect());
        }
        if self.use_semantic {
            // A required ontology means only content records of that
            // ontology can carry the semantic match.
            if let Some(onto) = &query.ontology {
                dimension!(repo.agents_with_ontology(onto).collect());
                // Each requested class must be advertised exactly, via an
                // advertised ancestor (full coverage), or an advertised
                // descendant (partial contribution). Derived rules can
                // invent class memberships the index never saw, so this
                // pruning is disabled when any are registered.
                if !repo.has_derived_rules() {
                    for class in &query.classes {
                        let mut set: BTreeSet<&str> = repo.agents_with_class(onto, class).collect();
                        if let Some(o) = repo.ontology(onto) {
                            let hierarchy = o.hierarchy();
                            for rel in hierarchy
                                .ancestors(class)
                                .into_iter()
                                .chain(hierarchy.descendants(class))
                            {
                                set.extend(repo.agents_with_class(onto, &rel));
                            }
                        }
                        dimension!(set);
                    }
                }
            }
            // A required capability is provided only by agents advertising
            // it or an ancestor of it in the capability taxonomy — unless
            // derived rules can grant capabilities indirectly.
            if !repo.has_derived_rules() {
                for cap in &query.capabilities {
                    let mut set: BTreeSet<&str> =
                        repo.agents_with_capability(cap.as_str()).collect();
                    for anc in repo.capability_taxonomy().ancestors(cap.as_str()) {
                        set.extend(repo.agents_with_capability(&anc));
                    }
                    dimension!(set);
                }
            }
        }
        if sets.is_empty() {
            return repo.agent_arcs().collect();
        }
        let smallest =
            sets.iter().enumerate().min_by_key(|(_, s)| s.len()).map(|(i, _)| i).unwrap_or(0);
        let base = sets.swap_remove(smallest);
        base.into_iter()
            .filter(|name| sets.iter().all(|s| s.contains(name)))
            .filter_map(|name| repo.advertisement_arc(name))
            .collect()
    }

    /// Scores one advertisement and assembles its result row.
    fn score_candidate(
        &self,
        ad: &Advertisement,
        query: &ServiceQuery,
        probe: &SemProbe<'_>,
    ) -> Option<MatchResult> {
        let outcome = self.score_agent(ad, query, probe)?;
        let content = outcome.content_ontology.and_then(|o| ad.semantic.content_for(o));
        Some(MatchResult {
            name: ad.location.name.clone(),
            address: ad.location.address.clone(),
            score: outcome.score,
            estimated_response_time: ad.properties.estimated_response_time,
            ontology: outcome.content_ontology.map(str::to_string),
            classes: content.map(|c| c.classes.iter().cloned().collect()).unwrap_or_default(),
            slots: content.map(|c| c.slots.iter().cloned().collect()).unwrap_or_default(),
            keys: content.map(|c| c.keys.iter().cloned().collect()).unwrap_or_default(),
        })
    }

    /// Scores one advertisement against the query; `None` means no match.
    fn score_agent<'a>(
        &self,
        ad: &'a Advertisement,
        query: &ServiceQuery,
        probe: &SemProbe<'_>,
    ) -> Option<MatchOutcome<'a>> {
        // ---- Syntactic layer -------------------------------------------
        if let Some(t) = &query.agent_type {
            if t != &ad.location.agent_type {
                return None;
            }
        }
        if let Some(lang) = &query.query_language {
            if !ad.syntactic.query_languages.contains(lang) {
                return None;
            }
        }
        if let Some(lang) = &query.communication_language {
            if !ad.syntactic.communication_languages.contains(lang) {
                return None;
            }
        }
        for conv in &query.conversations {
            if !ad.semantic.conversations.contains(conv) {
                return None;
            }
        }
        let mut score = 1; // base score for a syntactic match
        let mut content_ontology = None;
        if !self.use_semantic {
            return Some(MatchOutcome { score, content_ontology });
        }

        // ---- Semantic layer: capabilities ------------------------------
        let agent = ad.location.name.as_str();
        for cap in &query.capabilities {
            if ad.semantic.capabilities.contains(cap) {
                score += SCORE_CAP_EXACT;
            } else if probe.provides(agent, cap.as_str()) {
                score += SCORE_CAP_COVERED;
            } else {
                return None;
            }
        }

        // ---- Semantic layer: content -----------------------------------
        let needs_content = query.ontology.is_some() || !query.classes.is_empty();
        if needs_content {
            // Pick the best-scoring content record that satisfies the query.
            let candidates: Vec<&OntologyContent> = match &query.ontology {
                Some(o) => ad.semantic.content.iter().filter(|c| &c.ontology == o).collect(),
                None => ad.semantic.content.iter().collect(),
            };
            let (best_score, best_ontology) = candidates
                .iter()
                .filter_map(|c| {
                    self.score_content(agent, c, query, probe).map(|s| (s, c.ontology.as_str()))
                })
                .max_by_key(|(s, _)| *s)?;
            score += best_score;
            content_ontology = Some(best_ontology);
        } else if self.use_constraints && !query.constraints.is_trivial() {
            // No specific ontology/classes requested, but data constraints
            // given: any advertised content must not rule out overlap.
            if !ad.semantic.content.is_empty()
                && !ad.semantic.content.iter().any(|c| c.constraints.overlaps(&query.constraints))
            {
                return None;
            }
        }

        // ---- Properties -------------------------------------------------
        if let Some(mobile) = query.require_mobile {
            if ad.properties.mobile != mobile {
                return None;
            }
        }
        if let Some(cloneable) = query.require_cloneable {
            if ad.properties.cloneable != cloneable {
                return None;
            }
        }
        if let Some(max) = query.max_response_time {
            if let Some(est) = ad.properties.estimated_response_time {
                if est > max {
                    return None;
                }
            }
        }
        Some(MatchOutcome { score, content_ontology })
    }

    /// Scores one content record; `None` means this record cannot serve the
    /// query.
    fn score_content(
        &self,
        agent: &str,
        content: &OntologyContent,
        query: &ServiceQuery,
        probe: &SemProbe<'_>,
    ) -> Option<u32> {
        let mut score = 0;
        let onto = content.ontology.as_str();

        // Classes: every requested class must at least receive a partial
        // contribution (the MRQ combines fragments and subclasses).
        for class in &query.classes {
            if content.classes.contains(class) {
                score += SCORE_CLASS_EXACT;
            } else if probe.serves_class(agent, onto, class) {
                score += SCORE_CLASS_COVERED;
            } else if probe.contributes_class(agent, onto, class) {
                score += SCORE_CLASS_PARTIAL;
            } else {
                return None;
            }
        }

        // Slots: when both sides list slots, they must overlap (bare and
        // qualified spellings both accepted). Borrowed suffixes — no
        // per-slot `String`.
        if !query.slots.is_empty() && !content.slots.is_empty() {
            fn bare(s: &str) -> &str {
                s.rsplit('.').next().unwrap_or(s)
            }
            let advertised: BTreeSet<&str> = content.slots.iter().map(|s| bare(s)).collect();
            if !query.slots.iter().any(|s| advertised.contains(bare(s))) {
                return None;
            }
        }

        // Fragments: a fragment advertised for a requested class must be
        // able to contribute to the request. The requested-slot list is
        // only materialized when a fragment actually needs checking.
        if !content.fragments.is_empty() {
            let requested_slots: Vec<String> = query.slots.iter().cloned().collect();
            for (class, frag) in &content.fragments {
                if query.classes.contains(class)
                    && !frag.contributes_to(&requested_slots, &query.constraints)
                {
                    return None;
                }
            }
        }

        // Data constraints.
        if self.use_constraints && !query.constraints.is_trivial() {
            if !content.constraints.overlaps(&query.constraints) {
                return None;
            }
            if query.constraints.implies(&content.constraints) {
                // The advertised restriction covers the entire request.
                score += SCORE_CONSTRAINT_COVERS_REQUEST;
            } else if content.constraints.implies(&query.constraints) {
                // The agent is a specialist wholly inside the request.
                score += SCORE_CONSTRAINT_SPECIALIST;
            } else {
                score += SCORE_CONSTRAINT_OVERLAP;
            }
        }
        Some(score)
    }
}

/// Orders results best-first (score descending, then name — a total order,
/// so parallel scoring cannot perturb the output) and applies the
/// requested truncation.
fn rank(mut results: Vec<MatchResult>, query: &ServiceQuery) -> Vec<MatchResult> {
    results.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.name.cmp(&b.name)));
    if let Some(n) = query.max_matches {
        results.truncate(n);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use infosleuth_constraint::{Conjunction, Predicate};
    use infosleuth_ontology::{
        healthcare_ontology, paper_class_ontology, AgentLocation, AgentProperties, AgentType,
        Capability, ConversationType, Fragment, SemanticInfo, SyntacticInfo,
    };

    fn repo() -> Repository {
        let mut r = Repository::new();
        r.register_ontology(paper_class_ontology());
        r.register_ontology(healthcare_ontology());
        r
    }

    fn resource(name: &str, classes: &[&str]) -> Advertisement {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    }

    /// The §2.2 walkthrough: DB1 holds C1+C2, DB2 holds C2+C3.
    fn walkthrough_repo() -> Repository {
        let mut r = repo();
        r.advertise(resource("db1", &["C1", "C2"])).unwrap();
        r.advertise(resource("db2", &["C2", "C3"])).unwrap();
        let mrq = Advertisement::new(AgentLocation::new(
            "mrq",
            "tcp://h:2",
            AgentType::MultiResourceQuery,
        ))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::AskAll])
                .with_capabilities([Capability::multiresource_query_processing()]),
        );
        r.advertise(mrq).unwrap();
        r
    }

    #[test]
    fn figure6_query_for_mrq_agent() {
        let mut r = walkthrough_repo();
        let q = ServiceQuery::for_agent_type(AgentType::MultiResourceQuery)
            .with_query_language("SQL 2.0")
            .with_capability(Capability::multiresource_query_processing())
            .one();
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "mrq");
    }

    #[test]
    fn figure7_query_for_resources_holding_c2() {
        let mut r = walkthrough_repo();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_ontology("paper-classes")
            .with_classes(["C2"]);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        let names: Vec<&str> = m.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["db1", "db2"]);
        // "if the original query had been for class C3, then only DB2
        // would have been returned."
        let q3 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_ontology("paper-classes")
            .with_classes(["C3"]);
        let m3 = Matchmaker::default().match_query_mut(&mut r, &q3);
        assert_eq!(m3.len(), 1);
        assert_eq!(m3[0].name, "db2");
    }

    #[test]
    fn mrq2_better_semantic_match_ranks_first() {
        // "agent MRQ2 … specializes in queries over the class C2 …
        // MRQ2 agent would be recommended … because it has a better
        // semantic match to the request than does agent MRQ."
        let mut r = walkthrough_repo();
        let mrq2 = Advertisement::new(AgentLocation::new(
            "mrq2",
            "tcp://h:3",
            AgentType::MultiResourceQuery,
        ))
        .with_syntactic(SyntacticInfo::sql_kqml())
        .with_semantic(
            SemanticInfo::default()
                .with_conversations([ConversationType::AskAll])
                .with_capabilities([Capability::multiresource_query_processing()])
                .with_content(OntologyContent::new("paper-classes").with_classes(["C2"])),
        );
        r.advertise(mrq2).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::MultiResourceQuery)
            .with_query_language("SQL 2.0")
            .with_capability(Capability::multiresource_query_processing())
            .with_ontology("paper-classes")
            .with_classes(["C2"])
            .one();
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "mrq2");
    }

    #[test]
    fn syntactic_mismatches_filter_out() {
        let mut r = repo();
        let mut oql_agent = resource("oql", &["C1"]);
        oql_agent.syntactic = SyntacticInfo::new(["OQL"], ["KQML"]);
        r.advertise(oql_agent).unwrap();
        r.advertise(resource("sql", &["C1"])).unwrap();
        // "one agent expects its input in SQL, while the other expects its
        // input in a relational subset of OQL … the semantics are not
        // sufficient to distinguish."
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_query_language("SQL 2.0");
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "sql");
    }

    #[test]
    fn conversation_requirements_filter() {
        let mut r = repo();
        r.advertise(resource("ra", &["C1"])).unwrap(); // ask-all only
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_conversation(ConversationType::Subscribe);
        assert!(Matchmaker::default().match_query_mut(&mut r, &q).is_empty());
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_conversation(ConversationType::AskAll);
        assert_eq!(Matchmaker::default().match_query_mut(&mut r, &q2).len(), 1);
    }

    #[test]
    fn capability_subsumption_respects_hierarchy_direction() {
        let mut r = repo();
        let mut general = resource("general", &["C1"]);
        general.semantic.capabilities = [Capability::query_processing()].into_iter().collect();
        let mut select_only = resource("selector", &["C1"]);
        select_only.semantic.capabilities = [Capability::select()].into_iter().collect();
        r.advertise(general).unwrap();
        r.advertise(select_only).unwrap();
        // Request select: both qualify.
        let q =
            ServiceQuery::for_agent_type(AgentType::Resource).with_capability(Capability::select());
        assert_eq!(Matchmaker::default().match_query_mut(&mut r, &q).len(), 2);
        // Request join: only the general agent qualifies.
        let q =
            ServiceQuery::for_agent_type(AgentType::Resource).with_capability(Capability::join());
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "general");
        // Exact capability scores above covered capability.
        let q =
            ServiceQuery::for_agent_type(AgentType::Resource).with_capability(Capability::select());
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m[0].name, "selector");
    }

    #[test]
    fn paper_24_constraint_example() {
        // ResourceAgent5 advertises ages 43..=75; query asks 25..=65 +
        // diagnosis code 40W. "The reasoning engine would match the agent."
        let mut r = repo();
        let ra5 =
            Advertisement::new(AgentLocation::new(
                "ResourceAgent5",
                "tcp://b1.mcc.com:4356",
                AgentType::Resource,
            ))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([
                        ConversationType::Subscribe,
                        ConversationType::Update,
                        ConversationType::AskAll,
                    ])
                    .with_capabilities([
                        Capability::relational_query_processing(),
                        Capability::subscription(),
                    ])
                    .with_content(
                        OntologyContent::new("healthcare")
                            .with_classes(["diagnosis", "patient"])
                            .with_slots(["diagnosis.code", "patient.age"])
                            .with_keys(["patient.id"])
                            .with_constraints(Conjunction::from_predicates(vec![
                                Predicate::between("patient.age", 43, 75),
                            ])),
                    ),
            )
            .with_properties(AgentProperties {
                estimated_response_time: Some(5.0),
                ..AgentProperties::default()
            });
        r.advertise(ra5).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_ontology("healthcare")
            .with_constraints(Conjunction::from_predicates(vec![
                Predicate::between("patient.age", 25, 65),
                Predicate::eq("patient.diagnosis_code", "40W"),
            ]));
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "ResourceAgent5");
        assert_eq!(m[0].address, "tcp://b1.mcc.com:4356");
        assert_eq!(m[0].estimated_response_time, Some(5.0));
        // The §2.4 result format: ?available-classes,
        // ?available-class-slots, ?class-keys come back with the match.
        assert_eq!(m[0].ontology.as_deref(), Some("healthcare"));
        assert_eq!(m[0].classes, vec!["diagnosis", "patient"]);
        assert_eq!(m[0].slots, vec!["diagnosis.code", "patient.age"]);
        assert_eq!(m[0].keys, vec!["patient.id"]);
        // Disjoint ages: no recommendation.
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("healthcare")
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                1,
                10,
            )]));
        assert!(Matchmaker::default().match_query_mut(&mut r, &q2).is_empty());
    }

    #[test]
    fn constraint_specificity_orders_results() {
        let mut r = repo();
        let make = |name: &str, lo: i64, hi: i64| {
            let mut ad = resource(name, &[]);
            ad.semantic.content = vec![OntologyContent::new("healthcare")
                .with_classes(["patient"])
                .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                    "patient.age",
                    lo,
                    hi,
                )]))];
            ad
        };
        r.advertise(make("wide", 0, 120)).unwrap(); // covers whole request
        r.advertise(make("narrow", 40, 50)).unwrap(); // specialist inside
        r.advertise(make("partial", 60, 90)).unwrap(); // mere overlap
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("healthcare")
            .with_classes(["patient"])
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                30,
                70,
            )]));
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        let names: Vec<&str> = m.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["wide", "narrow", "partial"]);
    }

    #[test]
    fn class_hierarchy_matching() {
        let mut r = repo();
        r.advertise(resource("whole", &["C2"])).unwrap();
        r.advertise(resource("part", &["C2a"])).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C2"]);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        let names: Vec<&str> = m.iter().map(|r| r.name.as_str()).collect();
        // Exact holder first, subclass contributor second.
        assert_eq!(names, vec!["whole", "part"]);
        // Query for the subclass: the superclass holder serves it fully.
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C2a"]);
        let m2 = Matchmaker::default().match_query_mut(&mut r, &q2);
        let names2: Vec<&str> = m2.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names2, vec!["part", "whole"]);
    }

    #[test]
    fn vertical_fragments_must_contribute() {
        let mut r = repo();
        let mut frag_agent = resource("frag", &["C1"]);
        frag_agent.semantic.content = vec![OntologyContent::new("paper-classes")
            .with_classes(["C1"])
            .with_slots(["C1.id", "C1.a"])
            .with_fragment("C1", Fragment::vertical(["id", "a"]))];
        r.advertise(frag_agent).unwrap();
        // Request slot `b`: the fragment holds only id+a → no match.
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"])
            .with_slots(["b"]);
        assert!(Matchmaker::default().match_query_mut(&mut r, &q).is_empty());
        // Request slot `a`: match.
        let q2 = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes(["C1"])
            .with_slots(["a"]);
        assert_eq!(Matchmaker::default().match_query_mut(&mut r, &q2).len(), 1);
    }

    #[test]
    fn response_time_bound_filters() {
        let mut r = repo();
        let mut slow = resource("slow", &["C1"]);
        slow.properties.estimated_response_time = Some(30.0);
        let mut fast = resource("fast", &["C1"]);
        fast.properties.estimated_response_time = Some(2.0);
        r.advertise(slow).unwrap();
        r.advertise(fast).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_max_response_time(10.0);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "fast");
    }

    #[test]
    fn adaptivity_properties_filter() {
        // Fig. 9 lists adaptivity ("cloneable, mobile") among the semantic
        // information the broker may use; the §2.4 agent advertises
        // `non-mobile`.
        let mut r = repo();
        let mut mobile = resource("rover", &["C1"]);
        mobile.properties.mobile = true;
        let mut fixed = resource("anchor", &["C1"]);
        fixed.properties.mobile = false;
        fixed.properties.cloneable = true;
        r.advertise(mobile).unwrap();
        r.advertise(fixed).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_mobility(true);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "rover");
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_mobility(false);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "anchor");
        let q = ServiceQuery::for_agent_type(AgentType::Resource).with_cloneability(true);
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "anchor");
    }

    #[test]
    fn max_matches_truncates() {
        let mut r = repo();
        for i in 0..5 {
            r.advertise(resource(&format!("ra{i}"), &["C1"])).unwrap();
        }
        let q = ServiceQuery::for_agent_type(AgentType::Resource).one();
        assert_eq!(Matchmaker::default().match_query_mut(&mut r, &q).len(), 1);
    }

    #[test]
    fn ablation_syntactic_only_ignores_semantics() {
        let mut r = repo();
        r.advertise(resource("ra", &["C1"])).unwrap();
        let q = ServiceQuery::for_agent_type(AgentType::Resource)
            .with_capability(Capability::data_mining()); // not advertised
        assert!(Matchmaker::default().match_query_mut(&mut r, &q).is_empty());
        let syntactic_only = Matchmaker { use_semantic: false, use_constraints: false };
        assert_eq!(syntactic_only.match_query_mut(&mut r, &q).len(), 1);
    }

    #[test]
    fn agent_name_lookup() {
        let mut r = repo();
        r.advertise(resource("ra1", &["C1"])).unwrap();
        r.advertise(resource("ra2", &["C1"])).unwrap();
        let mut q = ServiceQuery::for_agent_type(AgentType::Resource);
        q.agent_name = Some("ra2".into());
        let m = Matchmaker::default().match_query_mut(&mut r, &q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "ra2");
    }
}
