//! Correctness oracles for the two matchmaking fast paths:
//!
//! 1. **Incremental model maintenance** — a long randomized churn of
//!    advertise/unadvertise, where after every step the incrementally
//!    patched saturated model must equal a full recompute from the facts.
//! 2. **Indexed + parallel matchmaking** — `match_query` (candidate
//!    pruning through the inverted indexes, parallel scoring) must return
//!    exactly what the pre-index linear scan returns, on the paper's
//!    Figure 6/7 walkthrough repositories and under randomized churn.

use infosleuth_broker::{compile_facts, matchmaking_program, Matchmaker, Repository};
use infosleuth_constraint::{Conjunction, Predicate};
use infosleuth_ontology::{
    healthcare_ontology, paper_class_ontology, Advertisement, AgentLocation, AgentType, Capability,
    ConversationType, OntologyContent, SemanticInfo, ServiceQuery, SyntacticInfo,
};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn capability_pool() -> Vec<Capability> {
    vec![
        Capability::query_processing(),
        Capability::relational_query_processing(),
        Capability::select(),
        Capability::join(),
        Capability::subscription(),
        Capability::multiresource_query_processing(),
        Capability::data_mining(),
    ]
}

/// A randomized but always-valid advertisement: capabilities from the
/// standard taxonomy, content drawn from the two registered ontologies.
fn random_ad(rng: &mut XorShift, i: usize) -> Advertisement {
    let caps = capability_pool();
    let mut semantic = SemanticInfo::default()
        .with_conversations(match rng.below(3) {
            0 => vec![ConversationType::AskAll],
            1 => vec![ConversationType::AskAll, ConversationType::Subscribe],
            _ => vec![ConversationType::Subscribe, ConversationType::Update],
        })
        .with_capabilities([caps[rng.below(caps.len())].clone()]);
    if rng.below(4) > 0 {
        let classes: Vec<&str> = match rng.below(4) {
            0 => vec!["C1"],
            1 => vec!["C2"],
            2 => vec!["C2a", "C3"],
            _ => vec!["C1", "C2"],
        };
        semantic =
            semantic.with_content(OntologyContent::new("paper-classes").with_classes(classes));
    }
    if rng.below(3) == 0 {
        let lo = rng.below(60) as i64;
        semantic = semantic.with_content(
            OntologyContent::new("healthcare")
                .with_classes(["patient"])
                .with_slots(["patient.age"])
                .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                    "patient.age",
                    lo,
                    lo + 25,
                )])),
        );
    }
    Advertisement::new(AgentLocation::new(
        format!("agent{i}"),
        format!("tcp://h{i}:4000"),
        AgentType::Resource,
    ))
    .with_syntactic(SyntacticInfo::sql_kqml())
    .with_semantic(semantic)
}

fn fresh_repo() -> Repository {
    let mut r = Repository::new();
    r.register_ontology(paper_class_ontology());
    r.register_ontology(healthcare_ontology());
    r
}

/// The full-recompute oracle for a repository's saturated model.
fn oracle_model(repo: &Repository) -> infosleuth_ldl::Saturated {
    let facts = compile_facts(
        repo.agents(),
        repo.capability_taxonomy(),
        [paper_class_ontology(), healthcare_ontology()].iter(),
    );
    matchmaking_program().saturate(&facts).unwrap()
}

#[test]
fn incremental_repository_model_matches_full_recompute_over_churn() {
    // 3 seeds x 350 steps = 1050 randomized advertise/unadvertise steps,
    // each checked against a from-scratch compile + saturate.
    for seed in [11u64, 4242, 0xC0FFEE] {
        let mut rng = XorShift(seed | 1);
        let mut repo = fresh_repo();
        repo.saturated(); // warm the cache so churn exercises patching
        let pool = 20;
        for step in 0..350 {
            let i = rng.below(pool);
            let name = format!("agent{i}");
            if rng.next() % 100 < 60 {
                repo.advertise(random_ad(&mut rng, i)).unwrap();
            } else {
                repo.unadvertise(&name);
            }
            assert_eq!(
                repo.saturated().db(),
                oracle_model(&repo).db(),
                "model diverged at seed {seed} step {step}"
            );
        }
        let stats = repo.maintenance_stats();
        assert_eq!(stats.fallbacks, 0, "standard rule base never falls back");
        // Not every step patches the model: unadvertising an agent that is
        // not currently registered is a no-op.
        assert!(
            stats.incremental_updates >= 250,
            "churn should ride the incremental path, got {stats:?}"
        );
        assert_eq!(stats.full_recomputes, 1, "only the initial warm-up recompute");
    }
}

/// The §2.2 walkthrough repository: DB1 holds C1+C2, DB2 holds C2+C3,
/// plus one multi-resource query agent.
fn walkthrough_repo() -> Repository {
    let resource = |name: &str, classes: &[&str]| {
        Advertisement::new(AgentLocation::new(name, "tcp://h:1", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::relational_query_processing()])
                    .with_content(
                        OntologyContent::new("paper-classes").with_classes(classes.to_vec()),
                    ),
            )
    };
    let mut r = fresh_repo();
    r.advertise(resource("db1", &["C1", "C2"])).unwrap();
    r.advertise(resource("db2", &["C2", "C3"])).unwrap();
    let mrq =
        Advertisement::new(AgentLocation::new("mrq", "tcp://h:2", AgentType::MultiResourceQuery))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::AskAll])
                    .with_capabilities([Capability::multiresource_query_processing()]),
            );
    r.advertise(mrq).unwrap();
    r
}

fn walkthrough_queries() -> Vec<ServiceQuery> {
    vec![
        // Figure 6: one multiresource query processing agent.
        ServiceQuery::for_agent_type(AgentType::MultiResourceQuery)
            .with_query_language("SQL 2.0")
            .with_capability(Capability::multiresource_query_processing())
            .one(),
        // Figure 7: resources holding C2, then C3.
        ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_ontology("paper-classes")
            .with_classes(["C2"]),
        ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_ontology("paper-classes")
            .with_classes(["C3"]),
        // Capability subsumption via the taxonomy.
        ServiceQuery::for_agent_type(AgentType::Resource).with_capability(Capability::select()),
        // Conversation requirement.
        ServiceQuery::for_agent_type(AgentType::Resource)
            .with_conversation(ConversationType::AskAll),
        // Unprunable: nothing indexed in the query at all.
        ServiceQuery::any(),
    ]
}

#[test]
fn indexed_matchmaking_equals_linear_scan_on_walkthrough() {
    let mut repo = walkthrough_repo();
    let model = repo.saturated();
    let mm = Matchmaker::default();
    for (i, q) in walkthrough_queries().iter().enumerate() {
        assert_eq!(
            mm.match_query(&repo, &model, q),
            mm.match_query_linear(&repo, &model, q),
            "indexed and linear matchmaking disagree on walkthrough query {i}"
        );
    }
    // Sanity: the walkthrough answers themselves are the paper's.
    let m = mm.match_query(&repo, &model, &walkthrough_queries()[1]);
    let names: Vec<&str> = m.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["db1", "db2"]);
}

#[test]
fn indexed_matchmaking_equals_linear_scan_under_churn() {
    let mut rng = XorShift(2026);
    let mut repo = fresh_repo();
    let mm = Matchmaker::default();
    let caps = capability_pool();
    for i in 0..120 {
        repo.advertise(random_ad(&mut rng, i)).unwrap();
    }
    for step in 0..60 {
        // Churn a little between query batches.
        let i = rng.below(120);
        if rng.next() % 2 == 0 {
            repo.advertise(random_ad(&mut rng, i)).unwrap();
        } else {
            repo.unadvertise(&format!("agent{i}"));
        }
        let model = repo.saturated();
        let queries = [
            ServiceQuery::for_agent_type(AgentType::Resource)
                .with_capability(caps[rng.below(caps.len())].clone()),
            ServiceQuery::for_agent_type(AgentType::Resource)
                .with_ontology("paper-classes")
                .with_classes([["C1", "C2", "C2a", "C3"][rng.below(4)]]),
            ServiceQuery::for_agent_type(AgentType::Resource)
                .with_conversation(ConversationType::Subscribe),
            ServiceQuery::for_agent_type(AgentType::Resource)
                .with_ontology("healthcare")
                .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                    "patient.age",
                    rng.below(40) as i64,
                    60,
                )])),
        ];
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                mm.match_query(&repo, &model, q),
                mm.match_query_linear(&repo, &model, q),
                "indexed and linear matchmaking disagree at step {step}, query {qi}"
            );
        }
    }
}

#[test]
fn parallel_scoring_preserves_order_and_results() {
    // Enough agents that an unprunable query crosses the parallel-scoring
    // threshold; results must still be deterministic and identical to the
    // serial linear scan.
    let mut rng = XorShift(7);
    let mut repo = fresh_repo();
    for i in 0..300 {
        repo.advertise(random_ad(&mut rng, i)).unwrap();
    }
    let model = repo.saturated();
    let mm = Matchmaker::default();
    let q = ServiceQuery::for_agent_type(AgentType::Resource).with_query_language("SQL 2.0");
    let parallel = mm.match_query(&repo, &model, &q);
    assert!(parallel.len() > 100, "query should match most of the repo");
    assert_eq!(parallel, mm.match_query_linear(&repo, &model, &q));
    // Deterministic across runs.
    assert_eq!(parallel, mm.match_query(&repo, &model, &q));
}

#[test]
fn derived_rules_disable_pruning_but_not_correctness() {
    let mut repo = fresh_repo();
    // Subscription implies pollability — a capability never advertised.
    repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
    let subscriber =
        Advertisement::new(AgentLocation::new("sub1", "tcp://h:9", AgentType::Resource))
            .with_syntactic(SyntacticInfo::sql_kqml())
            .with_semantic(
                SemanticInfo::default()
                    .with_conversations([ConversationType::Subscribe])
                    .with_capabilities([Capability::subscription()]),
            );
    repo.advertise(subscriber).unwrap();
    let model = repo.saturated();
    let mm = Matchmaker::default();
    let q = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_capability(Capability::new("polling"));
    let m = mm.match_query(&repo, &model, &q);
    assert_eq!(m.len(), 1, "derived capability must still be found");
    assert_eq!(m[0].name, "sub1");
    assert_eq!(m, mm.match_query_linear(&repo, &model, &q));
}
