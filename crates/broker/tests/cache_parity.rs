//! Correctness oracles for the PR-5 hot-path machinery: the derived-fact
//! scoring index, the epoch-tagged match cache, and the persistent
//! scoring pool must all be *invisible* — every fast path returns exactly
//! what the pre-index serial linear scan returns, on every repository
//! shape (randomized churn, derived rules, stale snapshots) and at every
//! point of the mutation timeline.

use infosleuth_broker::{MatchCache, Matchmaker, Repository, ScoringIndex};
use infosleuth_constraint::{Conjunction, Predicate};
use infosleuth_ontology::{
    healthcare_ontology, paper_class_ontology, Advertisement, AgentLocation, AgentType, Capability,
    ConversationType, OntologyContent, SemanticInfo, ServiceQuery, SyntacticInfo,
};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn capability_pool() -> Vec<Capability> {
    vec![
        Capability::query_processing(),
        Capability::relational_query_processing(),
        Capability::select(),
        Capability::join(),
        Capability::subscription(),
        Capability::multiresource_query_processing(),
        Capability::data_mining(),
    ]
}

/// A randomized but always-valid advertisement: capabilities from the
/// standard taxonomy, content drawn from the two registered ontologies.
fn random_ad(rng: &mut XorShift, i: usize) -> Advertisement {
    let caps = capability_pool();
    let mut semantic = SemanticInfo::default()
        .with_conversations(match rng.below(3) {
            0 => vec![ConversationType::AskAll],
            1 => vec![ConversationType::AskAll, ConversationType::Subscribe],
            _ => vec![ConversationType::Subscribe, ConversationType::Update],
        })
        .with_capabilities([caps[rng.below(caps.len())].clone()]);
    if rng.below(4) > 0 {
        let classes: Vec<&str> = match rng.below(4) {
            0 => vec!["C1"],
            1 => vec!["C2"],
            2 => vec!["C2a", "C3"],
            _ => vec!["C1", "C2"],
        };
        semantic =
            semantic.with_content(OntologyContent::new("paper-classes").with_classes(classes));
    }
    if rng.below(3) == 0 {
        let lo = rng.below(60) as i64;
        semantic = semantic.with_content(
            OntologyContent::new("healthcare")
                .with_classes(["patient"])
                .with_slots(["patient.age"])
                .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                    "patient.age",
                    lo,
                    lo + 25,
                )])),
        );
    }
    Advertisement::new(AgentLocation::new(
        format!("agent{i}"),
        format!("tcp://h{i}:4000"),
        AgentType::Resource,
    ))
    .with_syntactic(SyntacticInfo::sql_kqml())
    .with_semantic(semantic)
}

fn fresh_repo() -> Repository {
    let mut r = Repository::new();
    r.register_ontology(paper_class_ontology());
    r.register_ontology(healthcare_ontology());
    r
}

/// A randomized query shape, covering every dimension the matchmaker
/// scores on (capability, class, conversation, constraints, truncation,
/// and fully unconstrained).
fn random_query(rng: &mut XorShift) -> ServiceQuery {
    let caps = capability_pool();
    let q = match rng.below(6) {
        0 => ServiceQuery::for_agent_type(AgentType::Resource)
            .with_capability(caps[rng.below(caps.len())].clone()),
        1 => ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("paper-classes")
            .with_classes([["C1", "C2", "C2a", "C3"][rng.below(4)]]),
        2 => ServiceQuery::for_agent_type(AgentType::Resource)
            .with_conversation(ConversationType::Subscribe),
        3 => ServiceQuery::for_agent_type(AgentType::Resource)
            .with_ontology("healthcare")
            .with_constraints(Conjunction::from_predicates(vec![Predicate::between(
                "patient.age",
                rng.below(40) as i64,
                60,
            )])),
        4 => ServiceQuery::for_agent_type(AgentType::Resource)
            .with_query_language("SQL 2.0")
            .with_capability(caps[rng.below(caps.len())].clone())
            .with_ontology("paper-classes")
            .with_classes(["C2"]),
        _ => ServiceQuery::any(),
    };
    if rng.below(4) == 0 {
        q.one()
    } else {
        q
    }
}

/// The indexed path (scoring index + candidate pruning + parallel pool)
/// and the probe path (index disabled, ground-atom `holds` probes) must
/// both equal the serial linear scan at every step of a randomized churn.
#[test]
fn indexed_and_probe_paths_equal_linear_over_churn() {
    for seed in [3u64, 977, 0xBEEF] {
        let mut rng = XorShift(seed | 1);
        let mut repo = fresh_repo();
        let mm = Matchmaker::default();
        for i in 0..80 {
            repo.advertise(random_ad(&mut rng, i)).unwrap();
        }
        for step in 0..40 {
            let i = rng.below(80);
            if rng.next() % 2 == 0 {
                repo.advertise(random_ad(&mut rng, i)).unwrap();
            } else {
                repo.unadvertise(&format!("agent{i}"));
            }
            let queries: Vec<ServiceQuery> = (0..4).map(|_| random_query(&mut rng)).collect();

            // Index enabled: match_query scores through the ScoringIndex.
            let model = repo.saturated();
            assert!(
                repo.scoring_index(&model).is_some(),
                "standard rule base keeps the index live (seed {seed} step {step})"
            );
            let indexed: Vec<_> =
                queries.iter().map(|q| mm.match_query(&repo, &model, q)).collect();

            // Index disabled: same entry point falls back to holds() probes.
            repo.set_scoring_index(false);
            let model = repo.saturated();
            assert!(repo.scoring_index(&model).is_none());
            for (qi, q) in queries.iter().enumerate() {
                let probes = mm.match_query(&repo, &model, q);
                let linear = mm.match_query_linear(&repo, &model, q);
                assert_eq!(
                    indexed[qi], probes,
                    "index and probe paths disagree (seed {seed} step {step} query {qi})"
                );
                assert_eq!(
                    probes, linear,
                    "probe path and linear scan disagree (seed {seed} step {step} query {qi})"
                );
            }
            repo.set_scoring_index(true);
        }
    }
}

/// After every incremental patch the index must mirror the saturated
/// model exactly — same tuple counts, every derived tuple probe-able.
#[test]
fn scoring_index_mirrors_model_after_every_patch() {
    let mut rng = XorShift(55);
    let mut repo = fresh_repo();
    repo.saturated(); // warm the cache so churn exercises patching
    for step in 0..120 {
        let i = rng.below(30);
        if rng.next() % 100 < 60 {
            repo.advertise(random_ad(&mut rng, i)).unwrap();
        } else {
            repo.unadvertise(&format!("agent{i}"));
        }
        let model = repo.saturated();
        let index = repo.scoring_index(&model).expect("index live under churn");
        assert!(index.mirrors(&model), "index diverged from model at step {step}");
        // A from-scratch build over the same model must agree with the
        // incrementally maintained one.
        let rebuilt = ScoringIndex::build(&model);
        assert_eq!(rebuilt.len(), index.len(), "incremental index wrong size at step {step}");
    }
}

/// The cached path must be transparent across mutation epochs: every
/// answer — hit or miss — equals a fresh linear scan at that instant,
/// and entries cached before a mutation are never served after it.
#[test]
fn cached_path_equals_linear_across_epochs() {
    for seed in [21u64, 1031] {
        let mut rng = XorShift(seed | 1);
        let mut repo = fresh_repo();
        let mm = Matchmaker::default();
        let cache = MatchCache::new(64);
        for i in 0..60 {
            repo.advertise(random_ad(&mut rng, i)).unwrap();
        }
        // A fixed query set re-issued across epochs guarantees both cache
        // hits (same epoch) and stale drops (after a mutation).
        let queries: Vec<ServiceQuery> = (0..6).map(|_| random_query(&mut rng)).collect();
        for round in 0..25 {
            // Issue each query twice per round: the second must hit.
            for (qi, q) in queries.iter().enumerate() {
                for _ in 0..2 {
                    let cached = mm.match_query_cached(&mut repo, &cache, q);
                    let model = repo.saturated();
                    let linear = mm.match_query_linear(&repo, &model, q);
                    assert_eq!(
                        *cached, linear,
                        "cached path diverged (seed {seed} round {round} query {qi})"
                    );
                }
            }
            // Mutate: bumps the epoch, invalidating everything cached.
            let i = rng.below(60);
            if rng.next() % 2 == 0 {
                repo.advertise(random_ad(&mut rng, i)).unwrap();
            } else {
                repo.unadvertise(&format!("agent{i}"));
            }
        }
        let stats = cache.stats();
        assert!(stats.hits >= 25 * 6, "every second issue per round must hit, got {stats:?}");
        assert!(stats.stale > 0, "epoch bumps must drop stale entries, got {stats:?}");
    }
}

/// Derived rules break the index's agent-locality argument, so the
/// repository must disable it — and the cached path must still agree
/// with the linear scan, including for capabilities that only exist
/// through the derived rule.
#[test]
fn cached_path_with_derived_rules_stays_correct() {
    let mut rng = XorShift(91);
    let mut repo = fresh_repo();
    repo.register_derived_rules("cap(A, polling) :- cap(A, subscription).").unwrap();
    let mm = Matchmaker::default();
    let cache = MatchCache::default();
    for i in 0..40 {
        repo.advertise(random_ad(&mut rng, i)).unwrap();
    }
    let model = repo.saturated();
    assert!(repo.scoring_index(&model).is_none(), "derived rules must disable the index");
    drop(model);

    let derived_q = ServiceQuery::for_agent_type(AgentType::Resource)
        .with_capability(Capability::new("polling"));
    let mut queries: Vec<ServiceQuery> = (0..4).map(|_| random_query(&mut rng)).collect();
    queries.push(derived_q.clone());
    for round in 0..10 {
        for (qi, q) in queries.iter().enumerate() {
            let cached = mm.match_query_cached(&mut repo, &cache, q);
            let model = repo.saturated();
            let linear = mm.match_query_linear(&repo, &model, q);
            assert_eq!(*cached, linear, "derived-rule repo diverged (round {round} query {qi})");
        }
        let i = rng.below(40);
        if rng.next() % 2 == 0 {
            repo.advertise(random_ad(&mut rng, i)).unwrap();
        } else {
            repo.unadvertise(&format!("agent{i}"));
        }
    }
    // The derived capability is reachable only through the rule; the
    // cached path must find the subscribers that imply it.
    let derived = mm.match_query_cached(&mut repo, &cache, &derived_q);
    let subscribers = repo
        .agents()
        .filter(|a| a.semantic.capabilities.contains(&Capability::subscription()))
        .count();
    assert_eq!(derived.len(), subscribers, "every subscriber provides the derived capability");
}

/// A stale model snapshot (held across a mutation) must silently fall
/// back to probe scoring — same answers, no index aliasing.
#[test]
fn stale_model_snapshot_scores_correctly_without_index() {
    let mut rng = XorShift(7001);
    let mut repo = fresh_repo();
    let mm = Matchmaker::default();
    for i in 0..50 {
        repo.advertise(random_ad(&mut rng, i)).unwrap();
    }
    let snapshot = repo.saturated();
    // Mutate underneath the held snapshot.
    repo.advertise(random_ad(&mut rng, 50)).unwrap();
    repo.unadvertise("agent3");
    let _fresh = repo.saturated();
    // The snapshot no longer matches the repository's index generation.
    assert!(
        repo.scoring_index(&snapshot).is_none(),
        "stale snapshot must not alias the current index"
    );
    for qi in 0..8 {
        let q = random_query(&mut rng);
        assert_eq!(
            mm.match_query(&repo, &snapshot, &q),
            mm.match_query_linear(&repo, &snapshot, &q),
            "stale-snapshot scoring diverged on query {qi}"
        );
    }
}
