//! KQML template unification — *syntactic* brokering.
//!
//! KQML "specifies agent advertisements as templates for KQML messages
//! representing requests for services. Requesting agents must send request
//! messages that effectively 'fill in' these templates in order for the
//! request to match the advertisement." A template is an s-expression in
//! which atoms beginning with `?` are variables; matching binds variables
//! consistently.

use crate::{Message, SExpr};
use std::collections::BTreeMap;

/// Variable bindings produced by a successful unification: variable name
/// (with the `?`) → matched s-expression.
pub type Bindings = BTreeMap<String, SExpr>;

/// A message template with `?var` wildcards, e.g. an advertised request shape
/// `(ask-all :content (price ?item ?price))`.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    pattern: SExpr,
}

impl Template {
    pub fn new(pattern: SExpr) -> Self {
        Template { pattern }
    }

    pub fn parse(src: &str) -> Result<Self, crate::SExprError> {
        Ok(Template::new(SExpr::parse(src)?))
    }

    pub fn pattern(&self) -> &SExpr {
        &self.pattern
    }

    /// Attempts to match a concrete s-expression against the template,
    /// returning the variable bindings on success.
    pub fn match_expr(&self, expr: &SExpr) -> Option<Bindings> {
        let mut b = Bindings::new();
        if unify_into(&self.pattern, expr, &mut b) {
            Some(b)
        } else {
            None
        }
    }

    /// Matches a whole KQML message: the message's s-expression form must
    /// unify with the template. Keyword parameters present in the template
    /// must appear in the message (in any order); extra message parameters
    /// are allowed, mirroring KQML's "fill in the template" semantics.
    pub fn match_message(&self, msg: &Message) -> Option<Bindings> {
        let pat_items = self.pattern.as_list()?;
        let mut pat_iter = pat_items.iter();
        let head = pat_iter.next()?;
        let mut b = Bindings::new();
        // Performative must unify.
        if !unify_into(head, &SExpr::atom(msg.performative.as_str()), &mut b) {
            return None;
        }
        // Each template (:kw value) pair must unify with the message param.
        loop {
            let kw = match pat_iter.next() {
                None => break,
                Some(k) => k.as_atom().filter(|s| s.starts_with(':'))?,
            };
            let pat_val = pat_iter.next()?;
            let msg_val = msg.get(&kw[1..])?;
            if !unify_into(pat_val, msg_val, &mut b) {
                return None;
            }
        }
        Some(b)
    }
}

/// The conversation templates the InfoSleuth agents ship — one request
/// shape per conversation-opening performative, as advertised to peers.
/// Named so tooling (`infosleuth-lint`) can check each one for
/// conformance.
pub fn standard_templates() -> Vec<(&'static str, Template)> {
    const SOURCES: &[(&str, &str)] = &[
        ("advertise", "(advertise :sender ?agent :receiver ?broker :content ?ad)"),
        ("unadvertise", "(unadvertise :sender ?agent :receiver ?broker :content ?ad)"),
        (
            "ask-all",
            "(ask-all :sender ?agent :receiver ?peer :reply-with ?id :language ?lang :content ?query)",
        ),
        (
            "ask-one",
            "(ask-one :sender ?agent :receiver ?peer :reply-with ?id :language ?lang :content ?query)",
        ),
        ("subscribe", "(subscribe :sender ?agent :receiver ?peer :reply-with ?id :content ?query)"),
        ("tell", "(tell :sender ?agent :receiver ?peer :in-reply-to ?id :content ?result)"),
        ("reply", "(reply :sender ?agent :receiver ?peer :in-reply-to ?id :content ?result)"),
        ("sorry", "(sorry :sender ?agent :receiver ?peer :in-reply-to ?id)"),
        ("broker-one", "(broker-one :sender ?agent :receiver ?broker :content ?request)"),
        ("recruit-all", "(recruit-all :sender ?agent :receiver ?broker :content ?query)"),
        ("recruit-one", "(recruit-one :sender ?agent :receiver ?broker :content ?query)"),
        ("ping", "(ping :sender ?agent :receiver ?peer :reply-with ?id)"),
    ];
    SOURCES
        .iter()
        .map(|(name, src)| (*name, Template::parse(src).expect("standard template parses")))
        .collect()
}

/// Unifies two s-expressions where *either* side may contain variables.
/// Returns the merged bindings on success. (Template matching, where only
/// the pattern has variables, is the common case; advertisement-vs-request
/// unification in KQML brokering can have variables on both sides.)
pub fn unify(a: &SExpr, b: &SExpr) -> Option<Bindings> {
    let mut bindings = Bindings::new();
    if unify2(a, b, &mut bindings) {
        Some(bindings)
    } else {
        None
    }
}

/// One-sided unification: variables only in `pattern`.
fn unify_into(pattern: &SExpr, expr: &SExpr, b: &mut Bindings) -> bool {
    if pattern.is_variable() {
        let name = pattern.as_atom().expect("variable is atom");
        match b.get(name) {
            Some(bound) => bound == expr,
            None => {
                b.insert(name.to_string(), expr.clone());
                true
            }
        }
    } else {
        match (pattern, expr) {
            (SExpr::Atom(p), SExpr::Atom(e)) => p == e,
            (SExpr::Str(p), SExpr::Str(e)) => p == e,
            (SExpr::List(ps), SExpr::List(es)) => {
                ps.len() == es.len() && ps.iter().zip(es).all(|(p, e)| unify_into(p, e, b))
            }
            _ => false,
        }
    }
}

/// Two-sided unification with a shared binding environment and resolution
/// of already-bound variables (no occurs check needed: bindings are ground
/// after resolution because variables only bind to variable-free terms or
/// chains that terminate in them).
fn unify2(a: &SExpr, b: &SExpr, env: &mut Bindings) -> bool {
    let a = resolve(a, env);
    let b = resolve(b, env);
    match (&a, &b) {
        (SExpr::Atom(x), _) if x.starts_with('?') => {
            if contains_var(&b, x) {
                return false; // occurs check
            }
            env.insert(x.clone(), b.clone());
            true
        }
        (_, SExpr::Atom(y)) if y.starts_with('?') => {
            if contains_var(&a, y) {
                return false;
            }
            env.insert(y.clone(), a.clone());
            true
        }
        (SExpr::Atom(x), SExpr::Atom(y)) => x == y,
        (SExpr::Str(x), SExpr::Str(y)) => x == y,
        (SExpr::List(xs), SExpr::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| unify2(x, y, env))
        }
        _ => false,
    }
}

fn resolve(e: &SExpr, env: &Bindings) -> SExpr {
    let mut cur = e.clone();
    while let SExpr::Atom(name) = &cur {
        if name.starts_with('?') {
            if let Some(next) = env.get(name) {
                cur = next.clone();
                continue;
            }
        }
        break;
    }
    cur
}

fn contains_var(e: &SExpr, var: &str) -> bool {
    match e {
        SExpr::Atom(a) => a == var,
        SExpr::Str(_) => false,
        SExpr::List(items) => items.iter().any(|i| contains_var(i, var)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Performative;

    #[test]
    fn standard_templates_match_their_messages() {
        let templates: BTreeMap<&str, Template> = standard_templates().into_iter().collect();
        let ask = Message::parse(
            r#"(ask-all :sender ua1 :receiver ra1 :reply-with q1 :language "LDL" :content (q))"#,
        )
        .unwrap();
        assert!(templates["ask-all"].match_message(&ask).is_some());
        assert!(templates["subscribe"].match_message(&ask).is_none());
        let sorry = Message::parse("(sorry :sender b :receiver ua1 :in-reply-to q1)").unwrap();
        assert!(templates["sorry"].match_message(&sorry).is_some());
    }

    #[test]
    fn simple_variable_binding() {
        let t = Template::parse("(price ?item ?amount)").unwrap();
        let b = t.match_expr(&SExpr::parse("(price widget 42)").unwrap()).unwrap();
        assert_eq!(b["?item"], SExpr::atom("widget"));
        assert_eq!(b["?amount"], SExpr::atom("42"));
    }

    #[test]
    fn repeated_variables_must_agree() {
        let t = Template::parse("(pair ?x ?x)").unwrap();
        assert!(t.match_expr(&SExpr::parse("(pair a a)").unwrap()).is_some());
        assert!(t.match_expr(&SExpr::parse("(pair a b)").unwrap()).is_none());
    }

    #[test]
    fn literal_mismatch_fails() {
        let t = Template::parse("(price ?item)").unwrap();
        assert!(t.match_expr(&SExpr::parse("(cost widget)").unwrap()).is_none());
        assert!(t.match_expr(&SExpr::parse("(price a b)").unwrap()).is_none()); // arity
    }

    #[test]
    fn message_template_allows_extra_params() {
        // Advertised template: "I accept ask-all with SQL content".
        let t = Template::parse("(ask-all :language SQL :content ?query)").unwrap();
        let msg = Message::new(Performative::AskAll)
            .with_sender("someone")
            .with_language("SQL")
            .with_content(SExpr::string("select * from C2"));
        let b = t.match_message(&msg).unwrap();
        assert_eq!(b["?query"], SExpr::string("select * from C2"));
        // Missing required parameter fails.
        let msg2 = Message::new(Performative::AskAll).with_sender("someone");
        assert!(t.match_message(&msg2).is_none());
        // Wrong performative fails.
        let msg3 =
            Message::new(Performative::Tell).with_language("SQL").with_content(SExpr::string("x"));
        assert!(t.match_message(&msg3).is_none());
    }

    #[test]
    fn variable_performative() {
        let t = Template::parse("(?p :content ?c)").unwrap();
        let msg = Message::new(Performative::Subscribe).with_content(SExpr::atom("x"));
        let b = t.match_message(&msg).unwrap();
        assert_eq!(b["?p"], SExpr::atom("subscribe"));
    }

    #[test]
    fn two_sided_unification() {
        let a = SExpr::parse("(f ?x b)").unwrap();
        let b = SExpr::parse("(f a ?y)").unwrap();
        let env = unify(&a, &b).unwrap();
        assert_eq!(env["?x"], SExpr::atom("a"));
        assert_eq!(env["?y"], SExpr::atom("b"));
    }

    #[test]
    fn two_sided_chained_variables() {
        let a = SExpr::parse("(f ?x ?x)").unwrap();
        let b = SExpr::parse("(f ?y c)").unwrap();
        let env = unify(&a, &b).unwrap();
        // ?x unified with ?y, then with c — both resolve to c.
        let rx = super::resolve(&SExpr::atom("?x"), &env);
        let ry = super::resolve(&SExpr::atom("?y"), &env);
        assert_eq!(rx, SExpr::atom("c"));
        assert_eq!(ry, SExpr::atom("c"));
    }

    #[test]
    fn occurs_check_prevents_infinite_terms() {
        let a = SExpr::parse("?x").unwrap();
        let b = SExpr::parse("(f ?x)").unwrap();
        assert!(unify(&a, &b).is_none());
    }

    #[test]
    fn strings_and_atoms_do_not_unify() {
        assert!(unify(&SExpr::atom("a"), &SExpr::string("a")).is_none());
    }
}
