//! KQML — the Knowledge Query and Manipulation Language.
//!
//! InfoSleuth agents exchange KQML performatives: an advertisement is an
//! `advertise` message whose content describes the agent in the service
//! ontology; service lookups are `ask-all`/`ask-one` messages; answers come
//! back in `tell`/`reply`; a broker with no matches answers `sorry`.
//!
//! KQML messages are s-expressions:
//!
//! ```text
//! (ask-all :sender mhn-user-agent
//!          :receiver broker-1
//!          :language SQL
//!          :ontology paper-classes
//!          :reply-with q1
//!          :content "select * from C2")
//! ```
//!
//! This crate implements the s-expression reader/printer ([`SExpr`]), the
//! message model ([`Message`], [`Performative`]), and KQML-style **template
//! unification** ([`Template`]) — the purely *syntactic* matching that the
//! paper contrasts with InfoSleuth's semantic brokering: "A match between a
//! request and an agent takes place when the agent's advertisement unifies
//! with the performative specified in the broker or recruit message."

#![forbid(unsafe_code)]

mod message;
mod sexpr;
mod template;

pub use message::{KqmlError, Message, Performative};
pub use sexpr::{SExpr, SExprError};
pub use template::{standard_templates, unify, Bindings, Template};
