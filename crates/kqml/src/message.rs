//! KQML message model.

use crate::{SExpr, SExprError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A KQML performative — the speech-act verb of a message.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Performative {
    /// Announce a capability to a broker.
    Advertise,
    /// Withdraw a previous advertisement.
    Unadvertise,
    /// Replace a previous advertisement with updated content.
    Update,
    /// Ask for all answers.
    AskAll,
    /// Ask for a single answer.
    AskOne,
    /// Assert an answer or fact.
    Tell,
    /// Direct reply carrying results.
    Reply,
    /// "I understood you, but have no answer."
    Sorry,
    /// Protocol or processing error.
    Error,
    /// Open a standing query (monitoring / notification).
    Subscribe,
    /// Ask a broker to *forward* the embedded request to one matching agent.
    BrokerOne,
    /// Ask a broker to *recommend* all matching agents.
    RecruitAll,
    /// Ask a broker to *recommend* one matching agent.
    RecruitOne,
    /// Liveness probe ("broker ping", §4.2.2).
    Ping,
    /// Any other verb.
    Other(String),
}

impl Performative {
    pub fn as_str(&self) -> &str {
        match self {
            Performative::Advertise => "advertise",
            Performative::Unadvertise => "unadvertise",
            Performative::Update => "update",
            Performative::AskAll => "ask-all",
            Performative::AskOne => "ask-one",
            Performative::Tell => "tell",
            Performative::Reply => "reply",
            Performative::Sorry => "sorry",
            Performative::Error => "error",
            Performative::Subscribe => "subscribe",
            Performative::BrokerOne => "broker-one",
            Performative::RecruitAll => "recruit-all",
            Performative::RecruitOne => "recruit-one",
            Performative::Ping => "ping",
            Performative::Other(s) => s,
        }
    }
}

impl From<&str> for Performative {
    fn from(s: &str) -> Self {
        match s {
            "advertise" => Performative::Advertise,
            "unadvertise" => Performative::Unadvertise,
            "update" => Performative::Update,
            "ask-all" => Performative::AskAll,
            "ask-one" => Performative::AskOne,
            "tell" => Performative::Tell,
            "reply" => Performative::Reply,
            "sorry" => Performative::Sorry,
            "error" => Performative::Error,
            "subscribe" => Performative::Subscribe,
            "broker-one" => Performative::BrokerOne,
            "recruit-all" => Performative::RecruitAll,
            "recruit-one" => Performative::RecruitOne,
            "ping" => Performative::Ping,
            other => Performative::Other(other.to_string()),
        }
    }
}

impl fmt::Display for Performative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Errors produced when converting text to a [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KqmlError {
    Syntax(SExprError),
    /// The message is not a `(performative :kw value ...)` list.
    Malformed(String),
}

impl fmt::Display for KqmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KqmlError::Syntax(e) => write!(f, "{e}"),
            KqmlError::Malformed(m) => write!(f, "malformed KQML message: {m}"),
        }
    }
}

impl std::error::Error for KqmlError {}

impl From<SExprError> for KqmlError {
    fn from(e: SExprError) -> Self {
        KqmlError::Syntax(e)
    }
}

/// Chooses the s-expression form for a parameter value: a bare atom when
/// the text survives atom tokenization, a quoted string otherwise (e.g.
/// `SQL 2.0`, which contains a space).
fn token(s: String) -> SExpr {
    let needs_quoting = s.is_empty() || s.chars().any(|c| c.is_whitespace() || "();\"".contains(c));
    if needs_quoting {
        SExpr::Str(s)
    } else {
        SExpr::Atom(s)
    }
}

/// A KQML message: a performative plus keyword parameters.
///
/// Parameter order is preserved for faithful round-tripping; lookup is by
/// keyword (without the leading `:`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    pub performative: Performative,
    params: Vec<(String, SExpr)>,
}

impl Message {
    pub fn new(performative: Performative) -> Self {
        Message { performative, params: Vec::new() }
    }

    /// Sets (or replaces) a keyword parameter. `key` omits the leading `:`.
    pub fn with(mut self, key: impl Into<String>, value: SExpr) -> Self {
        self.set(key, value);
        self
    }

    pub fn set(&mut self, key: impl Into<String>, value: SExpr) {
        let key = key.into();
        debug_assert!(!key.starts_with(':'), "param keys omit the leading ':'");
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.params.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&SExpr> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Text of a parameter that is an atom or string.
    pub fn get_text(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(SExpr::as_text)
    }

    pub fn params(&self) -> impl Iterator<Item = (&str, &SExpr)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    // Conventional accessors for the reserved KQML parameter names.

    pub fn sender(&self) -> Option<&str> {
        self.get_text("sender")
    }

    pub fn receiver(&self) -> Option<&str> {
        self.get_text("receiver")
    }

    pub fn content(&self) -> Option<&SExpr> {
        self.get("content")
    }

    pub fn language(&self) -> Option<&str> {
        self.get_text("language")
    }

    pub fn ontology(&self) -> Option<&str> {
        self.get_text("ontology")
    }

    pub fn reply_with(&self) -> Option<&str> {
        self.get_text("reply-with")
    }

    pub fn in_reply_to(&self) -> Option<&str> {
        self.get_text("in-reply-to")
    }

    pub fn with_sender(self, s: impl Into<String>) -> Self {
        self.with("sender", token(s.into()))
    }

    pub fn with_receiver(self, s: impl Into<String>) -> Self {
        self.with("receiver", token(s.into()))
    }

    pub fn with_content(self, c: SExpr) -> Self {
        self.with("content", c)
    }

    pub fn with_language(self, s: impl Into<String>) -> Self {
        self.with("language", token(s.into()))
    }

    pub fn with_ontology(self, s: impl Into<String>) -> Self {
        self.with("ontology", token(s.into()))
    }

    pub fn with_reply_with(self, s: impl Into<String>) -> Self {
        self.with("reply-with", token(s.into()))
    }

    pub fn with_in_reply_to(self, s: impl Into<String>) -> Self {
        self.with("in-reply-to", token(s.into()))
    }

    /// Encoded trace context (`:x-trace`), when one rode along. The
    /// value format is defined by `infosleuth-obs`; this accessor only
    /// moves the opaque string.
    pub fn trace(&self) -> Option<&str> {
        self.get_text("x-trace")
    }

    /// Attaches an encoded trace context as `:x-trace`.
    pub fn with_trace(self, ctx: impl Into<String>) -> Self {
        self.with("x-trace", SExpr::Str(ctx.into()))
    }

    /// Builds a reply skeleton: `reply` performative, sender/receiver
    /// swapped, `in-reply-to` copied from this message's `reply-with`.
    pub fn reply_skeleton(&self, performative: Performative) -> Message {
        let mut m = Message::new(performative);
        if let Some(r) = self.receiver() {
            m.set("sender", token(r.to_string()));
        }
        if let Some(s) = self.sender() {
            m.set("receiver", token(s.to_string()));
        }
        if let Some(rw) = self.reply_with() {
            m.set("in-reply-to", token(rw.to_string()));
        }
        m
    }

    /// The message as an s-expression.
    pub fn to_sexpr(&self) -> SExpr {
        let mut items = vec![SExpr::atom(self.performative.as_str())];
        for (k, v) in &self.params {
            items.push(SExpr::Atom(format!(":{k}")));
            items.push(v.clone());
        }
        SExpr::List(items)
    }

    /// Parses a message from its textual s-expression form.
    pub fn parse(src: &str) -> Result<Message, KqmlError> {
        Self::from_sexpr(&SExpr::parse(src)?)
    }

    pub fn from_sexpr(e: &SExpr) -> Result<Message, KqmlError> {
        let items =
            e.as_list().ok_or_else(|| KqmlError::Malformed("message must be a list".into()))?;
        let mut it = items.iter();
        let head = it
            .next()
            .and_then(SExpr::as_atom)
            .ok_or_else(|| KqmlError::Malformed("missing performative".into()))?;
        let mut msg = Message::new(Performative::from(head));
        while let Some(kw) = it.next() {
            let kw = kw
                .as_atom()
                .filter(|s| s.starts_with(':'))
                .ok_or_else(|| KqmlError::Malformed(format!("expected keyword, got {kw}")))?;
            let value = it
                .next()
                .ok_or_else(|| KqmlError::Malformed(format!("keyword {kw} missing value")))?;
            msg.set(&kw[1..], value.clone());
        }
        Ok(msg)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_sexpr().wire_size()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sexpr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        Message::new(Performative::AskAll)
            .with_sender("mhn-user-agent")
            .with_receiver("broker-1")
            .with_language("SQL")
            .with_ontology("paper-classes")
            .with_reply_with("q1")
            .with_content(SExpr::string("select * from C2"))
    }

    #[test]
    fn round_trips_through_text() {
        let m = sample();
        let text = m.to_string();
        let back = Message::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.sender(), Some("mhn-user-agent"));
        assert_eq!(back.content(), Some(&SExpr::string("select * from C2")));
    }

    #[test]
    fn performative_round_trips() {
        for p in [
            "advertise",
            "unadvertise",
            "update",
            "ask-all",
            "ask-one",
            "tell",
            "reply",
            "sorry",
            "error",
            "subscribe",
            "broker-one",
            "recruit-all",
            "recruit-one",
            "ping",
            "register",
        ] {
            let perf = Performative::from(p);
            assert_eq!(perf.as_str(), p);
        }
    }

    #[test]
    fn parameters_with_spaces_round_trip() {
        // `SQL 2.0` contains a space and must survive the wire as a
        // quoted string, not a broken atom.
        let m = Message::new(Performative::AskOne)
            .with_language("SQL 2.0")
            .with_ontology("my ontology");
        let back = Message::parse(&m.to_string()).unwrap();
        assert_eq!(back.language(), Some("SQL 2.0"));
        assert_eq!(back.ontology(), Some("my ontology"));
    }

    #[test]
    fn reply_skeleton_swaps_roles() {
        let m = sample();
        let r = m.reply_skeleton(Performative::Reply);
        assert_eq!(r.sender(), Some("broker-1"));
        assert_eq!(r.receiver(), Some("mhn-user-agent"));
        assert_eq!(r.in_reply_to(), Some("q1"));
        assert_eq!(r.performative, Performative::Reply);
    }

    #[test]
    fn set_replaces_existing_param() {
        let mut m = sample();
        m.set("language", SExpr::atom("LDL"));
        assert_eq!(m.language(), Some("LDL"));
        assert_eq!(m.params().filter(|(k, _)| *k == "language").count(), 1);
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(Message::parse("ask-all").is_err()); // not a list
        assert!(Message::parse("(ask-all :sender)").is_err()); // dangling kw
        assert!(Message::parse("((x) :a b)").is_err()); // list head
        assert!(Message::parse("(tell a b)").is_err()); // non-keyword param
    }

    #[test]
    fn structured_content() {
        let m = Message::new(Performative::Advertise).with_content(SExpr::list([
            SExpr::atom("capabilities"),
            SExpr::atom("relational-query-processing"),
        ]));
        let back = Message::parse(&m.to_string()).unwrap();
        assert_eq!(back.content().unwrap().as_list().unwrap().len(), 2);
    }

    #[test]
    fn trace_param_round_trips() {
        let m = sample().with_trace("00000000000000ab-00000000000000cd");
        let back = Message::parse(&m.to_string()).unwrap();
        assert_eq!(back.trace(), Some("00000000000000ab-00000000000000cd"));
        assert!(sample().trace().is_none());
        // reply_skeleton deliberately does not copy the trace: replies
        // to untraced requesters stay untraced.
        assert!(m.reply_skeleton(Performative::Reply).trace().is_none());
    }

    #[test]
    fn wire_size_counts_params() {
        assert!(sample().wire_size() > Message::new(Performative::AskAll).wire_size());
    }
}
