//! S-expression reader and printer for KQML messages.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A KQML s-expression: an atom (symbol, keyword, or number), a quoted
/// string, or a parenthesized list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SExpr {
    /// An unquoted token: `ask-all`, `:sender`, `42`, `?agent-name`.
    Atom(String),
    /// A double-quoted string with `\"` and `\\` escapes.
    Str(String),
    /// `( ... )`
    List(Vec<SExpr>),
}

/// Error produced when reading a malformed s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SExprError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for SExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s-expression error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SExprError {}

impl SExpr {
    pub fn atom(s: impl Into<String>) -> Self {
        SExpr::Atom(s.into())
    }

    pub fn string(s: impl Into<String>) -> Self {
        SExpr::Str(s.into())
    }

    pub fn list(items: impl IntoIterator<Item = SExpr>) -> Self {
        SExpr::List(items.into_iter().collect())
    }

    /// The atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s) => Some(s),
            _ => None,
        }
    }

    /// The text content of an atom *or* string.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s) | SExpr::Str(s) => Some(s),
            SExpr::List(_) => None,
        }
    }

    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this atom is a KQML keyword (starts with `:`).
    pub fn is_keyword(&self) -> bool {
        matches!(self, SExpr::Atom(s) if s.starts_with(':'))
    }

    /// Whether this atom is a KQML variable (starts with `?`).
    pub fn is_variable(&self) -> bool {
        matches!(self, SExpr::Atom(s) if s.starts_with('?'))
    }

    /// Reads a single s-expression, requiring it to consume the full input.
    pub fn parse(src: &str) -> Result<SExpr, SExprError> {
        let mut reader = Reader { src: src.as_bytes(), pos: 0 };
        reader.skip_ws();
        let e = reader.read()?;
        reader.skip_ws();
        if reader.pos != reader.src.len() {
            return Err(SExprError {
                message: "trailing input after s-expression".into(),
                position: reader.pos,
            });
        }
        Ok(e)
    }

    /// Approximate wire size in bytes (used by simulation cost models).
    pub fn wire_size(&self) -> usize {
        match self {
            SExpr::Atom(s) => s.len() + 1,
            SExpr::Str(s) => s.len() + 3,
            SExpr::List(items) => 2 + items.iter().map(SExpr::wire_size).sum::<usize>(),
        }
    }
}

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn error(&self, message: impl Into<String>) -> SExprError {
        SExprError { message: message.into(), position: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b';' => {
                    // comment to end of line
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn read(&mut self) -> Result<SExpr, SExprError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Err(self.error("unexpected end of input"));
        }
        match self.src[self.pos] {
            b'(' => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated list"));
                    }
                    if self.src[self.pos] == b')' {
                        self.pos += 1;
                        return Ok(SExpr::List(items));
                    }
                    items.push(self.read()?);
                }
            }
            b')' => Err(self.error("unexpected ')'")),
            b'"' => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string"));
                    }
                    match self.src[self.pos] {
                        b'"' => {
                            self.pos += 1;
                            return Ok(SExpr::Str(out));
                        }
                        b'\\' => {
                            self.pos += 1;
                            if self.pos >= self.src.len() {
                                return Err(self.error("dangling escape"));
                            }
                            match self.src[self.pos] {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'n' => out.push('\n'),
                                b't' => out.push('\t'),
                                other => {
                                    return Err(
                                        self.error(format!("unknown escape '\\{}'", other as char))
                                    )
                                }
                            }
                            self.pos += 1;
                        }
                        _ => {
                            // Consume one UTF-8 scalar.
                            let rest = std::str::from_utf8(&self.src[self.pos..])
                                .map_err(|_| self.error("invalid utf-8"))?;
                            let c = rest.chars().next().expect("non-empty");
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                    }
                }
            }
            _ => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b' ' | b'\t' | b'\n' | b'\r' | b'(' | b')' | b'"' | b';' => break,
                        _ => self.pos += 1,
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in atom"))?;
                Ok(SExpr::Atom(text.to_string()))
            }
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Atom(s) => write!(f, "{s}"),
            SExpr::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            SExpr::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_strings_lists() {
        assert_eq!(SExpr::parse("ask-all").unwrap(), SExpr::atom("ask-all"));
        assert_eq!(SExpr::parse("\"hi there\"").unwrap(), SExpr::string("hi there"));
        assert_eq!(
            SExpr::parse("(a (b c) \"d\")").unwrap(),
            SExpr::list([
                SExpr::atom("a"),
                SExpr::list([SExpr::atom("b"), SExpr::atom("c")]),
                SExpr::string("d"),
            ])
        );
    }

    #[test]
    fn keywords_and_variables() {
        assert!(SExpr::parse(":sender").unwrap().is_keyword());
        assert!(SExpr::parse("?agent-name").unwrap().is_variable());
        assert!(!SExpr::parse("sender").unwrap().is_keyword());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = SExpr::string("a \"quoted\" \\ line\nnext\ttab");
        let text = original.to_string();
        assert_eq!(SExpr::parse(&text).unwrap(), original);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let e = SExpr::parse("; header\n ( a ; mid\n b )\n").unwrap();
        assert_eq!(e, SExpr::list([SExpr::atom("a"), SExpr::atom("b")]));
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(SExpr::parse("(a").is_err());
        assert!(SExpr::parse(")").is_err());
        assert!(SExpr::parse("\"open").is_err());
        assert!(SExpr::parse("a b").is_err()); // trailing input
        assert!(SExpr::parse("").is_err());
        assert!(SExpr::parse("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = "(advertise :sender ResourceAgent5 :content \"x = 'y'\")";
        let e = SExpr::parse(src).unwrap();
        assert_eq!(SExpr::parse(&e.to_string()).unwrap(), e);
    }

    #[test]
    fn wire_size_is_positive_and_monotone() {
        let small = SExpr::parse("(a)").unwrap();
        let big = SExpr::parse("(a b c \"ddddd\")").unwrap();
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn unicode_strings() {
        let e = SExpr::parse("\"héllo wörld\"").unwrap();
        assert_eq!(e, SExpr::string("héllo wörld"));
    }
}
