//! Property tests: KQML text round-tripping over arbitrary messages.

use infosleuth_kqml::{Message, Performative, SExpr};
use proptest::prelude::*;

/// Atom-safe token text (what the lexer tokenizes back into one atom).
fn arb_atom_text() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,12}".prop_map(|s| s)
}

/// Arbitrary string payloads, including quotes, escapes, and unicode.
fn arb_string_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just(' '),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just('('),
            Just(')'),
            Just('é'),
            Just('?'),
        ],
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_sexpr() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        arb_atom_text().prop_map(SExpr::Atom),
        arb_string_text().prop_map(SExpr::Str),
        any::<i32>().prop_map(|i| SExpr::Atom(i.to_string())),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        proptest::collection::vec(inner, 0..5).prop_map(SExpr::List)
    })
}

fn arb_performative() -> impl Strategy<Value = Performative> {
    prop_oneof![
        Just(Performative::Advertise),
        Just(Performative::AskAll),
        Just(Performative::Tell),
        Just(Performative::Sorry),
        Just(Performative::Subscribe),
        Just(Performative::Ping),
        arb_atom_text().prop_map(Performative::Other),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (arb_performative(), proptest::collection::vec((arb_atom_text(), arb_sexpr()), 0..6)).prop_map(
        |(perf, params)| {
            let mut m = Message::new(perf);
            for (k, v) in params {
                m.set(k, v);
            }
            m
        },
    )
}

proptest! {
    /// Any s-expression survives print → parse.
    #[test]
    fn sexpr_round_trips(e in arb_sexpr()) {
        let text = e.to_string();
        let back = SExpr::parse(&text).unwrap();
        prop_assert_eq!(back, e);
    }

    /// Any message survives print → parse, including structured content
    /// and hostile string payloads.
    #[test]
    fn message_round_trips(m in arb_message()) {
        let text = m.to_string();
        let back = Message::parse(&text).unwrap();
        prop_assert_eq!(back, m);
    }

    /// Builder-set reserved parameters survive the wire whatever their
    /// text (spaces force string quoting).
    #[test]
    fn reserved_params_round_trip(
        lang in arb_string_text(),
        onto in arb_atom_text(),
    ) {
        let m = Message::new(Performative::AskOne)
            .with_language(lang.clone())
            .with_ontology(onto.clone());
        let back = Message::parse(&m.to_string()).unwrap();
        prop_assert_eq!(back.language(), Some(lang.as_str()));
        prop_assert_eq!(back.ontology(), Some(onto.as_str()));
    }

    /// reply_skeleton always wires the conversation correctly.
    #[test]
    fn reply_skeleton_correlates(sender in arb_atom_text(), rw in arb_atom_text()) {
        let m = Message::new(Performative::AskOne)
            .with_sender(sender.clone())
            .with_receiver("broker")
            .with_reply_with(rw.clone());
        let r = m.reply_skeleton(Performative::Reply);
        prop_assert_eq!(r.receiver(), Some(sender.as_str()));
        prop_assert_eq!(r.sender(), Some("broker"));
        prop_assert_eq!(r.in_reply_to(), Some(rw.as_str()));
    }
}
